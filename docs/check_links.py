"""Link-check the repo's markdown docs (stdlib only; used by CI).

Validates every markdown link in ``README.md`` and ``docs/*.md``:

* relative file targets must exist (resolved against the linking
  file's directory);
* anchor targets (``#section`` or ``file.md#section``) must match a
  heading in the target file, using GitHub's slugification (lowercase,
  punctuation stripped, spaces to hyphens, ``-N`` suffixes for
  duplicates);
* external schemes (``http(s)://``, ``mailto:``) are skipped — CI must
  not depend on the network.

Exit status is the number of broken links (0 = pass).

Run:  python docs/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` — also matches the link part of images
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def strip_fences(text: str) -> list[str]:
    """Markdown lines with fenced code blocks blanked out."""
    lines = []
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else line)
    return lines


def slugify(heading: str) -> str:
    """GitHub's anchor slug for one heading (sans duplicate suffix)."""
    # inline code/emphasis markers render away before slugification
    text = re.sub(r"[`*_]", "", heading)
    # link text contributes, the target does not
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """Every valid anchor slug in one markdown file."""
    seen: dict[str, int] = {}
    anchors = set()
    for line in strip_fences(path.read_text(encoding="utf-8")):
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(path: Path) -> list[str]:
    """Broken-link messages for one markdown file."""
    problems = []
    text = "\n".join(strip_fences(path.read_text(encoding="utf-8")))
    for target in LINK_RE.findall(text):
        if target.startswith(EXTERNAL) or target.startswith("<"):
            continue
        file_part, _, anchor = target.partition("#")
        dest = (
            path
            if not file_part
            else (path.parent / file_part).resolve()
        )
        rel = path.relative_to(REPO_ROOT)
        if not dest.exists():
            problems.append(f"{rel}: broken file link -> {target}")
            continue
        if anchor:
            if dest.suffix.lower() != ".md":
                problems.append(
                    f"{rel}: anchor into non-markdown target -> {target}"
                )
            elif anchor not in anchors_of(dest):
                problems.append(f"{rel}: missing anchor -> {target}")
    return problems


def main() -> int:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    problems = []
    for path in files:
        found = check_file(path)
        problems.extend(found)
        status = "FAIL" if found else "ok"
        print(f"{status:>4}  {path.relative_to(REPO_ROOT)}")
    for problem in problems:
        print(f"  - {problem}")
    if not problems:
        print(f"{len(files)} file(s), all links resolve")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
