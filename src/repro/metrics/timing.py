"""Timing helpers for the runtime experiments.

The paper's performance figures compare wall-clock runtimes of
different valuation methods inside one substrate.  These helpers keep
that comparison honest: a warm-up call (so import/JIT/cache effects do
not land on the first method measured), best-of-``repeat`` timing, and
a simple log-log slope estimator used by the complexity-table bench to
check empirical scaling exponents.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..exceptions import ParameterError

__all__ = ["TimingResult", "time_call", "fit_loglog_slope"]


@dataclass(frozen=True)
class TimingResult:
    """Wall-clock measurement of one callable.

    Attributes
    ----------
    seconds:
        Best observed wall-clock time.
    all_runs:
        Every measured run, in order.
    value:
        Return value of the final run (handy when the timed call also
        produces the result the experiment needs).
    """

    seconds: float
    all_runs: tuple[float, ...]
    value: object


def time_call(
    fn: Callable[[], object], repeat: int = 1, warmup: int = 0
) -> TimingResult:
    """Time ``fn`` with optional warm-up, keeping the best run.

    Parameters
    ----------
    fn:
        Zero-argument callable.
    repeat:
        Number of measured runs (best is reported, which is the
        standard way to suppress scheduler noise for CPU-bound code).
    warmup:
        Unmeasured preliminary runs.
    """
    if repeat <= 0:
        raise ParameterError(f"repeat must be positive, got {repeat}")
    for _ in range(warmup):
        fn()
    runs = []
    value: object = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        runs.append(time.perf_counter() - start)
    return TimingResult(seconds=min(runs), all_runs=tuple(runs), value=value)


def fit_loglog_slope(sizes: Sequence[float], times: Sequence[float]) -> float:
    """Least-squares slope of ``log(time)`` against ``log(size)``.

    An empirical scaling exponent: ~1 for linear algorithms, ~2 for
    quadratic.  Used to verify the complexity table (Figure 2) — e.g.
    the exact algorithm should measure close to 1 (the log factor is
    invisible at these scales) and the baseline MC close to 2.
    """
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    times_arr = np.asarray(times, dtype=np.float64)
    if sizes_arr.shape != times_arr.shape or sizes_arr.size < 2:
        raise ParameterError("need at least two (size, time) pairs")
    if np.any(sizes_arr <= 0) or np.any(times_arr <= 0):
        raise ParameterError("sizes and times must be positive")
    x = np.log(sizes_arr)
    y = np.log(times_arr)
    slope = float(np.polyfit(x, y, 1)[0])
    return slope
