"""Error, correlation, retrieval and timing metrics."""

from .errors import (
    max_abs_error,
    mean_abs_error,
    pearson_correlation,
    rank_of,
    spearman_correlation,
    top_k_overlap,
)
from .timing import TimingResult, fit_loglog_slope, time_call

__all__ = [
    "max_abs_error",
    "mean_abs_error",
    "pearson_correlation",
    "spearman_correlation",
    "rank_of",
    "top_k_overlap",
    "TimingResult",
    "time_call",
    "fit_loglog_slope",
]
