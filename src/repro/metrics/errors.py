"""Approximation-error and correlation metrics for valuation results.

The paper states its guarantees in max-norm (``(epsilon, delta)``
approximation bounds ``max_i |s_hat_i - s_i|``), compares value
*vectors* by scatter-plot correlation (Figures 14b, 15b, 16), and cares
about value *rankings* for data selection — so this module provides all
three views, built from scratch on numpy (Spearman included, since
scipy's version is about ties, not speed, and ours handles them the
same way via average ranks).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataValidationError

__all__ = [
    "max_abs_error",
    "mean_abs_error",
    "pearson_correlation",
    "spearman_correlation",
    "rank_of",
    "top_k_overlap",
]


def _pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise DataValidationError(
            f"arrays must have equal length, got {a.shape} and {b.shape}"
        )
    if a.size == 0:
        raise DataValidationError("arrays must be non-empty")
    return a, b


def max_abs_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """``max_i |estimate_i - truth_i|`` — the paper's error norm."""
    a, b = _pair(estimate, truth)
    return float(np.max(np.abs(a - b)))


def mean_abs_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute error."""
    a, b = _pair(estimate, truth)
    return float(np.mean(np.abs(a - b)))


def pearson_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation; 0.0 when either vector is constant."""
    a, b = _pair(a, b)
    sa, sb = a.std(), b.std()
    if sa == 0 or sb == 0:
        return 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (sa * sb))


def rank_of(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank."""
    values = np.asarray(values, dtype=np.float64).ravel()
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[order] = np.arange(1, values.size + 1, dtype=np.float64)
    # average ranks over tie groups
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = 0.5 * (i + 1 + j + 1)
        i = j + 1
    return ranks


def spearman_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (Pearson on average ranks)."""
    a, b = _pair(a, b)
    return pearson_correlation(rank_of(a), rank_of(b))


def top_k_overlap(a: np.ndarray, b: np.ndarray, k: int) -> float:
    """Fraction of the top-``k`` of ``a`` that also make ``b``'s top-``k``.

    Measures agreement on the *selection* task (keep the k most
    valuable points), which truncation provably preserves for the K*
    nearest neighbors (Theorem 2).
    """
    a, b = _pair(a, b)
    if not 1 <= k <= a.size:
        raise DataValidationError(f"k must lie in [1, {a.size}], got {k}")
    top_a = set(np.argsort(-a, kind="stable")[:k].tolist())
    top_b = set(np.argsort(-b, kind="stable")[:k].tolist())
    return len(top_a & top_b) / k
