"""Typed exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
distinguish library failures from programming errors with a single
``except`` clause.  Sub-classes are deliberately fine-grained: the
valuation algorithms are numerical and an error message that names the
offending parameter is worth far more than a bare ``ValueError``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataValidationError",
    "ParameterError",
    "KernelCapabilityError",
    "MemoryBudgetError",
    "NotFittedError",
    "ConvergenceError",
    "UtilityError",
    "ShardError",
    "AdmissionRejectedError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class DataValidationError(ReproError, ValueError):
    """Raised when input data fails shape, dtype, or consistency checks.

    Examples include a feature matrix whose row count disagrees with the
    label vector, non-finite feature values, or an empty training set
    passed to an algorithm that requires at least one point.
    """


class ParameterError(ReproError, ValueError):
    """Raised when an algorithm parameter is outside its valid domain.

    Examples include ``k <= 0``, an approximation target ``epsilon <= 0``,
    or a failure probability ``delta`` outside ``(0, 1)``.
    """


class KernelCapabilityError(ParameterError):
    """Raised when a requested kernel path needs a capability the
    supplied weight function (or task) does not declare.

    The weighted kernel's ``piecewise`` path, for example, requires a
    *rank-only* weight function: custom callables must set
    ``fn.rank_only = True`` to declare it.  :attr:`capability` names
    the missing flag so callers can fix the declaration rather than
    parse the message.
    """

    def __init__(self, message: str, capability: str | None = None) -> None:
        super().__init__(message)
        #: name of the missing capability flag (e.g. ``"rank_only"``)
        self.capability = capability


class MemoryBudgetError(ReproError, RuntimeError):
    """Raised when a materialized execution path would exceed its
    configured memory budget.

    The weighted kernel's ``vectorized`` path materializes every
    size-(K-1) configuration row; when the estimate passes the budget
    the request must either switch to ``mode="streaming"`` (fixed-size
    configuration blocks, same sums bit-for-bit) or raise the budget.
    Carries both sides of the comparison in bytes.
    """

    def __init__(
        self,
        message: str,
        estimated_bytes: int | None = None,
        budget_bytes: int | None = None,
    ) -> None:
        super().__init__(message)
        #: estimated resident bytes of the materialized configurations
        self.estimated_bytes = estimated_bytes
        #: configured budget in bytes
        self.budget_bytes = budget_bytes


class NotFittedError(ReproError, RuntimeError):
    """Raised when a model or index is queried before being fitted/built."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative procedure fails to reach its target.

    Used by the numerical solver for the Bennett permutation bound and by
    the gradient-descent trainer for logistic regression.
    """


class UtilityError(ReproError, ValueError):
    """Raised when a utility function is evaluated on an invalid coalition."""


class ShardError(ReproError, RuntimeError):
    """Raised when the sharded tier cannot serve a request.

    Emitted by :class:`repro.engine.sharding.ShardRouter` when a shard
    times out or fails (after its retry) under the ``"fail"`` policy,
    or when every shard is unavailable under the ``"partial"`` policy.
    Carries the per-shard reasons in :attr:`reasons`.
    """

    def __init__(self, message: str, reasons: dict | None = None) -> None:
        super().__init__(message)
        #: mapping of shard label -> failure reason
        self.reasons = dict(reasons or {})


class AdmissionRejectedError(ReproError, RuntimeError):
    """Raised when admission control refuses (or abandons) a job.

    Emitted by :class:`repro.engine.service.ValuationService` in two
    places: at submit time, when the bounded queue is full under the
    ``admission="shed"`` policy, and at shutdown, when the worker pool
    exited (or was shut down) before a queued job could run — the
    typed alternative to leaving a caller blocked on ``job.result()``
    forever.  Carries the queue state so a client can implement
    backpressure instead of parsing the message.
    """

    def __init__(
        self,
        message: str,
        queue_depth: int | None = None,
        max_queue: int | None = None,
    ) -> None:
        super().__init__(message)
        #: queued jobs at the moment of rejection
        self.queue_depth = queue_depth
        #: the queue bound that was hit (``None`` at shutdown)
        self.max_queue = max_queue


class DeadlineExceededError(ReproError, TimeoutError):
    """Raised when a request's deadline expires before (or while) serving.

    Emitted by the service when a job's ``deadline_ms`` budget is
    already spent on queue wait, and by the engine/router when the
    propagated remaining budget runs out mid-request (between chunks,
    or before a shard fan-out leg could be afforded).  Carries both
    sides of the comparison in seconds.
    """

    def __init__(
        self,
        message: str,
        deadline_s: float | None = None,
        elapsed_s: float | None = None,
    ) -> None:
        super().__init__(message)
        #: the total budget the request carried, in seconds
        self.deadline_s = deadline_s
        #: time already spent when the budget check failed
        self.elapsed_s = elapsed_s
