"""The paper's algorithmic contributions.

Exact algorithms
----------------
* :func:`exact_knn_shapley` — Theorem 1 / Algorithm 1 (O(N log N))
* :func:`exact_knn_regression_shapley` — Theorem 6 (O(N log N))
* :func:`exact_weighted_knn_shapley` — Theorem 7 (O(N^K))
* :func:`exact_grouped_knn_shapley` — Theorem 8 (O(M^K))
* :func:`composite_knn_shapley` & friends — Theorems 9-12

Approximations
--------------
* :func:`truncated_knn_shapley` — Theorem 2, (epsilon, 0)
* :func:`baseline_mc_shapley` — Section 2.2 baseline (Hoeffding)
* :func:`improved_mc_shapley` — Algorithm 2 (Bennett / heuristic)

Oracles and bounds
------------------
* :mod:`repro.core.brute` — exponential-time reference implementations
* :mod:`repro.core.bounds` — permutation budgets (Theorem 5)
* :mod:`repro.core.piecewise` — Appendix F counting framework

Dynamic datasets
----------------
* :mod:`repro.core.delta` — rank-local insert/delete repairs of the
  Theorem 1 recursion (the math under
  :class:`repro.engine.incremental.IncrementalValuator`)

Kernel layer
------------
* :mod:`repro.core.kernels` — the :class:`~repro.core.kernels.RankPlan`
  rank-space input, the registry of vectorized
  :class:`~repro.core.kernels.ValuationKernel` recursions (``exact``,
  ``truncated``, ``regression``, ``weighted``) and their capability
  records.  The modules above are thin wrappers over it, and the
  execution layers (:mod:`repro.engine`, streaming, LSH) dispatch
  through it.
"""

from .bounds import (
    bennett_approx_permutations,
    bennett_h,
    bennett_permutations,
    bennett_qi,
    hoeffding_permutations,
)
from .brute import all_subset_values, shapley_by_permutations, shapley_by_subsets
from .composite import (
    composite_grouped_knn_shapley,
    composite_knn_regression_shapley,
    composite_knn_shapley,
    composite_weighted_knn_shapley,
)
from .delta import (
    insert_rank_values,
    insertion_position,
    rank_factor,
    removal_position,
    remove_rank_values,
    suffix_rank_values,
    suffix_rank_values_rows,
)
from .exact import (
    exact_knn_shapley,
    exact_knn_shapley_from_order,
    knn_shapley_single_test,
)
from .grouped import exact_grouped_knn_shapley, grouped_shapley_single_test
from .heap import KNearestHeap
from .kernels import (
    BatchedWeightedRecursion,
    KernelCapabilities,
    RankPlan,
    ValuationKernel,
    available_kernels,
    classification_rank_values,
    get_kernel,
    pad_weight_table,
    register_kernel,
    regression_rank_values,
    truncated_rank_values,
    weighted_rank_only_values,
    weighted_rank_values,
    weighted_rank_values_batched,
)
from .montecarlo import baseline_mc_shapley, improved_mc_shapley
from .piecewise import (
    chain_values_from_differences,
    falling_binomial,
    knn_group_count,
    knn_group_weight_closed_form,
    shapley_difference_from_groups,
    weighted_knn_anchor_coefficients,
    weighted_knn_group_weight_totals,
    weighted_knn_pair_groups,
)
from .regression import exact_knn_regression_shapley, regression_shapley_from_order
from .streaming import StreamingKNNShapley
from .truncated import (
    truncated_knn_shapley,
    truncated_values_from_labels,
    truncation_rank,
)
from .weighted import exact_weighted_knn_shapley, weighted_shapley_single_test

__all__ = [
    "RankPlan",
    "ValuationKernel",
    "KernelCapabilities",
    "register_kernel",
    "get_kernel",
    "available_kernels",
    "classification_rank_values",
    "truncated_rank_values",
    "regression_rank_values",
    "weighted_rank_values",
    "weighted_rank_only_values",
    "weighted_rank_values_batched",
    "BatchedWeightedRecursion",
    "pad_weight_table",
    "exact_knn_shapley",
    "exact_knn_shapley_from_order",
    "knn_shapley_single_test",
    "rank_factor",
    "insertion_position",
    "removal_position",
    "suffix_rank_values",
    "suffix_rank_values_rows",
    "insert_rank_values",
    "remove_rank_values",
    "exact_knn_regression_shapley",
    "regression_shapley_from_order",
    "exact_weighted_knn_shapley",
    "weighted_shapley_single_test",
    "exact_grouped_knn_shapley",
    "grouped_shapley_single_test",
    "composite_knn_shapley",
    "composite_knn_regression_shapley",
    "composite_weighted_knn_shapley",
    "composite_grouped_knn_shapley",
    "truncated_knn_shapley",
    "truncated_values_from_labels",
    "truncation_rank",
    "baseline_mc_shapley",
    "improved_mc_shapley",
    "StreamingKNNShapley",
    "hoeffding_permutations",
    "bennett_permutations",
    "bennett_approx_permutations",
    "bennett_qi",
    "bennett_h",
    "shapley_by_subsets",
    "shapley_by_permutations",
    "all_subset_values",
    "KNearestHeap",
    "shapley_difference_from_groups",
    "knn_group_count",
    "knn_group_weight_closed_form",
    "chain_values_from_differences",
    "falling_binomial",
    "weighted_knn_pair_groups",
    "weighted_knn_group_weight_totals",
    "weighted_knn_anchor_coefficients",
]
