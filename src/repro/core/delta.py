"""Rank-local delta updates to the Theorem 1 recursion.

The exact KNN Shapley recursion is *rank-local*: writing ``f(i) =
min(K, i) / (K i)``, the per-test values in rank space are

.. code-block:: text

    s[n-1] = m[n-1] * min(K, n) / (n K)                    (anchor)
    s[j]   = s[j+1] + (m[j] - m[j+1]) * f(j+1)             (recursion)

so each *difference* ``s[j] - s[j+1]`` depends only on the adjacent
match pair ``(m[j], m[j+1])`` and the rank ``j+1``.  Inserting a
training point at sorted position ``p`` (or deleting the point at
``p``) therefore leaves every difference strictly above the insertion
boundary untouched: only the anchor and the boundaries at positions
``>= p - 1`` change.  The exact new value vector is recovered by

1. re-running the recursion over the affected *suffix* (positions
   ``>= p``),
2. taking one recursion step across the ``p-1``/``p`` boundary, and
3. shifting the untouched prefix by the constant
   ``delta = s_new[p-1] - s_old[p-1]``

— O(n - p) work instead of a fresh O(n d) distance pass and
O(n log n) sort.  This is what makes valuation of *dynamic* datasets
(churning data-market sellers) cheap: see
:class:`repro.engine.incremental.IncrementalValuator` for the
orchestration across test points and backends.

The suffix recomputation reuses the exact floating-point evaluation
order of :func:`repro.core.exact.exact_knn_shapley_from_order` (same
diff formula, same reversed ``cumsum``), so a suffix recomputed after a
deletion is *bit-identical* to the values a from-scratch run would
produce at those ranks.  Only the prefix shift can differ from a fresh
run, by one rounding of the constant per element.

This module is deliberately free of any distance or backend logic —
pure rank-space math on one test point's state — so it can be tested
exhaustively against the reference recursion.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "rank_factor",
    "insertion_position",
    "removal_position",
    "suffix_rank_values",
    "suffix_rank_values_rows",
    "insert_rank_values",
    "remove_rank_values",
]


def rank_factor(pos: int, k: int) -> float:
    """The recursion coefficient ``f(i) = min(K, i) / (K i)`` at rank ``pos``.

    This single expression multiplies every match difference in the
    Theorem 1 recursion; the delta functions here and the batched
    repair in :mod:`repro.engine.incremental` all route through it so
    the formula cannot drift between the per-row reference and the
    vectorized production path.
    """
    return min(float(k), float(pos)) / (k * pos)


def insertion_position(sorted_dist: np.ndarray, d_new: float) -> int:
    """Sorted position a *new* training point takes in a distance row.

    ``sorted_dist`` is one test point's ascending distance vector.  The
    new point receives the largest training index, and ties are broken
    by index throughout the codebase, so among equal distances it ranks
    *after* every incumbent — i.e. ``searchsorted(..., side="right")``.
    """
    return int(np.searchsorted(sorted_dist, d_new, side="right"))


def removal_position(order_row: np.ndarray, train_idx: int) -> int:
    """Rank position of training point ``train_idx`` in one order row."""
    pos = np.nonzero(order_row == train_idx)[0]
    if pos.size != 1:
        raise ParameterError(
            f"training index {train_idx} appears {pos.size} times in the "
            "ranking; state is corrupt"
        )
    return int(pos[0])


def suffix_rank_values(match: np.ndarray, start: int, k: int) -> np.ndarray:
    """Theorem 1 values at rank positions ``start .. n-1``.

    ``match`` is the full 0/1 match vector in rank order for one test
    point (``match[j] = 1`` iff the ``j+1``-th nearest neighbor carries
    the test label).  Returns ``s[start:]`` — computed with the same
    floating-point operation order as the full recursion in
    :mod:`repro.core.exact`, so for any ``start`` the result is
    bit-identical to the corresponding slice of a from-scratch run.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    match = np.asarray(match, dtype=np.float64)
    n = match.shape[0]
    if not 0 <= start < n:
        raise ParameterError(f"start must lie in [0, {n}), got {start}")
    out = np.empty(n - start, dtype=np.float64)
    anchor = match[-1] * (min(k, n) / (n * k))
    out[-1] = anchor
    if n - start > 1:
        ranks = np.arange(start + 1, n, dtype=np.float64)
        factors = np.minimum(float(k), ranks) / (k * ranks)
        diffs = (match[start:-1] - match[start + 1 :]) * factors
        out[:-1] = np.cumsum(diffs[::-1])[::-1] + anchor
    return out


def suffix_rank_values_rows(
    match_rows: np.ndarray, start: int, k: int
) -> np.ndarray:
    """Vectorized :func:`suffix_rank_values` over many test points.

    ``match_rows`` has shape ``(n_test, n)`` — one match vector per
    test point (any integer or float dtype; 0/1 values).  Returns the
    ``(n_test, n - start)`` block of rank-space values at positions
    ``start .. n-1``, each row bit-identical to the corresponding
    slice of a from-scratch recursion.

    This is the engine-facing entry point: per-test mutation positions
    differ, so the maintainer recomputes from the *minimum* affected
    position across the batch — one vectorized pass instead of a
    Python loop over ragged per-test suffixes.  (Positions between the
    common ``start`` and a row's own mutation point are recomputed
    redundantly but *identically*: the recursion from any earlier
    start yields the same values.)
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    match_rows = np.atleast_2d(match_rows)
    n_test, n = match_rows.shape
    if not 0 <= start < n:
        raise ParameterError(f"start must lie in [0, {n}), got {start}")
    out = np.empty((n_test, n - start), dtype=np.float64)
    anchor = match_rows[:, -1] * (min(k, n) / (n * k))
    out[:, -1] = anchor
    if n - start > 1:
        # The recursion accumulates diffs from the far end inward; the
        # reference runs cumsum over a reversed *view*, which numpy
        # walks with negative strides at a multiple of the contiguous
        # speed.  Building the reversed diff array directly (same
        # values, same summation order — bit-identical output) lets
        # the cumsum, the dominant pass, run contiguously.
        ranks_rev = np.arange(n - 1, start, -1, dtype=np.float64)
        factors_rev = np.minimum(float(k), ranks_rev) / (k * ranks_rev)
        rev = match_rows[:, ::-1]
        diffs_rev = (rev[:, 1 : n - start] - rev[:, : n - start - 1]) * factors_rev
        np.cumsum(diffs_rev, axis=1, out=diffs_rev)
        np.add(diffs_rev[:, ::-1], anchor[:, None], out=out[:, :-1])
    return out


def _boundary_step(match: np.ndarray, pos: int, k: int) -> float:
    """The recursion step ``s[pos-1] - s[pos]`` from the match vector."""
    return (match[pos - 1] - match[pos]) * rank_factor(pos, k)


def insert_rank_values(
    s_old: np.ndarray, match_new: np.ndarray, pos: int, k: int
) -> np.ndarray:
    """Per-test values after inserting one training point at rank ``pos``.

    Parameters
    ----------
    s_old:
        Rank-space values before the insertion, length ``n``.
    match_new:
        Match vector *after* the insertion, length ``n + 1`` (the new
        point's match already spliced in at ``pos``).
    pos:
        0-based sorted position the new point occupies (from
        :func:`insertion_position`).
    k:
        The K of KNN.

    Returns
    -------
    numpy.ndarray
        Rank-space values for the grown ranking, length ``n + 1``.
        Positions ``>= pos`` are recomputed exactly; positions
        ``< pos`` are the old values shifted by the constant the
        recursion propagates across the insertion boundary.
    """
    match_new = np.asarray(match_new, dtype=np.float64)
    n1 = match_new.shape[0]
    if s_old.shape[0] != n1 - 1:
        raise ParameterError(
            f"s_old has length {s_old.shape[0]}, expected {n1 - 1}"
        )
    if not 0 <= pos <= n1 - 1:
        raise ParameterError(f"pos must lie in [0, {n1 - 1}], got {pos}")
    s_new = np.empty(n1, dtype=np.float64)
    s_new[pos:] = suffix_rank_values(match_new, pos, k)
    if pos > 0:
        s_boundary = s_new[pos] + _boundary_step(match_new, pos, k)
        s_new[: pos - 1] = s_old[: pos - 1] + (s_boundary - s_old[pos - 1])
        s_new[pos - 1] = s_boundary
    return s_new


def remove_rank_values(
    s_old: np.ndarray, match_new: np.ndarray, pos: int, k: int
) -> np.ndarray:
    """Per-test values after deleting the training point at rank ``pos``.

    Parameters
    ----------
    s_old:
        Rank-space values before the deletion, length ``n >= 2``.
    match_new:
        Match vector *after* the deletion, length ``n - 1``.
    pos:
        0-based sorted position the deleted point held.
    k:
        The K of KNN.

    Returns
    -------
    numpy.ndarray
        Rank-space values for the shrunk ranking, length ``n - 1``.

    Notes
    -----
    Deleting the *farthest* point (``pos == n - 1``) shifts no rank,
    but still changes the anchor (its ``min(K, n)/(n K)`` coefficient
    sees the new ``n``), so the recomputed suffix always includes at
    least the last position.
    """
    match_new = np.asarray(match_new, dtype=np.float64)
    n1 = match_new.shape[0]
    if n1 == 0:
        raise ParameterError("cannot remove the last remaining training point")
    if s_old.shape[0] != n1 + 1:
        raise ParameterError(
            f"s_old has length {s_old.shape[0]}, expected {n1 + 1}"
        )
    if not 0 <= pos <= n1:
        raise ParameterError(f"pos must lie in [0, {n1}], got {pos}")
    start = min(pos, n1 - 1)
    s_new = np.empty(n1, dtype=np.float64)
    s_new[start:] = suffix_rank_values(match_new, start, k)
    if start > 0:
        s_boundary = s_new[start] + _boundary_step(match_new, start, k)
        s_new[: start - 1] = s_old[: start - 1] + (s_boundary - s_old[start - 1])
        s_new[start - 1] = s_boundary
    return s_new
