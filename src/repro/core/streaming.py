"""Streaming Shapley accumulation over sequentially arriving test points.

Section 3.2 motivates the approximate algorithms with retrieval-style
deployments: queries arrive one at a time and every training point's
value must be updated *on the fly* — re-running a batch job per query
wastes the work, and the running average over queries is exactly the
multi-test Shapley value (eq 8) by additivity.

:class:`StreamingKNNShapley` maintains that running average.  Retrieval
delegates to the fit-once backends of :mod:`repro.engine.backends`:

* ``"exact"`` — rank the full training set per query (Theorem 1) with
  an exact backend;
* ``"lsh"`` — retrieve only the K* nearest with a pre-built LSH index
  and apply the truncated recursion (Theorems 2 + 4), giving sublinear
  per-query cost at an (epsilon, delta) guarantee.

Any other registered backend name (e.g. ``"blocked"``) or a pre-built
:class:`~repro.engine.backends.NeighborBackend` is accepted too;
backends that cannot produce full rankings use the truncated path.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike
from ..types import (
    ValuationResult,
    as_float_matrix,
    as_label_vector,
    as_new_points,
)
from .kernels import RankPlan, get_kernel, truncation_rank

__all__ = ["StreamingKNNShapley"]


class StreamingKNNShapley:
    """Accumulate KNN Shapley values as test points stream in.

    The training set need not stay fixed: :meth:`add_points` /
    :meth:`remove_points` mutate it between queries, splicing sellers
    in and out of the running accumulation.

    Parameters
    ----------
    x_train, y_train:
        The initial training set being valued.
    k:
        The K of KNN.
    backend:
        ``"exact"`` (full rankings via the brute backend), ``"lsh"``,
        any other registered backend name, or a pre-built
        :class:`~repro.engine.backends.NeighborBackend`.
    epsilon, delta:
        Approximation targets for truncated-path backends (ignored by
        exact ones).
    metric:
        Distance metric for exact backends (the LSH backend is l2).
    seed:
        Seed for the LSH index construction.
    """

    def __init__(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        k: int,
        backend="exact",
        epsilon: float = 0.1,
        delta: float = 0.1,
        metric: str = "euclidean",
        seed: SeedLike = None,
    ) -> None:
        # imported lazily: repro.core must not depend on repro.engine
        # at import time (the engine builds on core)
        from ..engine.backends import (
            LSHNeighborBackend,
            NeighborBackend,
            available_backends,
            make_backend,
        )

        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        self.x_train = as_float_matrix(x_train, "x_train")
        self.y_train = as_label_vector(y_train, self.x_train.shape[0], "y_train")
        self.k = int(k)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.metric = metric
        self.n_train = self.x_train.shape[0]
        self._totals = np.zeros(self.n_train, dtype=np.float64)
        self._n_queries = 0
        self._k_star = truncation_rank(self.k, self.epsilon)
        if isinstance(backend, NeighborBackend):
            self._backend = backend
            self.backend = backend.name
        elif backend == "exact":
            # historical alias for exact full-ranking retrieval
            self._backend = make_backend("brute", metric=metric)
            self.backend = "exact"
        elif backend == "lsh":
            self._backend = LSHNeighborBackend(
                delta=self.delta,
                alpha=0.5,
                tune_with_queries=False,
                seed=seed,
            )
            self.backend = "lsh"
        elif backend in available_backends():
            self._backend = make_backend(backend, metric=metric)
            self.backend = backend
        else:
            raise ParameterError(
                f"backend must be 'exact', a registered backend name "
                f"{available_backends()}, or a NeighborBackend instance; "
                f"got {backend!r}"
            )
        self._backend.fit(self.x_train)
        self._exact_updates = self._backend.supports_full_ranking
        if not self._exact_updates:
            # build the index up front so the first query is not slow
            self._backend.prepare(None, min(self._k_star, self.n_train))

    # ------------------------------------------------------------------
    @property
    def n_queries(self) -> int:
        """Number of test points consumed so far."""
        return self._n_queries

    def update(self, x_test: np.ndarray, y_test: object) -> np.ndarray:
        """Consume one test point; return its single-test value vector."""
        x_test = np.asarray(x_test, dtype=np.float64).reshape(1, -1)
        if x_test.shape[1] != self.x_train.shape[1]:
            raise ParameterError(
                f"query has {x_test.shape[1]} features, expected "
                f"{self.x_train.shape[1]}"
            )
        # one incremental RankPlan per arriving query; the kernels
        # scatter rank-space values back to training-index order
        y_row = np.atleast_1d(np.asarray(y_test))[:1]
        if self._exact_updates:
            order = self._backend.rank(x_test)
            plan = RankPlan.from_order(order, self.y_train, y_row)
            contribution = get_kernel("exact").values_from_plan(plan, self.k)[0]
        else:
            idx, _ = self._backend.query(
                x_test, min(self._k_star, self.n_train)
            )
            plan = RankPlan.from_neighbor_rows(idx[:1], self.y_train, y_row)
            contribution = get_kernel("truncated").values_from_plan(
                plan, self.k, k_star=self._k_star, exact_anchor=True
            )[0]
        self._totals += contribution
        self._n_queries += 1
        return contribution

    # ------------------------------------------------------------------
    # dynamic training sets: mutations between queries
    def add_points(self, x_new: np.ndarray, y_new: np.ndarray) -> np.ndarray:
        """Add training points between queries; returns their indices.

        The running totals are additive per query (eq 8), so a new
        point simply starts accumulating from zero: queries consumed
        *before* it joined contribute nothing to its value, which is
        the natural online semantics for a seller entering the market
        mid-stream.  Exact backends absorb the append in place; the
        LSH backend hashes the newcomers into its existing buckets and
        only refits (with a ``RuntimeWarning``) once ``n`` drifts
        beyond the size its tables were tuned for.
        """
        x_new, y_new = as_new_points(x_new, y_new, self.x_train.shape[1])
        first = self.n_train
        self.y_train = np.concatenate((self.y_train, y_new))
        self._totals = np.concatenate(
            (self._totals, np.zeros(x_new.shape[0], dtype=np.float64))
        )
        self._backend.partial_fit(x_new)
        # alias the backend's index — one training-set copy, not two
        self.x_train = self._backend.data
        self.n_train = self.x_train.shape[0]
        if not self._exact_updates:
            # rebuild the truncated-path index eagerly, as in __init__
            self._backend.prepare(None, min(self._k_star, self.n_train))
        return np.arange(first, self.n_train, dtype=np.intp)

    def remove_points(self, idx) -> None:
        """Drop training points by index (``numpy.delete`` semantics).

        The departed points' accumulated totals leave with them; the
        surviving points keep theirs, so :meth:`values` keeps averaging
        over every query consumed so far.
        """
        idx = np.atleast_1d(np.asarray(idx, dtype=np.intp))
        if idx.size == 0:
            return
        # the backend validates range/uniqueness/non-emptiness against
        # the same n before anything is touched
        self._backend.forget(idx)
        self.x_train = self._backend.data
        self.y_train = np.delete(self.y_train, idx)
        self._totals = np.delete(self._totals, idx)
        self.n_train = self.x_train.shape[0]
        if not self._exact_updates:
            self._backend.prepare(None, min(self._k_star, self.n_train))

    def update_batch(
        self, x_test: np.ndarray, y_test: np.ndarray
    ) -> np.ndarray:
        """Consume several test points; return their mean value vector."""
        x_test = as_float_matrix(x_test, "x_test")
        y_test = as_label_vector(y_test, x_test.shape[0], "y_test")
        acc = np.zeros(self.n_train, dtype=np.float64)
        for j in range(x_test.shape[0]):
            acc += self.update(x_test[j], y_test[j])
        return acc / max(1, x_test.shape[0])

    def values(self) -> ValuationResult:
        """The running multi-test Shapley values (mean over queries)."""
        if self._n_queries == 0:
            raise ParameterError("no test points consumed yet")
        return ValuationResult(
            values=self._totals / self._n_queries,
            method=f"streaming-{self.backend}",
            extra={
                "k": self.k,
                "n_queries": self._n_queries,
                "epsilon": 0.0 if self._exact_updates else self.epsilon,
            },
        )

    def reset(self) -> None:
        """Forget all consumed queries (the index is kept)."""
        self._totals[:] = 0.0
        self._n_queries = 0
