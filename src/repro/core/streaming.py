"""Streaming Shapley accumulation over sequentially arriving test points.

Section 3.2 motivates the approximate algorithms with retrieval-style
deployments: queries arrive one at a time and every training point's
value must be updated *on the fly* — re-running a batch job per query
wastes the work, and the running average over queries is exactly the
multi-test Shapley value (eq 8) by additivity.

:class:`StreamingKNNShapley` maintains that running average.  Two
backends:

* ``"exact"`` — rank the full training set per query (Theorem 1);
* ``"lsh"`` — retrieve only the K* nearest with a pre-built LSH index
  and apply the truncated recursion (Theorems 2 + 4), giving sublinear
  per-query cost at an (epsilon, delta) guarantee.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ParameterError
from ..knn.search import argsort_by_distance
from ..rng import SeedLike
from ..types import ValuationResult, as_float_matrix, as_label_vector
from .exact import knn_shapley_single_test
from .truncated import truncated_values_from_labels, truncation_rank

__all__ = ["StreamingKNNShapley"]


class StreamingKNNShapley:
    """Accumulate KNN Shapley values as test points stream in.

    Parameters
    ----------
    x_train, y_train:
        The (fixed) training set being valued.
    k:
        The K of KNN.
    backend:
        ``"exact"`` or ``"lsh"``.
    epsilon, delta:
        Approximation targets for the LSH backend (ignored by exact).
    metric:
        Distance metric for the exact backend (the LSH backend is l2).
    seed:
        Seed for the LSH index construction.
    """

    def __init__(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        k: int,
        backend: str = "exact",
        epsilon: float = 0.1,
        delta: float = 0.1,
        metric: str = "euclidean",
        seed: SeedLike = None,
    ) -> None:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        if backend not in ("exact", "lsh"):
            raise ParameterError(
                f"backend must be 'exact' or 'lsh', got {backend!r}"
            )
        self.x_train = as_float_matrix(x_train, "x_train")
        self.y_train = as_label_vector(y_train, self.x_train.shape[0], "y_train")
        self.k = int(k)
        self.backend = backend
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.metric = metric
        self.n_train = self.x_train.shape[0]
        self._totals = np.zeros(self.n_train, dtype=np.float64)
        self._n_queries = 0
        self._index = None
        self._scale = 1.0
        self._k_star = truncation_rank(self.k, self.epsilon)
        if backend == "lsh":
            self._build_index(seed)

    def _build_index(self, seed: SeedLike) -> None:
        from ..lsh.contrast import estimate_relative_contrast
        from ..lsh.tables import LSHIndex
        from ..lsh.tuning import tune_lsh

        k_star = min(self._k_star, max(1, self.n_train - 1))
        est = estimate_relative_contrast(
            self.x_train, self.x_train, k=k_star, seed=seed
        )
        self._scale = 1.0 / est.d_mean if est.d_mean > 0 else 1.0
        from ..lsh.contrast import ContrastEstimate

        est_scaled = ContrastEstimate(
            d_mean=1.0,
            d_k=est.d_k * self._scale,
            contrast=est.contrast,
            k=k_star,
        )
        params = tune_lsh(
            est_scaled,
            n=self.n_train,
            k_star=k_star,
            delta=self.delta,
            alpha=0.5,
        )
        self._index = LSHIndex(
            n_tables=params.n_tables,
            n_bits=params.n_bits,
            width=params.width,
            seed=seed,
        ).build(self.x_train * self._scale)

    # ------------------------------------------------------------------
    @property
    def n_queries(self) -> int:
        """Number of test points consumed so far."""
        return self._n_queries

    def update(self, x_test: np.ndarray, y_test: object) -> np.ndarray:
        """Consume one test point; return its single-test value vector."""
        x_test = np.asarray(x_test, dtype=np.float64).reshape(1, -1)
        if x_test.shape[1] != self.x_train.shape[1]:
            raise ParameterError(
                f"query has {x_test.shape[1]} features, expected "
                f"{self.x_train.shape[1]}"
            )
        contribution = np.zeros(self.n_train, dtype=np.float64)
        if self.backend == "exact":
            order, _ = argsort_by_distance(
                x_test, self.x_train, metric=self.metric
            )
            vals = knn_shapley_single_test(
                self.y_train[order[0]], y_test, self.k
            )
            contribution[order[0]] = vals
        else:
            assert self._index is not None
            idx, _, _ = self._index.query(
                x_test * self._scale, min(self._k_star, self.n_train)
            )
            neighbors = idx[0]
            if neighbors.size:
                vals = truncated_values_from_labels(
                    self.y_train[neighbors],
                    y_test,
                    self.k,
                    self._k_star,
                    n_train=self.n_train,
                )
                contribution[neighbors] = vals
        self._totals += contribution
        self._n_queries += 1
        return contribution

    def update_batch(
        self, x_test: np.ndarray, y_test: np.ndarray
    ) -> np.ndarray:
        """Consume several test points; return their mean value vector."""
        x_test = as_float_matrix(x_test, "x_test")
        y_test = as_label_vector(y_test, x_test.shape[0], "y_test")
        acc = np.zeros(self.n_train, dtype=np.float64)
        for j in range(x_test.shape[0]):
            acc += self.update(x_test[j], y_test[j])
        return acc / max(1, x_test.shape[0])

    def values(self) -> ValuationResult:
        """The running multi-test Shapley values (mean over queries)."""
        if self._n_queries == 0:
            raise ParameterError("no test points consumed yet")
        return ValuationResult(
            values=self._totals / self._n_queries,
            method=f"streaming-{self.backend}",
            extra={
                "k": self.k,
                "n_queries": self._n_queries,
                "epsilon": self.epsilon if self.backend == "lsh" else 0.0,
            },
        )

    def reset(self) -> None:
        """Forget all consumed queries (the index is kept)."""
        self._totals[:] = 0.0
        self._n_queries = 0
