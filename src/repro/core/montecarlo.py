"""Monte Carlo Shapley estimators: the baseline and Algorithm 2.

Two estimators share the permutation-sampling idea of eq (4):

* :func:`baseline_mc_shapley` — the state-of-the-art general-purpose
  baseline the paper compares against (Section 2.2).  It re-evaluates
  the utility on every permutation prefix, which for KNN costs
  O(N) utility evaluations of O(|S|) each — O(N^2) work per permutation
  — and budgets permutations with Hoeffding's inequality.
* :func:`improved_mc_shapley` — the paper's Algorithm 2.  A bounded
  max-heap maintains the K nearest neighbors of each test point along
  the permutation; the utility can only change when the heap changes,
  so each insertion costs O(log K) plus an O(1)/O(K) utility update.
  The permutation budget comes from Bennett's inequality (Theorem 5),
  or from the paper's convergence heuristic (stop when the running
  estimates move less than ``epsilon / 50``).

The improved estimator understands the KNN utility family natively
(classification, regression, weighted variants, and seller-grouped
versions of each); the baseline works with any
:class:`~repro.utility.base.UtilityFunction`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng
from ..types import ValuationResult
from ..utility.base import UtilityFunction
from ..utility.grouped import GroupedUtility
from ..utility.knn_utility import KNNClassificationUtility
from ..utility.regression_utility import KNNRegressionUtility
from ..utility.weighted_utility import (
    WeightedKNNClassificationUtility,
    WeightedKNNRegressionUtility,
)
from .bounds import bennett_permutations, hoeffding_permutations
from .heap import KNearestHeap

__all__ = ["baseline_mc_shapley", "improved_mc_shapley"]


# ----------------------------------------------------------------------
# baseline estimator
# ----------------------------------------------------------------------
def baseline_mc_shapley(
    utility: UtilityFunction,
    epsilon: float = 0.1,
    delta: float = 0.1,
    n_permutations: Optional[int] = None,
    seed: SeedLike = None,
) -> ValuationResult:
    """Permutation-sampling Shapley estimation (the paper's baseline).

    Parameters
    ----------
    utility:
        Any coalition utility.
    epsilon, delta:
        Target (epsilon, delta) max-norm guarantee; used to size the
        permutation budget via Hoeffding's inequality when
        ``n_permutations`` is not given.
    n_permutations:
        Explicit permutation count (overrides the Hoeffding budget).
    seed:
        Random seed or generator.

    Returns
    -------
    ValuationResult
        ``extra['n_permutations']`` records the budget used.
    """
    n = utility.n_players
    r = utility.difference_range()
    if n_permutations is None:
        n_permutations = hoeffding_permutations(epsilon, delta, n, r)
    if n_permutations <= 0:
        raise ParameterError(
            f"n_permutations must be positive, got {n_permutations}"
        )
    rng = ensure_rng(seed)
    totals = np.zeros(n, dtype=np.float64)
    members = np.empty(n, dtype=np.intp)
    for _ in range(n_permutations):
        perm = rng.permutation(n)
        prev = utility._evaluate(np.empty(0, dtype=np.intp))
        for pos, player in enumerate(perm):
            members[pos] = player
            cur = utility._evaluate(np.sort(members[: pos + 1]))
            totals[player] += cur - prev
            prev = cur
    return ValuationResult(
        values=totals / n_permutations,
        method="mc-baseline",
        extra={
            "n_permutations": int(n_permutations),
            "epsilon": epsilon,
            "delta": delta,
            "bound": "hoeffding",
        },
    )


# ----------------------------------------------------------------------
# incremental per-test states for Algorithm 2
# ----------------------------------------------------------------------
class _IncrementalState:
    """Per-test-point incremental utility along one permutation."""

    def insert(self, player: int) -> float:
        """Insert a training point; return the utility change."""
        raise NotImplementedError

    def reset(self) -> None:
        """Prepare for a new permutation."""
        raise NotImplementedError


class _ClassificationState(_IncrementalState):
    """Unweighted classification: utility = (#matching in heap) / K."""

    def __init__(self, dist: np.ndarray, match: np.ndarray, k: int) -> None:
        self._dist = dist  # distance of each training point to this test
        self._match = match  # 1.0 when labels agree with the test label
        self._k = k
        self._heap = KNearestHeap(k)

    def reset(self) -> None:
        self._heap.clear()

    def insert(self, player: int) -> float:
        entered, evicted = self._heap.push(float(self._dist[player]), player)
        if not entered:
            return 0.0
        delta = self._match[player]
        if evicted is not None:
            delta -= self._match[evicted]
        return float(delta) / self._k


class _RegressionState(_IncrementalState):
    """Unweighted regression: utility = -((sum in heap)/K - t)^2."""

    def __init__(self, dist: np.ndarray, y: np.ndarray, t: float, k: int) -> None:
        self._dist = dist
        self._y = y
        self._t = t
        self._k = k
        self._heap = KNearestHeap(k)
        self._label_sum = 0.0

    def reset(self) -> None:
        self._heap.clear()
        self._label_sum = 0.0

    def _value(self) -> float:
        return -((self._label_sum / self._k - self._t) ** 2)

    def insert(self, player: int) -> float:
        before = self._value()
        entered, evicted = self._heap.push(float(self._dist[player]), player)
        if not entered:
            return 0.0
        self._label_sum += float(self._y[player])
        if evicted is not None:
            self._label_sum -= float(self._y[evicted])
        return self._value() - before


class _WeightedState(_IncrementalState):
    """Weighted variants: recompute the O(K) utility on heap change."""

    def __init__(
        self,
        dist: np.ndarray,
        y: np.ndarray,
        t: object,
        k: int,
        weight_fn,
        classification: bool,
    ) -> None:
        self._dist = dist
        self._y = y
        self._t = t
        self._k = k
        self._weight_fn = weight_fn
        self._classification = classification
        self._heap = KNearestHeap(k)
        self._current = self._empty_value()

    def _empty_value(self) -> float:
        if self._classification:
            return 0.0
        return -(float(self._t) ** 2)

    def reset(self) -> None:
        self._heap.clear()
        self._current = self._empty_value()

    def _value(self) -> float:
        items = self._heap.items_sorted()
        if not items:
            return self._empty_value()
        dists = np.array([d for d, _ in items])
        idx = np.array([p for _, p in items], dtype=np.intp)
        w = self._weight_fn(dists)
        if self._classification:
            return float(np.dot(w, (self._y[idx] == self._t).astype(np.float64)))
        pred = float(np.dot(w, self._y[idx].astype(np.float64)))
        return -((pred - float(self._t)) ** 2)

    def insert(self, player: int) -> float:
        entered, _ = self._heap.push(float(self._dist[player]), player)
        if not entered:
            return 0.0
        new = self._value()
        delta = new - self._current
        self._current = new
        return delta


def _build_states(utility: UtilityFunction) -> list[_IncrementalState]:
    """Construct one incremental state per test point for ``utility``."""
    if isinstance(utility, KNNClassificationUtility):
        dist = _dist_by_index(utility.order, utility.sorted_distances)
        return [
            _ClassificationState(dist[j], utility.match[j], utility.k)
            for j in range(dist.shape[0])
        ]
    if isinstance(utility, KNNRegressionUtility):
        dist = _dist_by_index(utility.order, utility.sorted_distances)
        return [
            _RegressionState(dist[j], utility.y_train, float(utility.y_test[j]), utility.k)
            for j in range(dist.shape[0])
        ]
    if isinstance(
        utility, (WeightedKNNClassificationUtility, WeightedKNNRegressionUtility)
    ):
        dist = _dist_by_index(utility.order, utility.sorted_distances)
        classification = isinstance(utility, WeightedKNNClassificationUtility)
        y = np.asarray(utility.dataset.y_train)
        return [
            _WeightedState(
                dist[j],
                y,
                utility.dataset.y_test[j],
                utility.k,
                utility.weight_fn,
                classification,
            )
            for j in range(dist.shape[0])
        ]
    raise ParameterError(
        "improved_mc_shapley supports the KNN utility family; got "
        f"{type(utility).__name__}"
    )


def _dist_by_index(order: np.ndarray, sorted_dist: np.ndarray) -> np.ndarray:
    """Undo the sort: distance of training point i to test point j."""
    dist = np.empty_like(sorted_dist)
    np.put_along_axis(dist, order, sorted_dist, axis=1)
    return dist


# ----------------------------------------------------------------------
# improved estimator (Algorithm 2)
# ----------------------------------------------------------------------
def improved_mc_shapley(
    utility: UtilityFunction,
    epsilon: float = 0.1,
    delta: float = 0.1,
    n_permutations: Optional[int] = None,
    stopping: str = "bennett",
    heuristic_tol: Optional[float] = None,
    min_permutations: int = 30,
    patience: int = 5,
    seed: SeedLike = None,
) -> ValuationResult:
    """The paper's improved Monte Carlo estimator (Algorithm 2).

    Parameters
    ----------
    utility:
        A KNN-family utility, possibly wrapped in
        :class:`~repro.utility.grouped.GroupedUtility` (permutations are
        then over sellers and a seller's points are inserted together).
    epsilon, delta:
        Approximation target.
    n_permutations:
        Explicit budget; overrides ``stopping``.
    stopping:
        ``"bennett"`` (Theorem 5 budget), ``"hoeffding"`` (baseline
        budget, for comparison), or ``"heuristic"`` (run until the
        running estimates move less than ``heuristic_tol``, default
        ``epsilon / 50``, for ``patience`` consecutive permutations).
    min_permutations, patience:
        Heuristic-stopping knobs.
    seed:
        Random seed or generator.

    Returns
    -------
    ValuationResult
        Values per player (training point, or seller when grouped);
        ``extra`` records the permutation count and stopping rule.
    """
    grouped: Optional[GroupedUtility] = None
    base = utility
    if isinstance(utility, GroupedUtility):
        grouped = utility
        base = utility.base
    states = _build_states(base)
    n_players = utility.n_players
    n_test = len(states)
    r = base.difference_range()

    if n_permutations is not None:
        budget = int(n_permutations)
        rule = "fixed"
    elif stopping == "bennett":
        k = getattr(base, "k", 1)
        budget = bennett_permutations(epsilon, delta, n_players, k, r)
        rule = "bennett"
    elif stopping == "hoeffding":
        budget = hoeffding_permutations(epsilon, delta, n_players, r)
        rule = "hoeffding"
    elif stopping == "heuristic":
        budget = 10**7  # effectively unbounded; the tolerance stops us
        rule = "heuristic"
    else:
        raise ParameterError(
            f"stopping must be 'bennett', 'hoeffding' or 'heuristic', got {stopping!r}"
        )
    if budget <= 0:
        raise ParameterError(f"permutation budget must be positive, got {budget}")

    tol = heuristic_tol if heuristic_tol is not None else epsilon / 50.0
    rng = ensure_rng(seed)

    members_of = None
    if grouped is not None:
        members_of = [grouped.points_of(np.array([m])) for m in range(n_players)]

    totals = np.zeros(n_players, dtype=np.float64)
    running = np.zeros(n_players, dtype=np.float64)
    calm_streak = 0
    t_done = 0
    for t in range(1, budget + 1):
        perm = rng.permutation(n_players)
        for state in states:
            state.reset()
        phi = np.zeros(n_players, dtype=np.float64)
        for player in perm:
            points = (
                members_of[player] if members_of is not None else (player,)
            )
            delta_sum = 0.0
            for state in states:
                for point in points:
                    delta_sum += state.insert(int(point))
            phi[player] = delta_sum / n_test
        totals += phi
        t_done = t
        if rule == "heuristic":
            new_running = totals / t
            change = float(np.max(np.abs(new_running - running)))
            running = new_running
            if t >= min_permutations and change < tol:
                calm_streak += 1
                if calm_streak >= patience:
                    break
            else:
                calm_streak = 0

    return ValuationResult(
        values=totals / t_done,
        method="mc-improved",
        extra={
            "n_permutations": int(t_done),
            "epsilon": epsilon,
            "delta": delta,
            "stopping": rule,
            "difference_range": r,
        },
    )
