"""Bounded max-heap that maintains a running K-nearest-neighbor set.

Algorithm 2 of the paper ("Improved MC Approach") walks a random
permutation of the training data and needs, after every insertion, to
know whether the K nearest neighbors *changed* — only then does the
utility need re-evaluation.  A max-heap over the currently-kept
distances answers that in O(log K) per insertion, which is where the
O(N log K) per-permutation complexity comes from.
"""

from __future__ import annotations

import heapq
from typing import Optional

from ..exceptions import ParameterError

__all__ = ["KNearestHeap"]


class KNearestHeap:
    """Maintain the ``k`` smallest-distance items seen so far.

    Items are ``(distance, payload)`` pairs.  The structure is a
    max-heap keyed on distance (implemented on :mod:`heapq`'s min-heap
    with negated keys), so the current worst kept item is O(1) to
    inspect and O(log k) to replace.

    Ties are broken by insertion order: an incoming item with distance
    exactly equal to the current maximum does **not** displace it,
    matching the stable, first-come ranking used by the exact
    algorithms.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        self.k = int(k)
        self._heap: list[tuple[float, int, int]] = []
        self._counter = 0  # tie-break: earlier insertions win

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        """True once ``k`` items are kept."""
        return len(self._heap) >= self.k

    def max_distance(self) -> float:
        """Distance of the worst kept item (``inf`` when empty)."""
        if not self._heap:
            return float("inf")
        return -self._heap[0][0]

    def push(self, distance: float, payload: int) -> tuple[bool, Optional[int]]:
        """Offer an item to the heap.

        Returns
        -------
        (entered, evicted):
            ``entered`` is True when the item joined the K-nearest set.
            ``evicted`` is the payload expelled to make room, or ``None``
            if the set was not yet full (or the item did not enter).
        """
        if not self.full:
            heapq.heappush(self._heap, (-distance, -self._counter, payload))
            self._counter += 1
            return True, None
        worst_neg, _, worst_payload = self._heap[0]
        if distance < -worst_neg:
            heapq.heapreplace(self._heap, (-distance, -self._counter, payload))
            self._counter += 1
            return True, worst_payload
        return False, None

    def payloads(self) -> list[int]:
        """Payloads of the kept items, in no particular order."""
        return [p for _, _, p in self._heap]

    def items_sorted(self) -> list[tuple[float, int]]:
        """Kept ``(distance, payload)`` pairs, nearest first."""
        return sorted(((-d, p) for d, _, p in self._heap), key=lambda t: t[0])

    def clear(self) -> None:
        """Empty the heap (reused across permutations)."""
        self._heap.clear()
        self._counter = 0
