"""Sample-complexity bounds for Monte Carlo Shapley estimation.

Three permutation budgets appear in the paper's Figure 11:

* **Hoeffding** (Section 2.2, the baseline): treats every marginal
  contribution as an arbitrary bounded variable, giving
  ``T = (r^2 / (2 eps^2)) * ln(2N / delta)``.
* **Bennett** (Theorem 5, the paper's improvement): exploits that for
  KNN most insertions do not change the K nearest neighbors, so the
  *variance* of the marginal contribution of a far point is tiny even
  though its *range* is not.  The budget solves
  ``sum_i exp(-T (1 - q_i^2) h(eps / ((1 - q_i^2) r))) = delta / 2``
  with ``q_i = 0`` for ``i <= K`` and ``q_i = (i - K)/i`` otherwise,
  and ``h(u) = (1 + u) ln(1 + u) - u``.
* **Bennett, closed-form approximation** (eq 34 / Appendix H):
  ``T ≈ (1 / h(eps / r)) * ln(2K / delta)``, which no longer grows
  with N.

All budgets are per-test-point permutation counts over the training
set; the same permutations serve every training point.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ConvergenceError, ParameterError

__all__ = [
    "bennett_h",
    "hoeffding_permutations",
    "bennett_permutations",
    "bennett_approx_permutations",
    "bennett_qi",
    "certified_epsilon",
]


def _validate(epsilon: float, delta: float, r: float) -> None:
    if epsilon <= 0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ParameterError(f"delta must lie in (0, 1), got {delta}")
    if r <= 0:
        raise ParameterError(f"range r must be positive, got {r}")


def bennett_h(u: np.ndarray | float) -> np.ndarray | float:
    """Bennett's function ``h(u) = (1 + u) ln(1 + u) - u`` (u >= 0)."""
    u_arr = np.asarray(u, dtype=np.float64)
    out = (1.0 + u_arr) * np.log1p(u_arr) - u_arr
    return out if isinstance(u, np.ndarray) else float(out)


def hoeffding_permutations(
    epsilon: float, delta: float, n: int, r: float
) -> int:
    """Baseline permutation budget from Hoeffding's inequality.

    ``T = ceil( (r^2 / (2 eps^2)) * ln(2N / delta) )``

    Parameters
    ----------
    epsilon, delta:
        Target (epsilon, delta)-approximation of the max-norm error.
    n:
        Number of training points (the union bound is over all N).
    r:
        Range of the marginal contribution ``phi_i`` (``1/K`` for the
        unweighted KNN classification utility).
    """
    _validate(epsilon, delta, r)
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    return int(math.ceil(r**2 / (2.0 * epsilon**2) * math.log(2.0 * n / delta)))


def bennett_qi(n: int, k: int) -> np.ndarray:
    """The zero-marginal probabilities ``q_i`` of Theorem 5 (eq 33).

    ``q_i`` lower-bounds the probability that inserting the i-th
    nearest training point into a random permutation prefix leaves the
    K nearest neighbors unchanged: 0 for the K nearest points and
    ``(i - K) / i`` beyond.
    """
    if n <= 0 or k <= 0:
        raise ParameterError(f"n and k must be positive, got n={n}, k={k}")
    i = np.arange(1, n + 1, dtype=np.float64)
    q = np.where(i <= k, 0.0, (i - k) / i)
    return q


def bennett_permutations(
    epsilon: float,
    delta: float,
    n: int,
    k: int,
    r: float,
    max_iter: int = 200,
) -> int:
    """Permutation budget from Theorem 5 (Bennett's inequality).

    Solves eq (32) for ``T*`` by bisection.  The left-hand side is
    strictly decreasing in ``T``, so the root is unique.
    """
    _validate(epsilon, delta, r)
    q = bennett_qi(n, k)
    one_minus_q2 = 1.0 - q**2
    h_vals = np.asarray(bennett_h(epsilon / (one_minus_q2 * r)))
    exponents = one_minus_q2 * h_vals  # per-point decay rate

    def lhs(t: float) -> float:
        return float(np.exp(-t * exponents).sum())

    target = delta / 2.0
    lo, hi = 0.0, 1.0
    it = 0
    while lhs(hi) > target:
        hi *= 2.0
        it += 1
        if it > max_iter:
            raise ConvergenceError(
                "failed to bracket the Bennett permutation budget"
            )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if lhs(mid) > target:
            lo = mid
        else:
            hi = mid
    return int(math.ceil(hi))


def bennett_approx_permutations(
    epsilon: float, delta: float, k: int, r: float
) -> int:
    """Closed-form approximation of the Bennett budget (eq 34).

    ``T ≈ ceil( (1 / h(eps / r)) * ln(2K / delta) )`` — independent of
    N, which is the qualitative point of Figure 11: the required
    permutation count flattens out as the training set grows.
    """
    _validate(epsilon, delta, r)
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    h_val = float(bennett_h(epsilon / r))
    return int(math.ceil(math.log(2.0 * k / delta) / h_val))


def certified_epsilon(
    n_permutations: int,
    delta: float,
    n: int,
    k: int,
    r: float,
    max_iter: int = 100,
) -> float:
    """Invert Theorem 5: the error an explicit budget certifies.

    The smallest ``epsilon`` whose Bennett budget
    (:func:`bennett_permutations`) fits within ``n_permutations`` —
    i.e. the ``(epsilon, delta)`` guarantee a run of ``T`` permutations
    can legitimately claim.  This is the certificate the serving
    layer's Monte Carlo precision rung records next to each degraded
    result, so an operator (or the benchmark gate) can hard-check the
    measured error against it.
    """
    if n_permutations <= 0:
        raise ParameterError(
            f"n_permutations must be positive, got {n_permutations}"
        )
    if not 0 < delta < 1:
        raise ParameterError(f"delta must lie in (0, 1), got {delta}")
    if r <= 0:
        raise ParameterError(f"range r must be positive, got {r}")
    # bennett_permutations is strictly decreasing in epsilon; bracket
    # then bisect for the smallest epsilon whose budget fits
    lo, hi = 0.0, float(r)
    it = 0
    while bennett_permutations(hi, delta, n, k, r) > n_permutations:
        hi *= 2.0
        it += 1
        if it > max_iter:
            raise ConvergenceError(
                "failed to bracket the certified epsilon"
            )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if mid <= 0.0:
            break
        if bennett_permutations(mid, delta, n, k, r) > n_permutations:
            lo = mid
        else:
            hi = mid
    return hi
