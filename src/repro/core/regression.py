"""Exact Shapley values for unweighted KNN regression (Theorem 6).

The utility is the negative squared error of the "divide by K" neighbor
average (eq 25).  Theorem 6 of the paper gives a recursion over the
distance ranking; naively each step needs an O(N) weighted label sum,
but the coefficients ``A_i^{(l)}`` split into a prefix part (l < i), the
pair itself (l in {i, i+1}), and a suffix part (l >= i+2) whose weights
``min(K, l-1) * min(K-1, l-2) / ((l-1)(l-2))`` do not depend on ``i``.
Prefix and suffix sums therefore reduce the whole recursion to O(N)
after the O(N log N) sort — the same asymptotics as classification.

With points sorted by distance (y_i the label of the i-th nearest,
t the test label), the recursion is::

    s_N = -((K-1)/(N K)) * y_N * [ y_N/K - 2t + (sum_{l != N} y_l)/(N-1) ]
          - (1/N) * (y_N/K - t)^2

    s_i = s_{i+1} + (1/K) * (y_{i+1} - y_i) * (U1_i + U2_i)

    U1_i = (min(K, i)/i) * ((y_i + y_{i+1})/K - 2t)
    U2_i = (1/K) * [ P_{i-1} * min(K,i) * min(K-1,i-1) / ((i-1) i)
                     + T_{i+2} ]

where ``P_{i-1}`` is the label prefix sum and ``T_{i+2}`` the weighted
label suffix sum.  (This is eq (63) with the coefficient table (64)
expanded; the two forms are algebraically identical.)

The recursion is implemented once, as
:func:`repro.core.kernels.regression_rank_values` behind the shared
``regression`` kernel; this module is the dataset-level wrapper.
"""

from __future__ import annotations

import numpy as np

from ..knn.search import argsort_by_distance
from ..types import Dataset, ValuationResult
from .kernels import RankPlan, get_kernel

__all__ = ["exact_knn_regression_shapley", "regression_shapley_from_order"]


def regression_shapley_from_order(
    order: np.ndarray,
    y_train: np.ndarray,
    y_test: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Theorem 6 given a precomputed distance ranking.

    Returns ``(values, per_test)`` exactly as
    :func:`repro.core.exact.exact_knn_shapley_from_order` does.
    """
    plan = RankPlan.from_order(
        order, np.asarray(y_train, dtype=np.float64), y_test
    )
    per_test = get_kernel("regression").values_from_plan(plan, k)
    return per_test.mean(axis=0), per_test


def exact_knn_regression_shapley(
    dataset: Dataset, k: int, metric: str = "euclidean"
) -> ValuationResult:
    """Exact Shapley values for an unweighted KNN regressor (Theorem 6).

    O(N log N) per test point.  Labels must be real-valued.
    """
    order, _ = argsort_by_distance(dataset.x_test, dataset.x_train, metric=metric)
    values, per_test = regression_shapley_from_order(
        order, dataset.y_train, dataset.y_test, k
    )
    return ValuationResult(
        values=values,
        method="exact-regression",
        extra={"k": k, "metric": metric, "per_test": per_test},
    )
