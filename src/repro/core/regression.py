"""Exact Shapley values for unweighted KNN regression (Theorem 6).

The utility is the negative squared error of the "divide by K" neighbor
average (eq 25).  Theorem 6 of the paper gives a recursion over the
distance ranking; naively each step needs an O(N) weighted label sum,
but the coefficients ``A_i^{(l)}`` split into a prefix part (l < i), the
pair itself (l in {i, i+1}), and a suffix part (l >= i+2) whose weights
``min(K, l-1) * min(K-1, l-2) / ((l-1)(l-2))`` do not depend on ``i``.
Prefix and suffix sums therefore reduce the whole recursion to O(N)
after the O(N log N) sort — the same asymptotics as classification.

With points sorted by distance (y_i the label of the i-th nearest,
t the test label), the recursion implemented here is::

    s_N = -((K-1)/(N K)) * y_N * [ y_N/K - 2t + (sum_{l != N} y_l)/(N-1) ]
          - (1/N) * (y_N/K - t)^2

    s_i = s_{i+1} + (1/K) * (y_{i+1} - y_i) * (U1_i + U2_i)

    U1_i = (min(K, i)/i) * ((y_i + y_{i+1})/K - 2t)
    U2_i = (1/K) * [ P_{i-1} * min(K,i) * min(K-1,i-1) / ((i-1) i)
                     + T_{i+2} ]

where ``P_{i-1}`` is the label prefix sum and ``T_{i+2}`` the weighted
label suffix sum.  (This is eq (63) with the coefficient table (64)
expanded; the two forms are algebraically identical.)
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..knn.search import argsort_by_distance
from ..types import Dataset, ValuationResult

__all__ = ["exact_knn_regression_shapley", "regression_shapley_from_order"]


def _single_test_rank_values(
    y_sorted: np.ndarray, t: float, k: int
) -> np.ndarray:
    """Theorem 6 recursion for one test point, in rank space."""
    n = y_sorted.shape[0]
    y = np.asarray(y_sorted, dtype=np.float64)
    s = np.empty(n, dtype=np.float64)

    if n == 1:
        # Only coalition sizes 0/1 exist: s_1 = v({1}) - v(∅).
        s[0] = -((y[0] / k - t) ** 2) + t**2
        return s

    total = float(y.sum())
    if k >= n:
        # Every coalition has size < K, so the farthest point always
        # contributes; averaging its marginal -(y_N/K)(2*sum(S)/K +
        # y_N/K - 2t) over the Shapley weights gives the closed form
        # below (the paper's eq 62 assumes K < N).
        s[-1] = -(y[-1] / k) * (total / k - 2.0 * t)
    else:
        # The paper's eq (62) silently uses v(∅) = 0, but eq (25) gives
        # v(∅) = -t^2.  The empty coalition contributes (v({i}) -
        # v(∅))/N to every player, so honoring eq (25) adds t^2/N to
        # the anchor (and thereby, through the telescoping, to every
        # value) — this is what makes group rationality sum to
        # v(I) - v(∅) exactly.
        s[-1] = (
            -((k - 1) / (n * k))
            * y[-1]
            * (y[-1] / k - 2.0 * t + (total - y[-1]) / (n - 1))
            - (1.0 / n) * (y[-1] / k - t) ** 2
            + t**2 / n
        )

    i = np.arange(1, n, dtype=np.float64)  # ranks 1 .. n-1
    min_ki = np.minimum(float(k), i)
    min_k1 = np.minimum(float(k - 1), i - 1.0)

    # prefix sums P_{i-1} = sum_{l <= i-1} y_l  (P_0 = 0)
    prefix = np.concatenate(([0.0], np.cumsum(y)[:-1]))  # prefix[j] = sum of first j labels
    p_im1 = prefix[:-1][: n - 1]  # for i = 1..n-1: prefix of i-1 labels
    # Note prefix[i-1] = sum of y_1..y_{i-1}; arrays are 0-indexed below.
    p_im1 = prefix[0 : n - 1]

    # suffix sums T_{i+2} = sum_{l >= i+2} w_l y_l with
    # w_l = min(K, l-1) * min(K-1, l-2) / ((l-1)(l-2)), defined for l >= 3.
    w = np.zeros(n + 1, dtype=np.float64)  # w[l] for 1-based l
    ell = np.arange(3, n + 1, dtype=np.float64)
    w[3:] = np.minimum(float(k), ell - 1.0) * np.minimum(float(k - 1), ell - 2.0) / (
        (ell - 1.0) * (ell - 2.0)
    )
    wy = w[1:] * y  # weighted labels, 0-indexed position l-1
    suffix = np.concatenate((np.cumsum(wy[::-1])[::-1], [0.0]))  # suffix[p] = sum_{l>=p+1} wy
    # T_{i+2} = sum over l >= i+2 -> suffix at 0-indexed position i+1
    t_suffix = suffix[2 : n + 1]  # for i = 1..n-1: suffix[i+1]

    u1 = (min_ki / i) * ((y[:-1] + y[1:]) / k - 2.0 * t)
    with np.errstate(divide="ignore", invalid="ignore"):
        prefix_coeff = np.where(
            i > 1.0, min_ki * min_k1 / (np.maximum(i - 1.0, 1.0) * i), 0.0
        )
    u2 = (p_im1 * prefix_coeff + t_suffix) / k
    deltas = (y[1:] - y[:-1]) / k * (u1 + u2)  # s_i - s_{i+1} for i = 1..n-1

    tail = np.cumsum(deltas[::-1])[::-1]
    s[:-1] = s[-1] + tail
    return s


def regression_shapley_from_order(
    order: np.ndarray,
    y_train: np.ndarray,
    y_test: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Theorem 6 given a precomputed distance ranking.

    Returns ``(values, per_test)`` exactly as
    :func:`repro.core.exact.exact_knn_shapley_from_order` does.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    order = np.asarray(order, dtype=np.intp)
    y_train = np.asarray(y_train, dtype=np.float64)
    y_test = np.asarray(y_test, dtype=np.float64)
    n_test, n = order.shape
    per_test = np.empty((n_test, n), dtype=np.float64)
    for j in range(n_test):
        s_rank = _single_test_rank_values(y_train[order[j]], float(y_test[j]), k)
        per_test[j, order[j]] = s_rank
    return per_test.mean(axis=0), per_test


def exact_knn_regression_shapley(
    dataset: Dataset, k: int, metric: str = "euclidean"
) -> ValuationResult:
    """Exact Shapley values for an unweighted KNN regressor (Theorem 6).

    O(N log N) per test point.  Labels must be real-valued.
    """
    order, _ = argsort_by_distance(dataset.x_test, dataset.x_train, metric=metric)
    values, per_test = regression_shapley_from_order(
        order, dataset.y_train, dataset.y_test, k
    )
    return ValuationResult(
        values=values,
        method="exact-regression",
        extra={"k": k, "metric": metric, "per_test": per_test},
    )
