"""Exact seller-level Shapley values (Theorem 8, "multiple data per contributor").

When each seller owns several training points and is valued as a unit,
the coalition structure is over ``M`` sellers.  Theorem 8 observes that
the utility of a seller coalition only depends on its top-K points, and
at most ``O(M^K)`` distinct top-K configurations exist — because the
top-K points can involve at most K distinct sellers.  The Shapley value
of seller ``j`` is then a weighted sum over configurations that exclude
``j``::

    s_j = (1/M) * sum_{S in A\\j} sum_{k=0}^{|G(S, j)|}
          C(|G(S,j)|, k) / C(M-1, |h(S)| + k) *
          [ v(topK(h(S) ∪ {j})) - v(S) ]

where ``h(S)`` is the set of sellers owning points of ``S`` and
``G(S, j)`` the sellers whose *nearest* point is farther than
everything in ``S`` (adding them to the coalition cannot change the
top-K).  A configuration with fewer than K points can only arise from
the coalition ``h(S)`` itself, so its ``G`` is empty.

Works for every utility in the KNN family — the configuration utility
is evaluated through the base point-level utility, so classification
(eq 5), regression (eq 25) and the weighted variants (eqs 26, 27) all
share this module.
"""

from __future__ import annotations

import itertools
import math
from typing import Protocol

import numpy as np

from ..exceptions import ParameterError
from ..types import GroupedDataset, ValuationResult
from ..utility.base import UtilityFunction

__all__ = ["exact_grouped_knn_shapley", "grouped_shapley_single_test"]


class _PerTestUtility(Protocol):
    """The slice of the KNN utility interface Theorem 8 needs."""

    k: int
    n_players: int
    order: np.ndarray

    def per_test_value(self, members: np.ndarray, test_index: int) -> float: ...


def _rank_of(utility: _PerTestUtility, test_index: int) -> np.ndarray:
    """rank_of[i] = 0-based rank of training point i for this test."""
    order = utility.order[test_index]
    rank = np.empty_like(order)
    rank[order] = np.arange(order.shape[0])
    return rank


def grouped_shapley_single_test(
    utility: _PerTestUtility,
    grouped: GroupedDataset,
    test_index: int,
) -> np.ndarray:
    """Theorem 8 for one test point; returns one value per seller."""
    k = utility.k
    m = grouped.n_sellers
    rank = _rank_of(utility, test_index)
    # Per seller: point indices sorted by rank (nearest first).
    seller_points = []
    nearest_rank = np.empty(m, dtype=np.int64)
    for s in range(m):
        pts = grouped.members(s)
        pts = pts[np.argsort(rank[pts], kind="stable")]
        seller_points.append(pts)
        nearest_rank[s] = rank[pts[0]]

    def topk_of(sellers: tuple[int, ...]) -> tuple[int, ...]:
        """Top-K point indices (sorted by rank) of a seller coalition."""
        if not sellers:
            return ()
        pool = np.concatenate([seller_points[s][:k] for s in sellers])
        pool = pool[np.argsort(rank[pool], kind="stable")]
        return tuple(int(p) for p in pool[:k])

    # ---- enumerate the configuration space A -------------------------
    # Any top-K set involves at most K sellers, so coalitions of size
    # <= K generate every configuration.
    configs: dict[tuple[int, ...], tuple[frozenset[int], int]] = {}
    for size in range(0, min(k, m) + 1):
        for sellers in itertools.combinations(range(m), size):
            cfg = topk_of(sellers)
            if cfg in configs:
                continue
            owners = frozenset(int(grouped.groups[p]) for p in cfg)
            worst = int(rank[list(cfg)].max()) if cfg else -1
            configs[cfg] = (owners, worst)

    value_cache: dict[tuple[int, ...], float] = {}

    def v(cfg: tuple[int, ...]) -> float:
        cached = value_cache.get(cfg)
        if cached is None:
            cached = utility.per_test_value(
                np.asarray(cfg, dtype=np.intp), test_index
            )
            value_cache[cfg] = cached
        return cached

    values = np.zeros(m, dtype=np.float64)
    for j in range(m):
        total = 0.0
        for cfg, (owners, worst) in configs.items():
            if j in owners:
                continue
            with_j = topk_of(tuple(sorted(owners | {j})))
            diff = v(with_j) - v(cfg)
            if diff == 0.0:
                continue
            if len(cfg) < k:
                # Under-full configuration: only the coalition h(S)
                # itself produces it, so G is empty.
                g_size = 0
            else:
                g_size = int(
                    sum(
                        1
                        for s2 in range(m)
                        if s2 != j
                        and s2 not in owners
                        and nearest_rank[s2] > worst
                    )
                )
            base_size = len(owners)
            weight = 0.0
            for pad in range(g_size + 1):
                weight += math.comb(g_size, pad) / math.comb(
                    m - 1, base_size + pad
                )
            total += weight * diff
        values[j] = total / m
    return values


def exact_grouped_knn_shapley(
    utility: UtilityFunction,
    grouped: GroupedDataset,
) -> ValuationResult:
    """Exact per-seller Shapley values (Theorem 8).

    Parameters
    ----------
    utility:
        A point-level KNN-family utility built over
        ``grouped.dataset`` (it must expose ``k``, ``order`` and
        ``per_test_value``).
    grouped:
        The ownership map.

    Returns
    -------
    ValuationResult
        One value per seller, averaged over test points.

    Notes
    -----
    Complexity is ``O(M^K)`` configurations per test point.  For
    ``K = 1`` the configuration space collapses to one entry per
    seller, recovering the paper's observation that the 1NN case
    reduces to single-data-per-seller valuation.
    """
    if not hasattr(utility, "per_test_value") or not hasattr(utility, "order"):
        raise ParameterError(
            "utility must be a KNN-family utility exposing per_test_value/order"
        )
    n_test = int(utility.order.shape[0])
    m = grouped.n_sellers
    per_test = np.empty((n_test, m), dtype=np.float64)
    for j in range(n_test):
        per_test[j] = grouped_shapley_single_test(utility, grouped, j)
    return ValuationResult(
        values=per_test.mean(axis=0),
        method="exact-grouped",
        extra={"k": getattr(utility, "k", None), "per_test": per_test},
    )
