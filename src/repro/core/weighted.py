"""Exact Shapley values for weighted KNN (Theorem 7).

For weighted KNN the utility of a coalition depends on *which* points
form the K nearest neighbors, not just on how many of them match the
test label — so the single-group piecewise structure of Theorem 1 is
gone.  What remains is that only ``O(N^K)`` distinct K-neighbor
configurations exist, which Theorem 7 exploits to compute the exact
Shapley value in ``O(N^K)`` utility evaluations instead of ``O(2^N)``.

The eq (74)/(75) recursion itself lives in
:func:`repro.core.kernels.weighted_rank_values` behind the shared
``weighted`` kernel — this module keeps the historical utility-object
entry points.  The recursion works per test point in rank space and
follows Lemma 1: for neighboring ranks ``i`` and ``i+1``::

    s_i - s_{i+1} = (1/(N-1)) * sum_k  (1/C(N-2, k)) *
                    sum_{S in D_{i,k}} A_{i,k}(S) *
                    [ v(S ∪ {i}) - v(S ∪ {i+1}) ]

* For ``k <= K-2`` the relevant ``S`` are *all* subsets of size k of
  the other ``N-2`` points, each with multiplicity ``A = 1`` — adding
  either ``i`` or ``i+1`` still leaves at most K points.
* For ``k >= K-1`` the utility only depends on the top ``K-1`` points
  of ``S``; each size-(K-1) configuration ``S'`` stands in for every
  ``S`` obtained by padding it with points farther than everything in
  ``S' ∪ {i, i+1}``.  With ``rmax`` the worst (largest) rank in
  ``S' ∪ {i, i+1}``, there are ``C(N - rmax, k - K + 1)`` such pads.

The anchor is the farthest point (eq 74)::

    s_N = (1/N) * sum_{k=0}^{K-1} (1/C(N-1, k)) *
          sum_{|S| = k, S ⊆ I\\{N}} [ v(S ∪ {N}) - v(S) ]

Utilities are evaluated through the supplied weighted utility object,
so classification (eq 26) and regression (eq 27) share this module.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..exceptions import ParameterError
from ..types import Dataset, ValuationResult
from ..utility.weighted_utility import (
    WeightedKNNClassificationUtility,
    WeightedKNNRegressionUtility,
)
from .kernels import (
    RankPlan,
    get_kernel,
    weighted_rank_values,
    weighted_rank_values_batched,
)

__all__ = ["exact_weighted_knn_shapley", "weighted_shapley_single_test"]

WeightedUtility = Union[
    WeightedKNNClassificationUtility, WeightedKNNRegressionUtility
]


def weighted_shapley_single_test(
    utility: WeightedUtility, test_index: int, mode: str = "reference"
) -> np.ndarray:
    """Theorem 7 for one test point.

    Returns the Shapley values in original training-index order.

    ``mode="reference"`` (default) drives the audited per-coalition
    recursion through :meth:`per_test_value`;  ``mode="vectorized"``
    drives the batched configuration engine
    (:func:`repro.core.kernels.weighted_rank_values_batched`) through
    the utility object's :meth:`per_test_value_many` — same sums,
    whole blocks of coalitions per numpy pass, equal within
    accumulated rounding (<= 1e-12).

    Complexity: ``O(C(N-2, K-1) * N)`` utility evaluations — exponential
    in K but polynomial in N, matching the paper's ``O(N^K)``.
    """
    if mode not in ("reference", "vectorized"):
        raise ParameterError(
            f"mode must be 'reference' or 'vectorized', got {mode!r}"
        )
    n = utility.n_players
    k = utility.k
    order = utility.order[test_index]  # rank -> original index

    if mode == "vectorized":

        def v_many(ranks: np.ndarray) -> np.ndarray:
            """Utilities of same-size coalitions of sorted 1-based ranks."""
            members = order[np.asarray(ranks, dtype=np.intp) - 1]
            return utility.per_test_value_many(members, test_index)

        s_rank = weighted_rank_values_batched(v_many, n, k)
    else:

        def v(rank_members: tuple[int, ...]) -> float:
            """Utility of a coalition given by sorted 1-based ranks."""
            members = order[np.asarray(rank_members, dtype=np.intp) - 1]
            return utility.per_test_value(np.sort(members), test_index)

        s_rank = weighted_rank_values(v, n, k)
    values = np.empty(n, dtype=np.float64)
    values[order] = s_rank
    return values


def exact_weighted_knn_shapley(
    dataset: Dataset,
    k: int,
    weights: str = "inverse_distance",
    task: str = "classification",
    metric: str = "euclidean",
    mode: str = "reference",
) -> ValuationResult:
    """Exact Shapley values for weighted KNN (Theorem 7).

    Parameters
    ----------
    dataset:
        Training and test data.
    k:
        The K of KNN.  Runtime grows as ``N^K`` on the reference and
        vectorized paths — the piecewise path (rank-only weights,
        classification) is polynomial in both N and K.
    weights:
        Weight-function name or callable (see :mod:`repro.knn.weights`).
    task:
        ``"classification"`` (eq 26) or ``"regression"`` (eq 27).
    metric:
        Distance metric name.
    mode:
        ``"reference"`` (default — this function is the audited
        baseline the fast paths are tested against) runs the historical
        per-coalition recursion; ``"auto"``, ``"piecewise"``,
        ``"vectorized"`` and ``"streaming"`` dispatch through the
        ``weighted`` kernel's fast paths
        (:meth:`repro.core.kernels.WeightedKernel.select_path`).

    Returns
    -------
    ValuationResult
        Test-averaged exact Shapley values.
    """
    if task == "classification":
        utility: WeightedUtility = WeightedKNNClassificationUtility(
            dataset, k, weights=weights, metric=metric
        )
    elif task == "regression":
        utility = WeightedKNNRegressionUtility(
            dataset, k, weights=weights, metric=metric
        )
    else:
        raise ParameterError(
            f"task must be 'classification' or 'regression', got {task!r}"
        )
    extra = {
        "k": k,
        "weights": getattr(utility, "weights_name", str(weights)),
        "task": task,
    }
    if mode == "reference":
        n_test = dataset.n_test
        per_test = np.empty((n_test, dataset.n_train), dtype=np.float64)
        for j in range(n_test):
            per_test[j] = weighted_shapley_single_test(utility, j)
        extra["weighted_path"] = "reference"
    else:
        # the utility object already ranked the training set; reuse its
        # ordering (and distances) as the kernel's plan
        kernel = get_kernel("weighted")
        plan = RankPlan.from_order(
            utility.order,
            dataset.y_train,
            dataset.y_test,
            distances=utility.sorted_distances,
        )
        extra["weighted_path"] = kernel.select_path(
            k, weights, task=task, mode=mode, n_train=dataset.n_train
        )
        per_test = kernel.values_from_plan(
            plan, k, weights=weights, task=task, mode=mode
        )
    extra["per_test"] = per_test
    return ValuationResult(
        values=per_test.mean(axis=0),
        method="exact-weighted",
        extra=extra,
    )
