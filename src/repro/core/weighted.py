"""Exact Shapley values for weighted KNN (Theorem 7).

For weighted KNN the utility of a coalition depends on *which* points
form the K nearest neighbors, not just on how many of them match the
test label — so the single-group piecewise structure of Theorem 1 is
gone.  What remains is that only ``O(N^K)`` distinct K-neighbor
configurations exist, which Theorem 7 exploits to compute the exact
Shapley value in ``O(N^K)`` utility evaluations instead of ``O(2^N)``.

The implementation works per test point in rank space (training points
re-indexed by ascending distance) and follows Lemma 1: for neighboring
ranks ``i`` and ``i+1``::

    s_i - s_{i+1} = (1/(N-1)) * sum_k  (1/C(N-2, k)) *
                    sum_{S in D_{i,k}} A_{i,k}(S) *
                    [ v(S ∪ {i}) - v(S ∪ {i+1}) ]

* For ``k <= K-2`` the relevant ``S`` are *all* subsets of size k of
  the other ``N-2`` points, each with multiplicity ``A = 1`` — adding
  either ``i`` or ``i+1`` still leaves at most K points.
* For ``k >= K-1`` the utility only depends on the top ``K-1`` points
  of ``S``; each size-(K-1) configuration ``S'`` stands in for every
  ``S`` obtained by padding it with points farther than everything in
  ``S' ∪ {i, i+1}``.  With ``rmax`` the worst (largest) rank in
  ``S' ∪ {i, i+1}``, there are ``C(N - rmax, k - K + 1)`` such pads.

The anchor is the farthest point (eq 74)::

    s_N = (1/N) * sum_{k=0}^{K-1} (1/C(N-1, k)) *
          sum_{|S| = k, S ⊆ I\\{N}} [ v(S ∪ {N}) - v(S) ]

Utilities are evaluated through the supplied weighted utility object,
so classification (eq 26) and regression (eq 27) share this module.
"""

from __future__ import annotations

import itertools
import math
from typing import Union

import numpy as np

from ..exceptions import ParameterError
from ..types import Dataset, ValuationResult
from ..utility.weighted_utility import (
    WeightedKNNClassificationUtility,
    WeightedKNNRegressionUtility,
)

__all__ = ["exact_weighted_knn_shapley", "weighted_shapley_single_test"]

WeightedUtility = Union[
    WeightedKNNClassificationUtility, WeightedKNNRegressionUtility
]


def _pad_weight(n: int, k: int, rmax: int) -> float:
    """``sum_{k'=K-1}^{N-2} C(N - rmax, k' - K + 1) / C(N-2, k')``.

    The total Lemma-1 weight of one size-(K-1) configuration whose
    worst member (including the pair i, i+1) has rank ``rmax``.
    """
    avail = n - rmax
    total = 0.0
    for pad in range(avail + 1):
        kk = k - 1 + pad
        if kk > n - 2:
            break
        total += math.comb(avail, pad) / math.comb(n - 2, kk)
    return total


def weighted_shapley_single_test(
    utility: WeightedUtility, test_index: int
) -> np.ndarray:
    """Theorem 7 for one test point.

    Returns the Shapley values in original training-index order.

    Complexity: ``O(C(N-2, K-1) * N)`` utility evaluations — exponential
    in K but polynomial in N, matching the paper's ``O(N^K)``.
    """
    n = utility.n_players
    k = utility.k
    if n < 2:
        # single training point: s = v({0}) - v(∅)
        single = utility.per_test_value(np.array([0], dtype=np.intp), test_index)
        empty = utility.per_test_value(np.empty(0, dtype=np.intp), test_index)
        return np.array([single - empty])
    order = utility.order[test_index]  # rank -> original index
    value_cache: dict[tuple[int, ...], float] = {}

    def v(rank_members: tuple[int, ...]) -> float:
        """Utility of a coalition given by sorted 1-based ranks."""
        cached = value_cache.get(rank_members)
        if cached is None:
            members = order[np.asarray(rank_members, dtype=np.intp) - 1]
            cached = utility.per_test_value(np.sort(members), test_index)
            value_cache[rank_members] = cached
        return cached

    s_rank = np.empty(n, dtype=np.float64)

    # ---- anchor: the farthest point (eq 74) -------------------------
    others = range(1, n)  # ranks 1..N-1
    total = 0.0
    for size in range(0, k):
        inv_binom = 1.0 / math.comb(n - 1, size)
        level = 0.0
        for combo in itertools.combinations(others, size):
            with_n = tuple(sorted(combo + (n,)))
            level += v(with_n) - v(combo)
        total += inv_binom * level
    s_rank[n - 1] = total / n

    # ---- recursion over adjacent ranks (eq 75) ----------------------
    pool = list(range(1, n + 1))
    for i in range(n - 1, 0, -1):  # compute s_i from s_{i+1}
        rest = [r for r in pool if r != i and r != i + 1]
        acc = 0.0
        # small coalitions: |S| <= K-2, every subset counts once
        for size in range(0, max(0, k - 1)):
            inv_binom = 1.0 / math.comb(n - 2, size)
            level = 0.0
            for combo in itertools.combinations(rest, size):
                si = tuple(sorted(combo + (i,)))
                sj = tuple(sorted(combo + (i + 1,)))
                level += v(si) - v(sj)
            acc += inv_binom * level
        # large coalitions: top-(K-1) configurations with pad weights
        if n - 2 >= k - 1:
            for combo in itertools.combinations(rest, k - 1):
                rmax = max(combo + (i + 1,))
                si = tuple(sorted(combo + (i,)))
                sj = tuple(sorted(combo + (i + 1,)))
                diff = v(si) - v(sj)
                if diff != 0.0:
                    acc += _pad_weight(n, k, rmax) * diff
        s_rank[i - 1] = s_rank[i] + acc / (n - 1)

    values = np.empty(n, dtype=np.float64)
    values[order] = s_rank
    return values


def exact_weighted_knn_shapley(
    dataset: Dataset,
    k: int,
    weights: str = "inverse_distance",
    task: str = "classification",
    metric: str = "euclidean",
) -> ValuationResult:
    """Exact Shapley values for weighted KNN (Theorem 7).

    Parameters
    ----------
    dataset:
        Training and test data.
    k:
        The K of KNN.  Runtime grows as ``N^K`` — keep K small.
    weights:
        Weight-function name or callable (see :mod:`repro.knn.weights`).
    task:
        ``"classification"`` (eq 26) or ``"regression"`` (eq 27).
    metric:
        Distance metric name.

    Returns
    -------
    ValuationResult
        Test-averaged exact Shapley values.
    """
    if task == "classification":
        utility: WeightedUtility = WeightedKNNClassificationUtility(
            dataset, k, weights=weights, metric=metric
        )
    elif task == "regression":
        utility = WeightedKNNRegressionUtility(
            dataset, k, weights=weights, metric=metric
        )
    else:
        raise ParameterError(
            f"task must be 'classification' or 'regression', got {task!r}"
        )
    n_test = dataset.n_test
    per_test = np.empty((n_test, dataset.n_train), dtype=np.float64)
    for j in range(n_test):
        per_test[j] = weighted_shapley_single_test(utility, j)
    return ValuationResult(
        values=per_test.mean(axis=0),
        method="exact-weighted",
        extra={
            "k": k,
            "weights": getattr(utility, "weights_name", str(weights)),
            "task": task,
            "per_test": per_test,
        },
    )
