"""Rank-space valuation kernels: one audited recursion core per theorem.

Every fast algorithm in the paper (Jia et al., PVLDB'19) is, at heart,
an O(N)-per-test recursion over the *same* inputs: the training points
re-indexed by ascending distance to a test point, together with their
labels (and, for the weighted variants, their distances).  This module
names that shared input a :class:`RankPlan` and collects the
recursions themselves behind one :class:`ValuationKernel` interface:

==============  ===========================================  ==========
kernel          recursion                                    complexity
==============  ===========================================  ==========
``exact``       Theorem 1 (unweighted classification)        O(N)
``truncated``   Theorem 2 (zero beyond rank ``K*``)          O(K*)
``regression``  Theorem 6 (unweighted regression)            O(N)
``weighted``    Theorem 7 / eq (75) (weighted KNN)           see below
==============  ===========================================  ==========

The ``weighted`` kernel picks one of five execution paths
(``mode="auto"`` selects by weight-function capability, task and an
explicit memory estimate; see :meth:`WeightedKernel.select_path`):

==============  ============================================  ==========  ===============
path            applies to                                    complexity  config memory
==============  ============================================  ==========  ===============
``k1``          K = 1, built-in (normalizing) weights         O(N)        —
``piecewise``   rank-only weights, classification             O(N·K^2)    —
``piecewise``   rank-only weights, regression (label moments) O(N·K^3)    —
``vectorized``  any weights / task (batched configurations)   O(N^K)      O(C(N-2,K-1)·K)
``streaming``   any weights / task (fixed-size blocks)        O(N^K)      O(block_rows·K)
``reference``   any weights / task (audited eq 74/75 loop)    O(N^K)      —
==============  ============================================  ==========  ===============

``piecewise`` runs the Appendix-F counting closed forms of
:mod:`repro.core.piecewise` — exact to <= 1e-12 against the reference
recursion, polynomial in both N and K; for regression the counting
sums carry binomial-weighted first/second label moments instead of
coalition counts.  ``vectorized`` evaluates the same eq (74)/(75) sums
as ``reference`` but enumerates the top-(K-1) configurations as
integer arrays (colex order, served by a bounded byte-capped cache —
see :func:`weighted_config_cache_stats`) and evaluates whole blocks of
coalitions per numpy pass (pad weights folded through a precomputed
comb table), trading nothing but summation order — a pure
constant-factor win over the per-coalition Python recursion.
``streaming`` feeds the identical blocks from a colex run generator
(:func:`iter_combination_blocks`) instead of materialized arrays:
bit-identical results at a fixed configuration-memory budget for any
K.

The public modules :mod:`repro.core.exact`, :mod:`repro.core.truncated`,
:mod:`repro.core.regression` and :mod:`repro.core.weighted` are thin
wrappers over the rank-space functions here, and the batched/cached/
parallel :class:`repro.engine.ValuationEngine` dispatches every request
through the kernel registry — so the recursion each theorem depends on
exists exactly once, is audited once, and every execution layer (single
shot, engine, streaming, LSH) produces bit-identical values from the
same plan.

Capabilities
------------
Each kernel carries a :class:`KernelCapabilities` record so execution
layers can route generically instead of hard-coding method names:

* ``needs_full_ranking`` — the recursion consumes the whole ranking
  (Theorems 1/6/7); ``False`` means a top-``K*`` prefix suffices
  (Theorem 2, and therefore the LSH path of Theorem 4).
* ``supports_incremental`` — the recursion is *rank-local* (see
  :mod:`repro.core.delta`), so
  :class:`repro.engine.incremental.IncrementalValuator` can repair
  fitted state after insertions/deletions instead of recomputing.
* ``supports_regression`` — the kernel consumes real-valued labels.
* ``needs_distances`` — the kernel needs the sorted distance rows of
  the plan (the weighted kernel's weight functions do).

Dtype contract
--------------
``values_from_plan`` always returns a C-contiguous float64
``(n_test, n_train)`` matrix in *original training-index order*
(see :func:`repro.types.as_value_matrix`); the multi-test Shapley
value is its column mean by additivity (eq 8).

Third parties can register additional kernels with
:func:`register_kernel`; the engine accepts any registered name as a
``method``.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import (
    KernelCapabilityError,
    MemoryBudgetError,
    ParameterError,
)
from ..knn.weights import (
    WeightFunction,
    apply_weights_batched,
    get_weight_function,
    is_rank_only,
    weight_position_table,
)
from ..types import as_value_matrix
from .piecewise import (
    chain_values_from_differences,
    weighted_knn_anchor_coefficients,
    weighted_knn_group_weight_totals,
    weighted_knn_regression_anchor,
    weighted_knn_regression_pair_totals,
)

__all__ = [
    "KernelCapabilities",
    "RankPlan",
    "ValuationKernel",
    "ExactClassificationKernel",
    "TruncatedKernel",
    "RegressionKernel",
    "WeightedKernel",
    "classification_rank_values",
    "truncated_rank_values",
    "regression_rank_values",
    "weighted_rank_values",
    "weighted_rank_only_values",
    "weighted_regression_rank_only_values",
    "weighted_rank_values_batched",
    "BatchedWeightedRecursion",
    "iter_combination_blocks",
    "materialized_config_bytes",
    "pad_weight_table",
    "truncation_rank",
    "register_kernel",
    "get_kernel",
    "available_kernels",
    "weighted_config_cache_stats",
    "weighted_config_cache_clear",
    "WEIGHTED_VALUE_CACHE_LIMIT",
    "WEIGHTED_CONFIG_CACHE_BYTES",
    "WEIGHTED_MATERIALIZED_BUDGET_BYTES",
]


# ======================================================================
# rank-space recursions (the audited cores)
# ======================================================================
def classification_rank_values(match_sorted: np.ndarray, k: int) -> np.ndarray:
    """Run the Theorem 1 recursion for every row of ``match_sorted``.

    Parameters
    ----------
    match_sorted:
        Array of shape ``(n_test, n)``; entry ``[j, p]`` is 1.0 when
        the (p+1)-th nearest neighbor of test point ``j`` carries the
        test label, else 0.0.  (Any per-rank payload works — the
        recursion only assumes the utility of a coalition is the mean
        payload of its ``K`` nearest members, which is what the K=1
        weighted fast path exploits.)
    k:
        The K of KNN.

    Returns
    -------
    numpy.ndarray
        Shapley values in *rank* space, shape ``(n_test, n)``:
        column ``p`` holds ``s_{alpha_{p+1}}``.
    """
    n_test, n = match_sorted.shape
    s = np.empty((n_test, n), dtype=np.float64)
    # Anchor: the farthest point only matters for coalitions of size
    # < K, each contributing 1[match]/K.  For K < N that telescopes to
    # 1[match]/N (eq 17); in general it is 1[match] * min(K, N)/(N K),
    # which covers the K >= N corner the paper leaves implicit.
    s[:, -1] = match_sorted[:, -1] * (min(k, n) / (n * k))
    if n == 1:
        return s
    ranks = np.arange(1, n, dtype=np.float64)  # i = 1 .. n-1
    factors = np.minimum(float(k), ranks) / (k * ranks)
    diffs = (match_sorted[:, :-1] - match_sorted[:, 1:]) * factors[None, :]
    # s_{alpha_i} = s_{alpha_N} + sum_{j=i}^{N-1} diff_j  -> reverse cumsum
    tail = np.cumsum(diffs[:, ::-1], axis=1)[:, ::-1]
    s[:, :-1] = tail + s[:, -1:]
    return s


def truncation_rank(k: int, epsilon: float) -> int:
    """The rank ``K* = max(K, ceil(1/epsilon))`` of Theorem 2.

    The single implementation: :mod:`repro.core.truncated`, the engine's
    top-``K*`` path and the LSH valuation all call this function.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    if epsilon <= 0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    return max(k, math.ceil(1.0 / epsilon))


def truncated_rank_values(
    neighbor_labels: np.ndarray,
    y_test: object,
    k: int,
    k_star: int,
    n_train: int | None = None,
) -> np.ndarray:
    """Run the truncated recursion given the labels of ranked neighbors.

    Parameters
    ----------
    neighbor_labels:
        Labels of (at least the first ``k_star``) training points in
        ascending-distance order for one test point.  Fewer labels are
        accepted — the recursion then starts from the last available
        rank, which is what happens when an approximate index returns
        fewer than ``k_star`` candidates.
    y_test:
        The test label.
    k:
        The K of KNN.
    k_star:
        Truncation rank (ranks ``>= k_star`` get value 0).
    n_train:
        Total training-set size.  Only needed for the degenerate case
        ``k_star >= n_train`` where no rank is truncated: the recursion
        then anchors at the *exact* farthest-point value
        ``1[match] * min(K, N) / (N K)`` and reproduces Theorem 1
        exactly.  Defaults to "the labels are a strict prefix", i.e.
        ranks at and beyond ``k_star`` exist and are zeroed.

    Returns
    -------
    numpy.ndarray
        Approximate Shapley values in rank space, one per supplied
        label (zeros beyond rank ``k_star``).
    """
    labels = np.asarray(neighbor_labels)
    n = labels.shape[0]
    values = np.zeros(n, dtype=np.float64)
    if n == 0:
        return values
    match = (labels == y_test).astype(np.float64)
    if n_train is not None and k_star >= n_train and n == n_train:
        # Nothing is truncated: anchor exactly (Theorem 1).
        running = float(match[-1]) * min(k, n_train) / (n_train * k)
        values[-1] = running
        start = n - 1
    else:
        # s_{alpha_i} = 0 for ranks >= k_star; recurse below them.
        running = 0.0
        start = min(k_star - 1, n - 1)
    for i in range(start, 0, -1):  # i is the 1-based rank of alpha_i
        running += (match[i - 1] - match[i]) / k * min(k, i) / i
        values[i - 1] = running
    return values


def regression_rank_values(
    y_sorted: np.ndarray, t: float, k: int
) -> np.ndarray:
    """Theorem 6 recursion for one test point, in rank space.

    See :mod:`repro.core.regression` for the derivation of the prefix/
    suffix-sum form implemented here.
    """
    n = y_sorted.shape[0]
    y = np.asarray(y_sorted, dtype=np.float64)
    s = np.empty(n, dtype=np.float64)

    if n == 1:
        # Only coalition sizes 0/1 exist: s_1 = v({1}) - v(∅).
        s[0] = -((y[0] / k - t) ** 2) + t**2
        return s

    total = float(y.sum())
    if k >= n:
        # Every coalition has size < K, so the farthest point always
        # contributes; averaging its marginal -(y_N/K)(2*sum(S)/K +
        # y_N/K - 2t) over the Shapley weights gives the closed form
        # below (the paper's eq 62 assumes K < N).
        s[-1] = -(y[-1] / k) * (total / k - 2.0 * t)
    else:
        # The paper's eq (62) silently uses v(∅) = 0, but eq (25) gives
        # v(∅) = -t^2.  The empty coalition contributes (v({i}) -
        # v(∅))/N to every player, so honoring eq (25) adds t^2/N to
        # the anchor (and thereby, through the telescoping, to every
        # value) — this is what makes group rationality sum to
        # v(I) - v(∅) exactly.
        s[-1] = (
            -((k - 1) / (n * k))
            * y[-1]
            * (y[-1] / k - 2.0 * t + (total - y[-1]) / (n - 1))
            - (1.0 / n) * (y[-1] / k - t) ** 2
            + t**2 / n
        )

    i = np.arange(1, n, dtype=np.float64)  # ranks 1 .. n-1
    min_ki = np.minimum(float(k), i)
    min_k1 = np.minimum(float(k - 1), i - 1.0)

    # prefix sums P_{i-1} = sum_{l <= i-1} y_l  (P_0 = 0); note
    # prefix[i-1] = sum of y_1..y_{i-1}, arrays are 0-indexed below
    prefix = np.concatenate(([0.0], np.cumsum(y)[:-1]))  # prefix[j] = sum of first j labels
    p_im1 = prefix[0 : n - 1]  # for i = 1..n-1: prefix of i-1 labels

    # suffix sums T_{i+2} = sum_{l >= i+2} w_l y_l with
    # w_l = min(K, l-1) * min(K-1, l-2) / ((l-1)(l-2)), defined for l >= 3.
    w = np.zeros(n + 1, dtype=np.float64)  # w[l] for 1-based l
    ell = np.arange(3, n + 1, dtype=np.float64)
    w[3:] = np.minimum(float(k), ell - 1.0) * np.minimum(float(k - 1), ell - 2.0) / (
        (ell - 1.0) * (ell - 2.0)
    )
    wy = w[1:] * y  # weighted labels, 0-indexed position l-1
    suffix = np.concatenate((np.cumsum(wy[::-1])[::-1], [0.0]))  # suffix[p] = sum_{l>=p+1} wy
    # T_{i+2} = sum over l >= i+2 -> suffix at 0-indexed position i+1
    t_suffix = suffix[2 : n + 1]  # for i = 1..n-1: suffix[i+1]

    u1 = (min_ki / i) * ((y[:-1] + y[1:]) / k - 2.0 * t)
    with np.errstate(divide="ignore", invalid="ignore"):
        prefix_coeff = np.where(
            i > 1.0, min_ki * min_k1 / (np.maximum(i - 1.0, 1.0) * i), 0.0
        )
    u2 = (p_im1 * prefix_coeff + t_suffix) / k
    deltas = (y[1:] - y[:-1]) / k * (u1 + u2)  # s_i - s_{i+1} for i = 1..n-1

    tail = np.cumsum(deltas[::-1])[::-1]
    s[:-1] = s[-1] + tail
    return s


def _pad_weight(n: int, k: int, rmax: int) -> float:
    """``sum_{k'=K-1}^{N-2} C(N - rmax, k' - K + 1) / C(N-2, k')``.

    The total Lemma-1 weight of one size-(K-1) configuration whose
    worst member (including the pair i, i+1) has rank ``rmax``.
    """
    avail = n - rmax
    total = 0.0
    for pad in range(avail + 1):
        kk = k - 1 + pad
        if kk > n - 2:
            break
        total += math.comb(avail, pad) / math.comb(n - 2, kk)
    return total


#: Default bound on the per-call coalition-value memo of
#: :func:`weighted_rank_values`.  Every memoized coalition has at most
#: K members (the recursion only ever evaluates the selected top-K), so
#: the unbounded cache grows as ``O(C(N, K))`` — the algorithm's whole
#: evaluation budget held in memory at once.  A quarter-million entries
#: keeps small-N exact runs fully memoized (no behavior change) while
#: capping resident memory at tens of MB for large N; past the bound,
#: insertion-order (FIFO) eviction preserves the adjacent-pair locality
#: the recursion actually reuses.
WEIGHTED_VALUE_CACHE_LIMIT = 1 << 18


def weighted_rank_values(
    v: Callable[[Tuple[int, ...]], float],
    n: int,
    k: int,
    max_cache_entries: Optional[int] = WEIGHTED_VALUE_CACHE_LIMIT,
) -> np.ndarray:
    """Theorem 7 for one test point, given a coalition-value oracle.

    Parameters
    ----------
    v:
        Maps a tuple of sorted 1-based *ranks* to the coalition's
        single-test utility.  Evaluations are memoized here, so the
        oracle may be arbitrarily expensive.
    n:
        Number of players (training points).
    k:
        The K of KNN.
    max_cache_entries:
        Bound on the coalition-value memo
        (:data:`WEIGHTED_VALUE_CACHE_LIMIT` by default; ``None`` for
        the historical unbounded behavior).  Once full, the oldest
        entry is evicted per insertion — values are unchanged, distant
        coalitions may just be re-evaluated.

    Returns
    -------
    numpy.ndarray
        Shapley values in rank space, length ``n``.

    Complexity: ``O(C(N-2, K-1) * N)`` utility evaluations — exponential
    in K but polynomial in N, matching the paper's ``O(N^K)``.
    """
    if n < 1:
        raise ParameterError(f"n must be positive, got {n}")
    if max_cache_entries is not None and max_cache_entries < 1:
        raise ParameterError(
            f"max_cache_entries must be positive or None, got "
            f"{max_cache_entries}"
        )
    value_cache: dict[tuple[int, ...], float] = {}

    def cv(rank_members: tuple[int, ...]) -> float:
        """Memoized utility of a coalition of sorted 1-based ranks."""
        cached = value_cache.get(rank_members)
        if cached is None:
            cached = v(rank_members)
            if (
                max_cache_entries is not None
                and len(value_cache) >= max_cache_entries
            ):
                value_cache.pop(next(iter(value_cache)))
            value_cache[rank_members] = cached
        return cached

    if n < 2:
        # single training point: s = v({1}) - v(∅)
        return np.array([cv((1,)) - cv(())])

    s_rank = np.empty(n, dtype=np.float64)

    # ---- anchor: the farthest point (eq 74) -------------------------
    others = range(1, n)  # ranks 1..N-1
    total = 0.0
    for size in range(0, k):
        inv_binom = 1.0 / math.comb(n - 1, size)
        level = 0.0
        for combo in itertools.combinations(others, size):
            with_n = tuple(sorted(combo + (n,)))
            level += cv(with_n) - cv(combo)
        total += inv_binom * level
    s_rank[n - 1] = total / n

    # ---- recursion over adjacent ranks (eq 75) ----------------------
    # memoized per rmax: at most n distinct values per call, each an
    # O(N) big-integer comb sum that used to be recomputed per coalition
    pad_cache: dict[int, float] = {}

    def pad(rmax: int) -> float:
        w = pad_cache.get(rmax)
        if w is None:
            w = _pad_weight(n, k, rmax)
            pad_cache[rmax] = w
        return w

    pool = list(range(1, n + 1))
    for i in range(n - 1, 0, -1):  # compute s_i from s_{i+1}
        rest = [r for r in pool if r != i and r != i + 1]
        acc = 0.0
        # small coalitions: |S| <= K-2, every subset counts once
        for size in range(0, max(0, k - 1)):
            inv_binom = 1.0 / math.comb(n - 2, size)
            level = 0.0
            for combo in itertools.combinations(rest, size):
                si = tuple(sorted(combo + (i,)))
                sj = tuple(sorted(combo + (i + 1,)))
                level += cv(si) - cv(sj)
            acc += inv_binom * level
        # large coalitions: top-(K-1) configurations with pad weights
        if n - 2 >= k - 1:
            for combo in itertools.combinations(rest, k - 1):
                rmax = max(combo + (i + 1,))
                si = tuple(sorted(combo + (i,)))
                sj = tuple(sorted(combo + (i + 1,)))
                diff = cv(si) - cv(sj)
                if diff != 0.0:
                    acc += pad(rmax) * diff
        s_rank[i - 1] = s_rank[i] + acc / (n - 1)

    return s_rank


def weighted_rank_only_values(
    match_sorted: np.ndarray, k: int, weight_table: np.ndarray
) -> np.ndarray:
    """O(N·K^2 + n_test·N) piecewise path: rank-only weighted KNN.

    Runs the Theorem 7 recursion for every row of ``match_sorted`` in
    closed form, using the Appendix-F counting kernels of
    :mod:`repro.core.piecewise`: with a rank-only weight function
    (tabulated as ``weight_table[m-1, q-1] = w_q(m)``, see
    :func:`repro.knn.weights.weight_position_table`) the adjacent-rank
    utility difference is ``w_{a+1}(m) * (match_i - match_{i+1})``
    over O(K^2) piecewise groups, so both the eq (75) differences and
    the eq (74) anchor reduce to fixed coefficient vectors applied to
    the match indicators — no coalition is ever enumerated.

    Parameters mirror :func:`classification_rank_values`; the result is
    equal to the reference recursion within accumulated rounding
    (<= 1e-12).  Classification only: the regression utility's
    marginal depends on the incumbents' weighted label sum, which is
    not piecewise constant over polynomially many groups.
    """
    match_sorted = np.atleast_2d(np.asarray(match_sorted, dtype=np.float64))
    n_test, n = match_sorted.shape
    weight_table = np.asarray(weight_table, dtype=np.float64)
    if n == 1:
        # single training point: s = v({1}) - v(∅) = w_1(1) * match
        return match_sorted * weight_table[0, 0]
    totals = weighted_knn_group_weight_totals(n, k, weight_table)
    beta, last_coef = weighted_knn_anchor_coefficients(n, k, weight_table)
    s = np.empty((n_test, n), dtype=np.float64)
    s[:, -1] = (
        match_sorted[:, :-1] @ beta + last_coef * match_sorted[:, -1]
    ) / n
    diffs = (match_sorted[:, :-1] - match_sorted[:, 1:]) * (
        totals / (n - 1)
    )[None, :]
    tail = np.cumsum(diffs[:, ::-1], axis=1)[:, ::-1]
    s[:, :-1] = tail + s[:, -1:]
    return s


def weighted_regression_rank_only_values(
    y_sorted: np.ndarray, y_test: np.ndarray, k: int, weight_table: np.ndarray
) -> np.ndarray:
    """O(n_test·N·K^3) piecewise path: rank-only weighted KNN regression.

    Runs the Theorem 7 recursion for the regression utility ``v(S) =
    -(pred(S) - t)^2`` (eq 27) in closed form via the label-moment
    machinery of :mod:`repro.core.piecewise`
    (:func:`weighted_knn_regression_pair_totals` /
    :func:`weighted_knn_regression_anchor`): with a rank-only weight
    function the adjacent-rank marginal is linear in the incumbents'
    weighted label sum and the anchor quadratic, so binomial-weighted
    first/second label moments replace the O(C(N-2, K-1)·N)
    configuration enumeration entirely.

    Parameters
    ----------
    y_sorted:
        ``(n_test, n)`` training labels in ascending-distance rank
        order per test point.
    y_test:
        ``(n_test,)`` regression targets.
    k:
        The K of KNN.
    weight_table:
        ``(K, K)`` rank-only weight table, ``table[m-1, q-1] = w_q(m)``
        (:func:`repro.knn.weights.weight_position_table`).

    Returns
    -------
    numpy.ndarray
        Shapley values in rank space, shape ``(n_test, n)``; equal to
        the reference recursion within accumulated rounding (<= 1e-12).
    """
    y_sorted = np.atleast_2d(np.asarray(y_sorted, dtype=np.float64))
    y_test = np.atleast_1d(np.asarray(y_test, dtype=np.float64))
    n_test, n = y_sorted.shape
    table = np.asarray(weight_table, dtype=np.float64)
    s = np.empty((n_test, n), dtype=np.float64)
    for j in range(n_test):
        t = float(y_test[j])
        if n == 1:
            # single training point: s = v({1}) - v(∅)
            s[j, 0] = -((table[0, 0] * y_sorted[j, 0] - t) ** 2) + t**2
            continue
        totals = weighted_knn_regression_pair_totals(
            n, k, table, y_sorted[j], t
        )
        anchor = weighted_knn_regression_anchor(n, k, table, y_sorted[j], t)
        s[j] = chain_values_from_differences(anchor, totals / (n - 1))
    return s


def pad_weight_table(n: int, k: int) -> np.ndarray:
    """Vectorized fold of :func:`_pad_weight` over every ``rmax``.

    Returns ``table`` of length ``n + 1`` with ``table[rmax] =
    _pad_weight(n, k, rmax)`` (index 0 unused).  Each row is computed
    as a cumulative product of small rational step ratios instead of
    big-integer ``math.comb`` sums — O(N) float multiplications per
    ``rmax`` and a few ulps of rounding, where the scalar form builds
    thousand-digit integers.
    """
    if n < 2 or k < 1:
        raise ParameterError(f"need n >= 2 and k >= 1, got n={n}, k={k}")
    table = np.zeros(n + 1, dtype=np.float64)
    if k - 1 > n - 2:
        return table  # no coalition of size >= K-1 exists
    first = 1.0 / math.comb(n - 2, k - 1)
    for rmax in range(1, n + 1):
        avail = n - rmax
        max_pad = min(avail, (n - 2) - (k - 1))
        # term(p) = C(avail, p) / C(n-2, k-1+p); successive ratio is
        # (avail-p+1)(k-1+p) / (p (n-k-p)), denominator safe: p <= n-1-k
        if max_pad <= 0:
            table[rmax] = first
            continue
        p = np.arange(1.0, max_pad + 1.0)
        ratios = (avail - p + 1.0) * (k - 1.0 + p) / (p * (n - k - p))
        table[rmax] = first * (1.0 + np.cumprod(ratios).sum())
    return table


def _colex_combinations(n_items: int, r: int) -> np.ndarray:
    """All size-``r`` sorted index combinations, in *colex* order.

    Colex (compare the last element first) is the enumeration both the
    materialized and the streaming configuration paths share: its
    recursive structure — the rows ending in ``c`` are exactly
    ``colex(c, r-1)`` with a ``c`` column appended, and ``colex(c,
    r-1)`` is a prefix of ``colex(n, r-1)`` — lets the full array build
    column-by-column from ramps and repeats (no per-row Python), and
    lets :func:`iter_combination_blocks` emit the identical sequence
    with fixed-size blocks and no bigint unranking.
    """
    if r == 0:
        return np.zeros((1, 0), dtype=np.intp)
    if n_items < r:
        return np.zeros((0, r), dtype=np.intp)
    out = np.arange(n_items, dtype=np.intp)[:, None]
    for j in range(2, r + 1):
        counts = np.array(
            [math.comb(c, j - 1) for c in range(j - 1, n_items)],
            dtype=np.intp,
        )
        total = int(counts.sum())
        last = np.repeat(np.arange(j - 1, n_items, dtype=np.intp), counts)
        offsets = np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        ramp = np.arange(total, dtype=np.intp) - offsets
        out = np.concatenate((out[ramp], last[:, None]), axis=1)
    return out


#: Byte cap on the shared configuration-array cache.  Configuration
#: index arrays depend only on ``(n_items, r)`` and are reused across
#: test points, requests and engines — but under varied (N, K) serving
#: an unbounded memo is a slow leak, so insertion past the cap evicts
#: the oldest entries (FIFO), mirroring the
#: :data:`WEIGHTED_VALUE_CACHE_LIMIT` idiom.  Arrays larger than the
#: cap bypass the cache entirely.
WEIGHTED_CONFIG_CACHE_BYTES = 64 << 20

_CONFIG_CACHE: Dict[Tuple[int, int], np.ndarray] = {}
_CONFIG_CACHE_STATS = {
    "hits": 0,
    "misses": 0,
    "evictions": 0,
    "oversize": 0,
    "bytes": 0,
}


def weighted_config_cache_stats() -> dict:
    """Counters of the shared configuration-array cache.

    ``hits`` / ``misses`` count lookups, ``evictions`` FIFO removals
    under the byte cap, ``oversize`` arrays too large to cache at all,
    ``bytes`` / ``entries`` the current residency, and
    ``capacity_bytes`` the cap
    (:data:`WEIGHTED_CONFIG_CACHE_BYTES`).
    """
    return {
        **_CONFIG_CACHE_STATS,
        "entries": len(_CONFIG_CACHE),
        "capacity_bytes": int(WEIGHTED_CONFIG_CACHE_BYTES),
    }


def weighted_config_cache_clear() -> None:
    """Drop every cached configuration array and zero the counters."""
    _CONFIG_CACHE.clear()
    for key in _CONFIG_CACHE_STATS:
        _CONFIG_CACHE_STATS[key] = 0


def _combination_array(n_items: int, r: int) -> np.ndarray:
    """All size-``r`` combinations as an ``(M, r)`` array, colex order.

    Served through the bounded byte-capped FIFO cache — the arrays are
    shared (and marked read-only) across every
    :class:`BatchedWeightedRecursion` of the same ``(n_items, r)``.
    """
    key = (int(n_items), int(r))
    arr = _CONFIG_CACHE.get(key)
    if arr is not None:
        _CONFIG_CACHE_STATS["hits"] += 1
        return arr
    _CONFIG_CACHE_STATS["misses"] += 1
    arr = _colex_combinations(n_items, r)
    arr.setflags(write=False)
    cap = int(WEIGHTED_CONFIG_CACHE_BYTES)
    if arr.nbytes > cap:
        _CONFIG_CACHE_STATS["oversize"] += 1
        return arr
    while _CONFIG_CACHE and _CONFIG_CACHE_STATS["bytes"] + arr.nbytes > cap:
        oldest = next(iter(_CONFIG_CACHE))
        evicted = _CONFIG_CACHE.pop(oldest)
        _CONFIG_CACHE_STATS["bytes"] -= evicted.nbytes
        _CONFIG_CACHE_STATS["evictions"] += 1
    _CONFIG_CACHE[key] = arr
    _CONFIG_CACHE_STATS["bytes"] += arr.nbytes
    return arr


def iter_combination_blocks(
    n_items: int, r: int, block_rows: int = 1 << 15
):
    """Stream size-``r`` combinations in colex order, in fixed blocks.

    Yields ``(block_rows, r)`` integer arrays (the final block may be
    shorter) whose concatenation equals
    :func:`_colex_combinations` ``(n_items, r)`` row-for-row — the
    streaming configuration engine's enumeration feeder.  Nothing
    proportional to ``C(n_items, r)`` is ever resident: blocks are
    assembled from *runs* (for a fixed suffix ``c_1 < ... < c_{r-1}``
    the first column is just ``arange(c_1)``), with the suffix advanced
    by the colex successor rule — ``O(1)`` integer work per run, no
    bigint unranking.  Identical block boundaries are what make the
    streaming path bit-identical to the materialized one: both feed the
    same row sets to the same float reductions in the same order.
    """
    if block_rows < 1:
        raise ParameterError(f"block_rows must be positive, got {block_rows}")
    if r < 0:
        raise ParameterError(f"r must be non-negative, got {r}")
    if r == 0:
        yield np.zeros((1, 0), dtype=np.intp)
        return
    if n_items < r:
        return
    if r == 1:
        for start in range(0, n_items, block_rows):
            stop = min(start + block_rows, n_items)
            yield np.arange(start, stop, dtype=np.intp)[:, None]
        return

    def pieces():
        # suffix c_2 < ... < c_{r-1} (empty for r == 2), colex order
        tail = [j + 2 for j in range(r - 2)]
        while True:
            c_top = tail[0] if r > 2 else n_items
            c1 = 1
            while c1 < c_top:
                # pack whole c1-runs up to ~block_rows rows per piece
                c1_end = c1
                rows = 0
                while c1_end < c_top and rows + c1_end <= block_rows:
                    rows += c1_end
                    c1_end += 1
                if rows == 0:  # a single run larger than a block
                    rows = c1
                    c1_end = c1 + 1
                piece = np.empty((rows, r), dtype=np.intp)
                counts = np.arange(c1, c1_end, dtype=np.intp)
                piece[:, 1] = np.repeat(counts, counts)
                offsets = np.repeat(
                    np.concatenate(([0], np.cumsum(counts)[:-1])), counts
                )
                piece[:, 0] = np.arange(rows, dtype=np.intp) - offsets
                if r > 2:
                    piece[:, 2:] = np.asarray(tail, dtype=np.intp)
                c1 = c1_end
                yield piece
            if r == 2:
                return
            # colex successor on the suffix
            j = 0
            while j < r - 2:
                nxt = tail[j] + 1
                limit = tail[j + 1] if j + 1 < r - 2 else n_items
                if nxt < limit:
                    tail[j] = nxt
                    for jj in range(j):
                        tail[jj] = jj + 2
                    break
                j += 1
            else:
                return

    pending: list = []
    buffered = 0
    for piece in pieces():
        pending.append(piece)
        buffered += piece.shape[0]
        if buffered >= block_rows:
            chunk = (
                pending[0] if len(pending) == 1 else np.concatenate(pending)
            )
            start = 0
            while chunk.shape[0] - start >= block_rows:
                yield chunk[start : start + block_rows]
                start += block_rows
            rest = chunk[start:]
            pending = [rest] if rest.shape[0] else []
            buffered = int(rest.shape[0])
    if buffered:
        yield pending[0] if len(pending) == 1 else np.concatenate(pending)


def materialized_config_bytes(n: int, k: int) -> int:
    """Resident bytes of the materialized configuration arrays.

    The explicit memory estimate :meth:`WeightedKernel.select_path`
    routes on: what :class:`BatchedWeightedRecursion` holds for an
    ``(n, k)`` request with ``streaming=False`` — the size-``s``
    pair-difference arrays (``s <= K-1``) plus the anchor arrays.
    Exact Python-integer arithmetic, so serving-scale overflows are
    impossible.
    """
    if n < 2 or k < 1:
        return 0
    item = np.dtype(np.intp).itemsize
    total = 0
    for s in range(0, max(0, k - 1)):
        total += math.comb(n - 2, s) * s * item
    if n - 2 >= k - 1:
        total += math.comb(n - 2, k - 1) * (k - 1) * item
    for size in range(0, min(k, n)):
        total += math.comb(n - 1, size) * size * item
    return total


class BatchedWeightedRecursion:
    """The vectorized configuration engine behind the Theorem 7 sums.

    Precomputes, once per ``(n, k)``: the size-``s`` configuration
    index arrays (``s <= K-1``) shared by every adjacent pair, and the
    :func:`pad_weight_table` comb fold.  :meth:`run` then evaluates the
    eq (74)/(75) recursion for one test point through a *batched*
    coalition-value oracle — whole blocks of coalitions per call, no
    per-coalition Python — which is what removes the constant-factor
    overhead that dominates :func:`weighted_rank_values`.

    The oracle ``value_many`` receives an ``(M, m)`` integer array of
    1-based ranks, each row sorted ascending (``m`` may be 0 — the
    empty coalition), and returns the ``M`` single-test utilities.

    ``streaming=True`` swaps the materialized configuration arrays for
    :func:`iter_combination_blocks`: the same colex enumeration, the
    same ``block_rows``-sized blocks, the same float reductions — so
    the result is *bit-identical* — but resident configuration memory
    stays ``O(block_rows * K)`` for any K instead of
    ``O(C(N-2, K-1) * K)``.  The materialized arrays come from the
    bounded module cache (:func:`weighted_config_cache_stats`) and are
    shared across engines of the same ``(n, k)``.
    """

    def __init__(
        self,
        n: int,
        k: int,
        block_rows: int = 1 << 15,
        streaming: bool = False,
    ) -> None:
        if n < 1:
            raise ParameterError(f"n must be positive, got {n}")
        if k < 1:
            raise ParameterError(f"k must be positive, got {k}")
        if block_rows < 1:
            raise ParameterError(
                f"block_rows must be positive, got {block_rows}"
            )
        self.n = int(n)
        self.k = int(k)
        self.block_rows = int(block_rows)
        self.streaming = bool(streaming)
        if n >= 2:
            self._pad = pad_weight_table(n, k)
            small_specs = [(n - 2, s) for s in range(0, max(0, k - 1))]
            big_spec = (n - 2, k - 1) if n - 2 >= k - 1 else None
            anchor_specs = [(n - 1, size) for size in range(0, min(k, n))]
            if streaming:
                self._idx_small = small_specs
                self._idx_big = big_spec
                self._idx_anchor = anchor_specs
            else:
                self._idx_small = [
                    _combination_array(*spec) for spec in small_specs
                ]
                self._idx_big = (
                    _combination_array(*big_spec)
                    if big_spec is not None
                    else None
                )
                self._idx_anchor = [
                    _combination_array(*spec) for spec in anchor_specs
                ]

    # ------------------------------------------------------------------
    def _blocks(self, idx):
        """Blocks of one configuration source (array or streamed spec)."""
        if self.streaming:
            n_items, r = idx
            yield from iter_combination_blocks(n_items, r, self.block_rows)
            return
        for start in range(0, idx.shape[0], self.block_rows):
            yield idx[start : start + self.block_rows]

    def config_bytes(self) -> int:
        """Resident configuration-index bytes of this engine.

        Streaming engines hold at most one block (plus its assembly
        scratch) at a time; materialized engines hold every array.
        """
        if self.n < 2:
            return 0
        item = np.dtype(np.intp).itemsize
        if self.streaming:
            width = max(1, self.k - 1, min(self.k, self.n) - 1)
            return self.block_rows * width * item
        total = sum(idx.nbytes for idx in self._idx_small)
        total += sum(idx.nbytes for idx in self._idx_anchor)
        if self._idx_big is not None:
            total += self._idx_big.nbytes
        return total

    @staticmethod
    def _with_member(members: np.ndarray, rank: int) -> np.ndarray:
        extra = np.full((members.shape[0], 1), rank, dtype=np.intp)
        return np.sort(np.concatenate((members, extra), axis=1), axis=1)

    def run(self, value_many) -> np.ndarray:
        """Shapley values in rank space for one test point."""
        n, k = self.n, self.k
        if n < 2:
            single = value_many(np.array([[1]], dtype=np.intp))
            empty = value_many(np.zeros((1, 0), dtype=np.intp))
            return np.array([float(single[0]) - float(empty[0])])

        # ---- anchor: the farthest point (eq 74) ----------------------
        total = 0.0
        for size, idx in enumerate(self._idx_anchor):
            inv_binom = 1.0 / math.comb(n - 1, size)
            level = 0.0
            for blk in self._blocks(idx):
                members = blk + 1  # positions 0..n-2 are ranks 1..n-1
                with_n = np.concatenate(
                    (
                        members,
                        np.full((members.shape[0], 1), n, dtype=np.intp),
                    ),
                    axis=1,
                )  # rank n is the largest: rows stay sorted
                level += float(
                    value_many(with_n).sum() - value_many(members).sum()
                )
            total += inv_binom * level
        anchor = total / n

        # ---- adjacent-rank differences (eq 75) -----------------------
        diffs = np.empty(n - 1, dtype=np.float64)
        for i in range(n - 1, 0, -1):
            rest = np.concatenate(
                (
                    np.arange(1, i, dtype=np.intp),
                    np.arange(i + 2, n + 1, dtype=np.intp),
                )
            )
            acc = 0.0
            for s, idx in enumerate(self._idx_small):
                inv_binom = 1.0 / math.comb(n - 2, s)
                level = 0.0
                for blk in self._blocks(idx):
                    members = rest[blk]
                    level += float(
                        (
                            value_many(self._with_member(members, i))
                            - value_many(self._with_member(members, i + 1))
                        ).sum()
                    )
                acc += inv_binom * level
            if self._idx_big is not None:
                for blk in self._blocks(self._idx_big):
                    members = rest[blk]
                    if k > 1:
                        rmax = np.maximum(members[:, -1], i + 1)
                    else:
                        rmax = np.full(members.shape[0], i + 1, dtype=np.intp)
                    diff = value_many(
                        self._with_member(members, i)
                    ) - value_many(self._with_member(members, i + 1))
                    acc += float(np.dot(self._pad[rmax], diff))
            diffs[i - 1] = acc / (n - 1)
        return chain_values_from_differences(anchor, diffs)


def weighted_rank_values_batched(
    value_many, n: int, k: int, block_rows: int = 1 << 15
) -> np.ndarray:
    """One-shot form of :class:`BatchedWeightedRecursion`.

    ``value_many`` maps an ``(M, m)`` array of sorted 1-based rank rows
    to the ``M`` coalition utilities; see the class for the contract.
    Prefer constructing the class once when valuing several test points
    of the same ``(n, k)`` — the configuration enumeration and pad
    table are the reusable part.
    """
    return BatchedWeightedRecursion(n, k, block_rows=block_rows).run(
        value_many
    )


# ======================================================================
# RankPlan: the one input every theorem consumes
# ======================================================================
@dataclass
class RankPlan:
    """Per-test rank-space inputs for the valuation kernels.

    A plan packages, for a batch of test points, everything the
    theorems' recursions consume: the ascending-distance rank order,
    the training labels in that order, the test labels, and (when a
    kernel needs them) the sorted distances.  Plans come in three
    physical shapes:

    * **full ranking** — ``order`` is a ``(n_test, n_train)``
      permutation per row (``lengths is None``); required by the
      ``exact``, ``regression`` and ``weighted`` kernels;
    * **rectangular prefix** — the first ``m < n_train`` ranks per row
      (exact top-``K*`` retrieval);
    * **ragged** — per-row prefixes of varying length, padded to the
      longest with ``lengths`` recording each row's valid width
      (approximate LSH retrieval may return fewer than ``K*``).

    Attributes
    ----------
    order:
        ``(n_test, m)`` training indices, nearest first.
    labels_sorted:
        ``(n_test, m)`` training labels in rank order
        (``y_train[order]``).
    y_test:
        ``(n_test,)`` test labels.
    n_train:
        Total training-set size (``m <= n_train``).
    distances_sorted:
        Optional ``(n_test, m)`` ascending distances matching
        ``order``.
    lengths:
        Optional ``(n_test,)`` valid-prefix lengths for ragged plans;
        entries beyond a row's length are padding and never read.
    y_train:
        Optional reference to the labels in original index order
        (kept by the constructors; the weighted kernel indexes labels
        by training index rather than by rank).
    """

    order: np.ndarray
    labels_sorted: np.ndarray
    y_test: np.ndarray
    n_train: int
    distances_sorted: Optional[np.ndarray] = None
    lengths: Optional[np.ndarray] = None
    y_train: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_order(
        cls,
        order: np.ndarray,
        y_train: np.ndarray,
        y_test: np.ndarray,
        distances: Optional[np.ndarray] = None,
    ) -> "RankPlan":
        """Build a rectangular plan from a precomputed ranking.

        ``order`` may be the full ``(n_test, n_train)`` ranking or a
        top-``m`` prefix; ``distances`` (if given) must match its
        shape.
        """
        order = np.atleast_2d(np.asarray(order, dtype=np.intp))
        y_train = np.asarray(y_train)
        y_test = np.atleast_1d(np.asarray(y_test))
        if y_test.shape[0] != order.shape[0]:
            raise ParameterError(
                f"y_test has length {y_test.shape[0]}, expected "
                f"{order.shape[0]} (one label per ranked test point)"
            )
        if distances is not None:
            distances = np.atleast_2d(np.asarray(distances, dtype=np.float64))
            if distances.shape != order.shape:
                raise ParameterError(
                    f"distances shape {distances.shape} does not match "
                    f"order shape {order.shape}"
                )
        return cls(
            order=order,
            labels_sorted=y_train[order],
            y_test=y_test,
            n_train=int(y_train.shape[0]),
            distances_sorted=distances,
            y_train=y_train,
        )

    @classmethod
    def from_neighbor_rows(
        cls,
        rows: Sequence[np.ndarray],
        y_train: np.ndarray,
        y_test: np.ndarray,
    ) -> "RankPlan":
        """Build a (possibly ragged) plan from per-test neighbor lists.

        ``rows[j]`` lists the retrieved training indices of test point
        ``j``, nearest first; rows may differ in length or be empty
        (an approximate index with sparse buckets).
        """
        y_train = np.asarray(y_train)
        y_test = np.atleast_1d(np.asarray(y_test))
        if len(rows) != y_test.shape[0]:
            raise ParameterError(
                f"got {len(rows)} neighbor rows for {y_test.shape[0]} "
                "test labels"
            )
        lengths = np.array([np.asarray(r).shape[0] for r in rows], dtype=np.intp)
        width = int(lengths.max()) if lengths.size else 0
        order = np.zeros((len(rows), width), dtype=np.intp)
        for j, row in enumerate(rows):
            row = np.asarray(row, dtype=np.intp)
            order[j, : row.shape[0]] = row
        # lengths are always kept: retrieval rows carry no permutation
        # guarantee, so these plans never take the full-ranking
        # scatter even when a row happens to span the training set
        return cls(
            order=order,
            labels_sorted=y_train[order],
            y_test=y_test,
            n_train=int(y_train.shape[0]),
            lengths=lengths,
            y_train=y_train,
        )

    # ------------------------------------------------------------------
    @property
    def n_test(self) -> int:
        """Number of test points in the plan."""
        return int(self.order.shape[0])

    @property
    def width(self) -> int:
        """Number of ranks materialized per row (``<= n_train``)."""
        return int(self.order.shape[1])

    @property
    def is_full_ranking(self) -> bool:
        """Whether every row is a full permutation of the training set."""
        return self.lengths is None and self.width == self.n_train

    def row_length(self, j: int) -> int:
        """Valid prefix length of row ``j``."""
        return self.width if self.lengths is None else int(self.lengths[j])

    def match_sorted(self) -> np.ndarray:
        """0/1 label-match matrix in rank order, float64.

        Entry ``[j, p]`` is 1.0 when the (p+1)-th nearest neighbor of
        test point ``j`` carries the test label.
        """
        return (self.labels_sorted == self.y_test[:, None]).astype(np.float64)

    # ------------------------------------------------------------------
    def scatter(self, values_rank: np.ndarray) -> np.ndarray:
        """Scatter rank-space values to original training-index order.

        Returns the C-contiguous float64 ``(n_test, n_train)`` per-test
        value matrix of the kernel output contract; ranks a plan does
        not cover receive exactly 0 (Theorem 2's truncation).
        """
        if self.is_full_ranking:
            per_test = np.empty((self.n_test, self.n_train), dtype=np.float64)
            np.put_along_axis(per_test, self.order, values_rank, axis=1)
        else:
            per_test = np.zeros((self.n_test, self.n_train), dtype=np.float64)
            for j in range(self.n_test):
                lj = self.row_length(j)
                if lj:
                    per_test[j, self.order[j, :lj]] = values_rank[j, :lj]
        return as_value_matrix(per_test)


# ======================================================================
# kernels
# ======================================================================
@dataclass(frozen=True)
class KernelCapabilities:
    """What a kernel consumes and which execution paths it supports."""

    needs_full_ranking: bool
    supports_incremental: bool
    supports_regression: bool
    needs_distances: bool = False


class ValuationKernel(ABC):
    """A vectorized rank-space Shapley recursion behind the registry.

    Subclasses implement :meth:`values_from_plan` and publish a
    :attr:`capabilities` record; the engine, streaming accumulator and
    incremental valuator route on those capabilities instead of on
    method names.
    """

    #: registry name; overridden by subclasses
    name: str = "abstract"
    capabilities: KernelCapabilities

    @abstractmethod
    def values_from_plan(
        self, plan: RankPlan, k: int, **params
    ) -> np.ndarray:
        """Per-test Shapley values for ``plan``.

        Returns a C-contiguous float64 ``(n_test, n_train)`` matrix in
        original training-index order (the dtype contract of
        :mod:`repro.types`); the multi-test value is its column mean.
        """

    # ------------------------------------------------------------------
    def _check_k(self, k: int) -> int:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        return int(k)

    def _require_full_ranking(self, plan: RankPlan) -> None:
        if not plan.is_full_ranking:
            raise ParameterError(
                f"the {self.name!r} kernel needs a full ranking; the plan "
                f"covers {plan.width} of {plan.n_train} ranks"
            )


class ExactClassificationKernel(ValuationKernel):
    """Theorem 1: exact values for the unweighted KNN classifier."""

    name = "exact"
    capabilities = KernelCapabilities(
        needs_full_ranking=True,
        supports_incremental=True,
        supports_regression=False,
    )

    def values_from_plan(self, plan: RankPlan, k: int) -> np.ndarray:
        k = self._check_k(k)
        self._require_full_ranking(plan)
        s_rank = classification_rank_values(plan.match_sorted(), k)
        return plan.scatter(s_rank)


class TruncatedKernel(ValuationKernel):
    """Theorem 2: the (epsilon, 0) truncation of the exact recursion.

    Also serves Theorem 4 — the LSH path is this kernel over a ragged
    plan of approximate neighbors.
    """

    name = "truncated"
    capabilities = KernelCapabilities(
        needs_full_ranking=False,
        supports_incremental=False,
        supports_regression=False,
    )

    def values_from_plan(
        self,
        plan: RankPlan,
        k: int,
        epsilon: Optional[float] = None,
        k_star: Optional[int] = None,
        exact_anchor: bool = True,
    ) -> np.ndarray:
        """Truncated values; give either ``epsilon`` or ``k_star``.

        ``exact_anchor`` anchors the recursion at the exact
        farthest-point value whenever a row covers the whole training
        set (``k_star >= n_train``); disable it to reproduce the pure
        zero-anchored truncation regardless of coverage.
        """
        k = self._check_k(k)
        if k_star is None:
            if epsilon is None:
                raise ParameterError(
                    "the truncated kernel needs epsilon or k_star"
                )
            k_star = truncation_rank(k, epsilon)
        n_train = plan.n_train if exact_anchor else None
        vals = np.zeros((plan.n_test, plan.width), dtype=np.float64)
        for j in range(plan.n_test):
            lj = plan.row_length(j)
            if lj == 0:
                continue
            vals[j, :lj] = truncated_rank_values(
                plan.labels_sorted[j, :lj],
                plan.y_test[j],
                k,
                k_star,
                n_train=n_train,
            )
        return plan.scatter(vals)


class RegressionKernel(ValuationKernel):
    """Theorem 6: exact values for the unweighted KNN regressor."""

    name = "regression"
    capabilities = KernelCapabilities(
        needs_full_ranking=True,
        supports_incremental=False,
        supports_regression=True,
    )

    def values_from_plan(self, plan: RankPlan, k: int) -> np.ndarray:
        k = self._check_k(k)
        self._require_full_ranking(plan)
        y_sorted = np.asarray(plan.labels_sorted, dtype=np.float64)
        y_test = np.asarray(plan.y_test, dtype=np.float64)
        s_rank = np.empty((plan.n_test, plan.width), dtype=np.float64)
        for j in range(plan.n_test):
            s_rank[j] = regression_rank_values(y_sorted[j], float(y_test[j]), k)
        return plan.scatter(s_rank)


#: Default byte budget for the *materialized* weighted configuration
#: arrays.  ``select_path(mode="auto")`` estimates the resident bytes
#: of the vectorized path (:func:`materialized_config_bytes`) and
#: switches to the streaming engine past the budget; an explicit
#: ``mode="vectorized"`` past it raises
#: :class:`~repro.exceptions.MemoryBudgetError` instead of silently
#: going memory-bound.
WEIGHTED_MATERIALIZED_BUDGET_BYTES = 256 << 20


class WeightedKernel(ValuationKernel):
    """Theorem 7: exact values for weighted KNN (classification and
    regression, eqs 26/27).

    Five execution paths (:meth:`select_path` maps a requested ``mode``
    and the weight function's capabilities to one of them):

    * ``reference`` — the eq (74)/(75) recursion through a
      per-coalition value oracle built from the plan: ``O(N^K)``
      utility evaluations, bit-identical to
      :func:`repro.core.weighted.exact_weighted_knn_shapley`.
    * ``vectorized`` — the same sums through
      :class:`BatchedWeightedRecursion`: configurations materialized
      as integer arrays, utilities evaluated for whole blocks per
      numpy pass, pad weights folded via :func:`pad_weight_table`.
      Equal to the reference within accumulated rounding (<= 1e-12),
      roughly an order of magnitude faster on one CPU.
    * ``streaming`` — the vectorized sums fed by
      :func:`iter_combination_blocks` instead of materialized arrays:
      *bit-identical* to ``vectorized`` (same colex enumeration, same
      block boundaries) at a fixed ``O(block_rows * K)`` configuration
      memory for any K.
    * ``piecewise`` — rank-only weight functions, both tasks: the
      Appendix-F counting closed forms
      (:func:`weighted_rank_only_values` for classification,
      :func:`weighted_regression_rank_only_values` for regression via
      first/second label moments) — exact O(N·poly(K)), no coalition
      enumeration at all.
    * ``k1`` — ``K = 1`` with a built-in (normalizing) weight
      function: a single neighbor always weighs exactly 1.0, so the
      game collapses to the Theorem 1 recursion over a per-rank
      payload (equal to the reference within ~1e-15).
    """

    name = "weighted"
    capabilities = KernelCapabilities(
        needs_full_ranking=True,
        supports_incremental=False,
        supports_regression=True,
        needs_distances=True,
    )

    #: valid ``mode`` arguments
    MODES = ("auto", "reference", "vectorized", "streaming", "piecewise")
    #: execution paths :meth:`select_path` can return
    PATHS = ("k1", "piecewise", "vectorized", "streaming", "reference")

    def select_path(
        self,
        k: int,
        weights: Union[str, WeightFunction] = "inverse_distance",
        task: str = "classification",
        mode: str = "auto",
        n_train: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> str:
        """Resolve the execution path for a request — no work done.

        ``mode="auto"`` picks the cheapest exact-equivalent path:
        ``k1`` when ``k == 1`` with a named built-in weight function,
        else ``piecewise`` when the weight function is rank-only
        (:func:`repro.knn.weights.is_rank_only`) — classification and
        regression alike — else the configuration engine, materialized
        (``vectorized``) when its estimated resident bytes
        (:func:`materialized_config_bytes`, needs ``n_train``) fit the
        memory budget and ``streaming`` otherwise.

        Explicit modes force their path.  ``mode="piecewise"`` with a
        weight function that does not declare the ``rank_only``
        capability raises
        :class:`~repro.exceptions.KernelCapabilityError`;
        ``mode="vectorized"`` past the budget raises
        :class:`~repro.exceptions.MemoryBudgetError` (switch to
        ``streaming`` or raise the budget).

        The engine calls this to surface the chosen path in
        ``ValuationResult.extra["weighted_path"]`` and its ``stats()``
        counters.
        """
        if task not in ("classification", "regression"):
            raise ParameterError(
                f"task must be 'classification' or 'regression', got {task!r}"
            )
        if mode not in self.MODES:
            raise ParameterError(
                f"mode must be one of {self.MODES}, got {mode!r}"
            )
        budget = (
            WEIGHTED_MATERIALIZED_BUDGET_BYTES
            if memory_budget_bytes is None
            else int(memory_budget_bytes)
        )
        rank_only = is_rank_only(weights)
        if mode == "reference":
            return "reference"
        if mode == "streaming":
            return "streaming"
        if mode == "vectorized":
            if n_train is not None:
                estimate = materialized_config_bytes(n_train, k)
                if estimate > budget:
                    raise MemoryBudgetError(
                        f"materialized weighted configurations for "
                        f"n={n_train}, k={k} need ~{estimate} bytes, over "
                        f"the {budget}-byte budget; use mode='streaming' "
                        "(bit-identical, fixed memory) or raise the budget",
                        estimated_bytes=int(min(estimate, 1 << 62)),
                        budget_bytes=budget,
                    )
            return "vectorized"
        if mode == "piecewise":
            if not rank_only:
                name = weights if isinstance(weights, str) else getattr(
                    weights, "__name__", "custom"
                )
                raise KernelCapabilityError(
                    f"the piecewise weighted path needs the 'rank_only' "
                    f"weight-function capability; {name!r} does not declare "
                    "it (mark custom callables with fn.rank_only = True "
                    "when their output ignores distance values, or use "
                    "mode='vectorized'/'streaming')",
                    capability="rank_only",
                )
            return "piecewise"
        # auto
        if k == 1 and not callable(weights):
            # every built-in weight function normalizes, so the lone
            # neighbor of a K=1 coalition weighs exactly 1.0
            return "k1"
        if rank_only:
            return "piecewise"
        if (
            n_train is not None
            and materialized_config_bytes(n_train, k) > budget
        ):
            return "streaming"
        return "vectorized"

    def values_from_plan(
        self,
        plan: RankPlan,
        k: int,
        weights: Union[str, WeightFunction] = "inverse_distance",
        task: str = "classification",
        mode: str = "auto",
        memory_budget_bytes: Optional[int] = None,
        block_rows: Optional[int] = None,
    ) -> np.ndarray:
        """Weighted values from a full ranking with distances.

        Parameters
        ----------
        weights:
            Weight-function name or callable
            (:mod:`repro.knn.weights`).
        task:
            ``"classification"`` (eq 26) or ``"regression"`` (eq 27).
        mode:
            ``"auto"`` (default) picks the cheapest exact-equivalent
            path per :meth:`select_path`; ``"piecewise"`` /
            ``"vectorized"`` / ``"streaming"`` / ``"reference"`` force
            a path.
        memory_budget_bytes:
            Budget for the materialized configuration arrays
            (:data:`WEIGHTED_MATERIALIZED_BUDGET_BYTES` by default);
            see :meth:`select_path`.
        block_rows:
            Rows per configuration block of the vectorized/streaming
            engine (default ``2**15``).  Streaming memory is
            ``O(block_rows * K)``.
        """
        k = self._check_k(k)
        self._require_full_ranking(plan)
        path = self.select_path(
            k,
            weights,
            task,
            mode,
            n_train=plan.n_train,
            memory_budget_bytes=memory_budget_bytes,
        )
        if callable(weights):
            weight_fn: WeightFunction = weights
        else:
            weight_fn = get_weight_function(weights)
        if path == "k1":
            return self._k1_fast_path(plan, task)
        if path == "piecewise":
            return self._piecewise_path(plan, k, weight_fn, task)
        if path in ("vectorized", "streaming"):
            return self._vectorized_path(
                plan,
                k,
                weight_fn,
                task,
                streaming=path == "streaming",
                block_rows=block_rows,
            )
        return self._reference_path(plan, k, weight_fn, task)

    # ------------------------------------------------------------------
    def _k1_fast_path(self, plan: RankPlan, task: str) -> np.ndarray:
        if task == "classification":
            payload = plan.match_sorted()
        else:
            # v(S) = -(y_nearest - t)^2 with v(∅) = -t^2; running the
            # Theorem 1 recursion on g' = v - v(∅) yields the Shapley
            # values of the shifted game, which equal the originals.
            y = np.asarray(plan.labels_sorted, dtype=np.float64)
            t = np.asarray(plan.y_test, dtype=np.float64)[:, None]
            payload = t**2 - (y - t) ** 2
        return plan.scatter(classification_rank_values(payload, 1))

    def _piecewise_path(
        self, plan: RankPlan, k: int, weight_fn: WeightFunction, task: str
    ) -> np.ndarray:
        table = weight_position_table(weight_fn, k)
        if task == "classification":
            s_rank = weighted_rank_only_values(plan.match_sorted(), k, table)
        else:
            s_rank = weighted_regression_rank_only_values(
                np.asarray(plan.labels_sorted, dtype=np.float64),
                plan.y_test,
                k,
                table,
            )
        return plan.scatter(s_rank)

    def _vectorized_path(
        self,
        plan: RankPlan,
        k: int,
        weight_fn: WeightFunction,
        task: str,
        streaming: bool = False,
        block_rows: Optional[int] = None,
    ) -> np.ndarray:
        if plan.distances_sorted is None:
            raise ParameterError(
                "the weighted kernel needs the plan's sorted distances; "
                "build it with RankPlan.from_order(..., distances=...)"
            )
        q, n = plan.order.shape
        classification = task == "classification"
        recursion = BatchedWeightedRecursion(
            n,
            k,
            block_rows=block_rows if block_rows is not None else 1 << 15,
            streaming=streaming,
        )
        s_rank = np.empty((q, n), dtype=np.float64)
        for j in range(q):
            d_rank = plan.distances_sorted[j]
            if classification:
                payload = (
                    plan.labels_sorted[j] == plan.y_test[j]
                ).astype(np.float64)
                t = 0.0
            else:
                payload = np.asarray(plan.labels_sorted[j], dtype=np.float64)
                t = float(plan.y_test[j])

            def value_many(ranks: np.ndarray) -> np.ndarray:
                # rows are sorted 1-based ranks, so each coalition's
                # members arrive nearest-first and (size <= K) all of
                # them are selected — no per-coalition sort needed
                m_rows, width = ranks.shape
                if width == 0:
                    empty = 0.0 if classification else -(t**2)
                    return np.full(m_rows, empty)
                idx = ranks - 1
                w = apply_weights_batched(weight_fn, d_rank[idx])
                contrib = (w * payload[idx]).sum(axis=1)
                if classification:
                    return contrib
                return -((contrib - t) ** 2)

            s_rank[j] = recursion.run(value_many)
        return plan.scatter(s_rank)

    def _reference_path(
        self, plan: RankPlan, k: int, weight_fn: WeightFunction, task: str
    ) -> np.ndarray:
        if plan.distances_sorted is None:
            raise ParameterError(
                "the weighted kernel needs the plan's sorted distances; "
                "build it with RankPlan.from_order(..., distances=...)"
            )
        if plan.y_train is None:
            raise ParameterError(
                "the weighted kernel needs plan.y_train (labels in "
                "original index order)"
            )
        order = plan.order
        q, n = order.shape
        # rank of training point i for test j, and its distance, both
        # addressed by original index — the same precomputation the
        # weighted utility objects perform
        inv_order = np.empty_like(order)
        rows = np.arange(q)[:, None]
        inv_order[rows, order] = np.arange(n)[None, :]
        dist_by_index = np.empty_like(plan.distances_sorted)
        np.put_along_axis(dist_by_index, order, plan.distances_sorted, axis=1)
        y_train = plan.y_train
        y_test = plan.y_test
        classification = task == "classification"

        s_by_index = np.empty((q, n), dtype=np.float64)
        for j in range(q):
            order_j = order[j]
            inv_j = inv_order[j]
            dist_j = dist_by_index[j]
            t = y_test[j] if classification else float(y_test[j])

            def v(rank_members: tuple[int, ...]) -> float:
                members = order_j[np.asarray(rank_members, dtype=np.intp) - 1]
                members = np.sort(members)
                if members.size == 0:
                    return 0.0 if classification else -(t**2)
                kk = min(k, members.size)
                ranks = inv_j[members]
                nearest = members[np.argsort(ranks, kind="stable")[:kk]]
                w = weight_fn(dist_j[nearest])
                if classification:
                    match = (y_train[nearest] == t).astype(np.float64)
                    return float(np.dot(w, match))
                pred = float(
                    np.dot(w, np.asarray(y_train, dtype=np.float64)[nearest])
                )
                return -((pred - t) ** 2)

            s_rank = weighted_rank_values(v, n, k)
            s_by_index[j, order_j] = s_rank
        return as_value_matrix(s_by_index)


# ======================================================================
# registry
# ======================================================================
_KERNEL_REGISTRY: Dict[str, ValuationKernel] = {}


def register_kernel(
    kernel: ValuationKernel, name: Optional[str] = None
) -> None:
    """Register a kernel instance under ``name`` (overwrites quietly).

    Third-party kernels registered here become valid ``method`` names
    for :meth:`repro.engine.ValuationEngine.value`.
    """
    key = name or kernel.name
    if not key:
        raise ParameterError("kernel name must be non-empty")
    _KERNEL_REGISTRY[key] = kernel


def get_kernel(name: str) -> ValuationKernel:
    """Look up a registered kernel by name."""
    try:
        return _KERNEL_REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown valuation kernel {name!r}; available: "
            f"{available_kernels()}"
        ) from None


def available_kernels() -> list[str]:
    """Sorted names of all registered kernels."""
    return sorted(_KERNEL_REGISTRY)


register_kernel(ExactClassificationKernel())
register_kernel(TruncatedKernel())
register_kernel(RegressionKernel())
register_kernel(WeightedKernel())
