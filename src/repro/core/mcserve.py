"""Sort-free Monte Carlo valuation for the serving overload rung.

The reference estimator in :mod:`repro.core.montecarlo` replays each
permutation with a per-insertion Python heap — O(N) heap operations per
permutation per test point, fine for the paper's convergence figures
but far too slow to be a *degradation* path: under overload it must
beat the exact kernel, whose cost is one distance computation plus one
O(N log N) sort per test point.

This module is the serving-grade form of the paper's Algorithm 2
insight: in a random permutation only the points that actually enter
the running K-nearest heap contribute a nonzero marginal, and in
expectation only ``O(K ln N)`` of the N insertions do (the harmonic
argument behind Theorem 5's tiny variances).  So instead of replaying
every insertion, :func:`mc_values_from_distances`

1. works directly on **raw distances** — no ranking, no sort: the
   heap of the K smallest distances seen so far is the K-NN set of the
   permutation prefix, by definition;
2. **skip-scans** between heap events with vectorized numpy block
   comparisons against the current K-th smallest distance, so the
   Python-level loop runs ``O(K ln N)`` times per permutation while
   the O(N) scan work stays in C.

The estimator is unbiased for the unweighted KNN classification
utility (the same utility :class:`~repro.core.montecarlo` replays:
``U(S) = |{matching among the min(|S|,K) nearest}| / K``), and the
same T permutations serve every training point, so the
``(epsilon, delta)`` budgets of :mod:`repro.core.bounds` apply
unchanged — Theorem 5 sizes T for a target epsilon, and
:func:`~repro.core.bounds.certified_epsilon` inverts an explicit T
back into the error the run can certify.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..exceptions import DataValidationError, ParameterError

__all__ = ["mc_values_from_distances"]

#: elements compared per vectorized skip-scan step; big enough that the
#: Python-level loop overhead amortizes, small enough that a scan which
#: finds an early event has not touched much dead tail
_SCAN_BLOCK = 2048


def _one_permutation(
    d: np.ndarray, m: np.ndarray, k: int, out: np.ndarray, block: int
) -> None:
    """Accumulate one permutation's marginals into ``out`` (permuted order).

    ``d``/``m`` are the distance and match vectors already gathered in
    permutation order; ``out[t]`` receives the marginal contribution of
    the point inserted at time ``t``.
    """
    n = d.shape[0]
    heap: list[tuple[float, int]] = []  # max-heap by distance: (-d, t)
    t = 0
    while t < n:
        if len(heap) < k:
            # prefix smaller than K: every insertion joins the
            # neighbor set and evicts nobody
            heapq.heappush(heap, (-d[t], t))
            out[t] += m[t] / k
            t += 1
            continue
        # skip-scan: the next event is the first remaining point
        # closer than the current K-th nearest
        threshold = -heap[0][0]
        event = -1
        while t < n:
            stop = min(n, t + block)
            hits = np.flatnonzero(d[t:stop] < threshold)
            if hits.size:
                event = t + int(hits[0])
                break
            t = stop
        if event < 0:
            return
        t = event
        _, evicted = heapq.heapreplace(heap, (-d[t], t))
        out[t] += (m[t] - m[evicted]) / k
        t += 1


def mc_values_from_distances(
    dist: np.ndarray,
    match: np.ndarray,
    k: int,
    n_permutations: int,
    rng: np.random.Generator,
    block: int = _SCAN_BLOCK,
) -> np.ndarray:
    """Per-test Monte Carlo Shapley estimates from raw distances.

    Parameters
    ----------
    dist:
        ``(n_test, n_train)`` raw test-to-train distances — unsorted;
        avoiding the sort is the point.
    match:
        ``(n_test, n_train)`` float 0/1 label agreement
        (``y_train == y_test[j]``).
    k:
        The K of KNN.
    n_permutations:
        Permutations to average (size with
        :func:`repro.core.bounds.bennett_permutations`).
    rng:
        The permutation source; one shared permutation per round
        serves every test point, as in the paper.

    Returns
    -------
    ``(n_test, n_train)`` float64 estimates of the per-test values;
    the request value is their mean over axis 0 (eq 8 additivity).
    """
    dist = np.ascontiguousarray(dist, dtype=np.float64)
    match = np.ascontiguousarray(match, dtype=np.float64)
    if dist.ndim != 2 or match.shape != dist.shape:
        raise DataValidationError(
            f"dist and match must be matching 2-D arrays, got "
            f"{dist.shape} and {match.shape}"
        )
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    if n_permutations <= 0:
        raise ParameterError(
            f"n_permutations must be positive, got {n_permutations}"
        )
    q, n = dist.shape
    values = np.zeros((q, n), dtype=np.float64)
    buf = np.empty(n, dtype=np.float64)
    for _ in range(n_permutations):
        perm = rng.permutation(n)
        for j in range(q):
            # per-row 1-D take: contiguous-source gathers are several
            # times faster than one strided (q, n) column gather
            d_perm = dist[j].take(perm)
            m_perm = match[j].take(perm)
            buf[:] = 0.0
            _one_permutation(d_perm, m_perm, k, buf, block)
            # perm holds unique indices, so fancy += is a scatter
            values[j, perm] += buf
    values /= n_permutations
    return values
