"""Brute-force Shapley value computation (the test oracle).

Two independent implementations of the definition:

* :func:`shapley_by_subsets` — eq (2): for every player, average the
  marginal contribution over all ``2^{N-1}`` coalitions, with the
  combinatorial weights.  Evaluates the utility once per subset of the
  grand coalition (``2^N`` evaluations total, memoized by bitmask).
* :func:`shapley_by_permutations` — eq (3): average the marginal
  contribution over all ``N!`` permutations.

Both are exponential and intended for ``N <= ~12``.  They exist so that
every efficient algorithm in :mod:`repro.core` can be validated for
*exact* agreement on small instances — the paper's theorems claim exact
equality, and the tests hold them to it.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from ..exceptions import ParameterError
from ..types import ValuationResult
from ..utility.base import UtilityFunction

__all__ = ["shapley_by_subsets", "shapley_by_permutations", "all_subset_values"]

_MAX_BRUTE_N = 20


def all_subset_values(utility: UtilityFunction) -> np.ndarray:
    """Evaluate the utility on every subset of the grand coalition.

    Returns an array ``v`` of length ``2^N`` where ``v[mask]`` is the
    utility of the coalition whose members are the set bits of ``mask``.
    """
    n = utility.n_players
    if n > _MAX_BRUTE_N:
        raise ParameterError(
            f"brute force limited to N <= {_MAX_BRUTE_N}, got {n}"
        )
    values = np.empty(2**n, dtype=np.float64)
    members = np.arange(n, dtype=np.intp)
    for mask in range(2**n):
        sel = members[(mask >> members) & 1 == 1]
        values[mask] = utility._evaluate(sel)
    return values


def shapley_by_subsets(utility: UtilityFunction) -> ValuationResult:
    """Exact Shapley values via the subset-sum definition (eq 2).

    ``s_i = (1/N) * sum_{S ⊆ I\\{i}} [v(S ∪ {i}) − v(S)] / C(N−1, |S|)``
    """
    n = utility.n_players
    v = all_subset_values(utility)
    # popcount per mask, computed incrementally
    sizes = np.zeros(2**n, dtype=np.int64)
    for mask in range(1, 2**n):
        sizes[mask] = sizes[mask >> 1] + (mask & 1)
    inv_binom = np.array(
        [1.0 / math.comb(n - 1, k) for k in range(n)], dtype=np.float64
    )
    s = np.zeros(n, dtype=np.float64)
    for i in range(n):
        bit = 1 << i
        for mask in range(2**n):
            if mask & bit:
                continue
            s[i] += (v[mask | bit] - v[mask]) * inv_binom[sizes[mask]]
    s /= n
    return ValuationResult(values=s, method="brute-subsets")


def shapley_by_permutations(utility: UtilityFunction) -> ValuationResult:
    """Exact Shapley values via the permutation definition (eq 3).

    ``s_i = (1/N!) * sum_{π} [v(P_i^π ∪ {i}) − v(P_i^π)]``

    Marginals are read from the memoized subset table, so the cost is
    ``2^N`` utility evaluations plus ``N! * N`` table lookups.
    """
    n = utility.n_players
    if n > 10:
        raise ParameterError(
            f"permutation enumeration limited to N <= 10, got {n}"
        )
    v = all_subset_values(utility)
    s = np.zeros(n, dtype=np.float64)
    count = 0
    for perm in itertools.permutations(range(n)):
        mask = 0
        for player in perm:
            new_mask = mask | (1 << player)
            s[player] += v[new_mask] - v[mask]
            mask = new_mask
        count += 1
    s /= count
    return ValuationResult(values=s, method="brute-permutations")
