"""The piecewise utility-difference framework (Appendix F).

All the efficient algorithms in this library exploit one structural
property: for a pair of players ``i, j`` the utility difference
``v(S ∪ {i}) - v(S ∪ {j})`` takes only ``T`` distinct values over all
coalitions ``S``, partitioned into groups ``S_1 .. S_T`` with constants
``C_1 .. C_T``.  Lemma 1 then turns the Shapley difference into a
*counting* problem::

    s_i - s_j = (1/(N-1)) * sum_t C_t *
                sum_k |{S in S_t : |S| = k}| / C(N-2, k)

This module provides that counting machinery in reusable form plus the
closed-form group-size counts for the unweighted KNN classifier
(``T = 1``), which is how Theorem 1's ``min(K, i)/i`` factor arises:

    sum_k ( sum_{m <= min(K-1, k)} C(i-1, m) C(N-i-1, k-m) ) / C(N-2, k)
        = min(K, i) * (N - 1) / i

It also provides :func:`chain_values_from_differences`, the generic
"anchor plus telescoping differences" step shared by every recursion in
:mod:`repro.core`, and — new with the weighted fast path — the
*weighted* generalization of the closed-form counts: for a rank-only
weight function the difference ``v(S ∪ {i}) - v(S ∪ {i+1})`` of the
weighted KNN classifier is piecewise constant over ``O(K^2)`` groups
indexed by (position of rank ``i`` among the selected neighbors,
number of selected neighbors), with constant ``w_{a+1}(m) * (1[y_i =
y_test] - 1[y_{i+1} = y_test])``.  :func:`weighted_knn_pair_groups`
reifies those groups for Lemma 1;
:func:`weighted_knn_group_weight_totals` evaluates the whole counting
sum for every adjacent pair at once via the same binomial identity
that closes Theorem 1 (the full-size sum telescopes to
``(N - 1) / i`` independently of the position ``a``), leaving only an
``O(K^2)`` small-coalition correction per rank —
``O(N * K^2)`` total, the heart of the O(N·poly(K)) piecewise path.
:func:`weighted_knn_anchor_coefficients` closes the matching eq (74)
anchor as one coefficient vector over match indicators.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "shapley_difference_from_groups",
    "knn_group_count",
    "knn_group_weight_closed_form",
    "chain_values_from_differences",
    "falling_binomial",
    "weighted_knn_pair_groups",
    "weighted_knn_group_weight_totals",
    "weighted_knn_anchor_coefficients",
    "size_sum_closed_form",
    "weighted_knn_regression_pair_totals",
    "weighted_knn_regression_anchor",
]


def shapley_difference_from_groups(
    n: int,
    constants: Sequence[float],
    group_sizes: Sequence[Callable[[int], float]],
) -> float:
    """Evaluate Lemma 1 for a piecewise utility difference.

    Parameters
    ----------
    n:
        Number of players.
    constants:
        The ``C_t`` constants, one per group.
    group_sizes:
        For each group ``t``, a callable ``k -> |{S in S_t : |S| = k}|``
        counting coalitions of each size in the group.

    Returns
    -------
    float
        ``s_i - s_j`` per eq (31).
    """
    if len(constants) != len(group_sizes):
        raise ParameterError(
            "constants and group_sizes must have equal length; got "
            f"{len(constants)} and {len(group_sizes)}"
        )
    if n < 2:
        raise ParameterError(f"need at least two players, got {n}")
    total = 0.0
    for c_t, count_fn in zip(constants, group_sizes):
        inner = 0.0
        for k in range(n - 1):  # |S| ranges over 0 .. N-2
            inner += count_fn(k) / math.comb(n - 2, k)
        total += c_t * inner
    return total / (n - 1)


def knn_group_count(n: int, i: int, k_neighbors: int, size: int) -> int:
    """Size-``size`` coalitions where rank-``i``'s marginal is "live".

    For the unweighted KNN classifier and the adjacent pair
    ``(alpha_i, alpha_{i+1})`` (1-based rank ``i``), the single group
    ``S_1`` of Appendix F contains the coalitions with fewer than K
    members nearer than rank ``i``::

        |{S in S_1 : |S| = size}| =
            sum_{m=0}^{min(K-1, size)} C(i-1, m) * C(N-i-1, size-m)

    (``m`` counts members nearer than rank i; the rest must be farther
    than rank i+1.)
    """
    if not 1 <= i <= n - 1:
        raise ParameterError(f"rank i must lie in [1, {n - 1}], got {i}")
    total = 0
    for m in range(0, min(k_neighbors - 1, size) + 1):
        if m > i - 1 or size - m > n - i - 1:
            continue
        total += math.comb(i - 1, m) * math.comb(n - i - 1, size - m)
    return total


def knn_group_weight_closed_form(n: int, i: int, k_neighbors: int) -> float:
    """The binomial-identity closed form ``min(K, i) * (N - 1) / i``.

    Equals ``sum_k knn_group_count(n, i, K, k) / C(N-2, k)`` — eq (13)
    of the paper.  The test suite asserts this identity exhaustively.
    """
    if not 1 <= i <= n - 1:
        raise ParameterError(f"rank i must lie in [1, {n - 1}], got {i}")
    return min(k_neighbors, i) * (n - 1) / i


def falling_binomial(a, b: int) -> np.ndarray:
    """Vectorized ``C(a, b)`` for an array of ``a`` values, float64.

    Computed as the falling product ``prod_{t<b} (a - t) / (t + 1)`` —
    at most ``b`` multiplications regardless of how large ``a`` is, so
    precision stays at a few ulps even where ``math.comb`` would build
    thousand-digit integers.  For integer ``0 <= a < b`` a factor hits
    exactly zero before any negative factor, so out-of-range entries
    come back exactly 0.0 (the convention every counting sum here
    relies on).
    """
    if b < 0:
        raise ParameterError(f"b must be non-negative, got {b}")
    a = np.asarray(a, dtype=np.float64)
    out = np.ones_like(a)
    for t in range(b):
        out = out * ((a - t) / (t + 1.0))
    return out


def _check_weight_table(k_neighbors: int, weight_table) -> np.ndarray:
    if k_neighbors <= 0:
        raise ParameterError(f"k must be positive, got {k_neighbors}")
    table = np.asarray(weight_table, dtype=np.float64)
    if table.shape != (k_neighbors, k_neighbors):
        raise ParameterError(
            f"weight_table must have shape ({k_neighbors}, {k_neighbors}) "
            f"(= (K, K)), got {table.shape}"
        )
    return table


def weighted_knn_pair_groups(
    n: int, i: int, k_neighbors: int, weight_table
) -> tuple[list[float], list[Callable[[int], float]]]:
    """The Appendix-F groups of one adjacent pair, for Lemma 1.

    For the weighted KNN *classifier* under a rank-only weight function
    (``weight_table[m-1, q-1] = w_q(m)``, see
    :func:`repro.knn.weights.weight_position_table`), the utility
    difference of the pair ``(alpha_i, alpha_{i+1})`` is ``w_{a+1}(m) *
    (1[match_i] - 1[match_{i+1}])`` whenever exactly ``a <= K-1``
    members of ``S`` are nearer than rank ``i`` (``m = min(K, |S|+1)``
    neighbors get selected), and 0 when ``a >= K`` — every other
    selected member appears at the same position with the same weight
    on both sides and cancels.  This returns the ``(constants,
    group_sizes)`` pair for :func:`shapley_difference_from_groups`,
    with the match-indicator difference factored out of the constants:
    feeding them through Lemma 1 yields ``(s_i - s_{i+1}) / (match_i -
    match_{i+1})``.

    ``O(K^2)`` groups: one per position ``a`` for the saturated band
    ``|S| >= K-1``, plus one per ``(a, |S|)`` with ``|S| <= K-2``.
    Intended for auditing/testing —
    :func:`weighted_knn_group_weight_totals` evaluates the same sum
    for *all* pairs in closed form.
    """
    table = _check_weight_table(k_neighbors, weight_table)
    if not 1 <= i <= n - 1:
        raise ParameterError(f"rank i must lie in [1, {n - 1}], got {i}")
    k = k_neighbors

    def count(a: int, size: int) -> float:
        # |{S : |S| = size, exactly a members nearer than rank i}|
        if a > size or a > i - 1 or size - a > n - i - 1:
            return 0.0
        return float(math.comb(i - 1, a) * math.comb(n - i - 1, size - a))

    constants: list[float] = []
    group_sizes: list[Callable[[int], float]] = []
    for a in range(0, min(k, i) ):
        # saturated band: |S| >= K-1 selects m = K neighbors
        constants.append(float(table[k - 1, a]))
        group_sizes.append(
            lambda size, a=a: count(a, size) if size >= k - 1 else 0.0
        )
        # small coalitions: |S| = s <= K-2 selects m = s+1 neighbors
        for s in range(a, k - 1):
            constants.append(float(table[s, a]))
            group_sizes.append(
                lambda size, a=a, s=s: count(a, size) if size == s else 0.0
            )
    return constants, group_sizes


def weighted_knn_group_weight_totals(
    n: int, k_neighbors: int, weight_table
) -> np.ndarray:
    """Closed-form Lemma-1 counting sums for every adjacent pair.

    Returns ``totals`` of length ``n - 1`` with ``totals[i-1] = (N-1) *
    (s_i - s_{i+1}) / (match_i - match_{i+1})`` for the weighted KNN
    classifier under a rank-only weight function — i.e. exactly
    :func:`shapley_difference_from_groups` over
    :func:`weighted_knn_pair_groups`, times ``N - 1``, evaluated for
    all ``i`` at once in ``O(N * K^2)``.

    The closed form uses the same identity that collapses Theorem 1:
    summed over *all* coalition sizes, ``sum_s C(i-1, a) C(N-i-1, s-a)
    / C(N-2, s) = (N-1)/i`` for every position ``a``, so the saturated
    band contributes ``sum_a w_{a+1}(K) (N-1)/i`` and only the
    ``K - 1`` small sizes need the explicit (vectorized) counts, with
    the weight corrected from ``w_{a+1}(K)`` to ``w_{a+1}(s+1)``.
    """
    table = _check_weight_table(k_neighbors, weight_table)
    if n < 2:
        raise ParameterError(f"need at least two players, got {n}")
    k = k_neighbors
    i = np.arange(1, n, dtype=np.float64)
    w_sat = table[k - 1]
    cum_sat = np.cumsum(w_sat)
    sat_idx = np.minimum(k, i).astype(np.intp) - 1
    totals = cum_sat[sat_idx] * (n - 1) / i
    for s in range(0, min(k - 1, n - 1)):
        inv_binom = 1.0 / math.comb(n - 2, s)
        for a in range(0, s + 1):
            delta_w = table[s, a] - w_sat[a]
            if delta_w == 0.0:
                continue
            counts = falling_binomial(i - 1.0, a) * falling_binomial(
                n - 1.0 - i, s - a
            )
            totals = totals + (delta_w * inv_binom) * counts
    return totals


def weighted_knn_anchor_coefficients(
    n: int, k_neighbors: int, weight_table
) -> tuple[np.ndarray, float]:
    """Close the eq (74) anchor of the rank-only weighted classifier.

    The farthest point's value averages ``v(S ∪ {N}) - v(S)`` over all
    coalitions of sizes ``0..K-1``; with rank-only weights the marginal
    splits into the new member's own weight (position ``|S|+1`` of
    ``|S|+1``) plus the re-weighting ``w_q(|S|+1) - w_q(|S|)`` of every
    incumbent, so the whole anchor is linear in the match indicators::

        s_N = ( last_coef * match_N + sum_r beta[r-1] * match_r ) / N

    Returns ``(beta, last_coef)`` with ``beta`` of length ``n - 1``
    (coefficient of rank ``r``'s match, ``r = 1..N-1``), computed in
    ``O(N * K^2)`` via vectorized binomial counts of how often rank
    ``r`` sits at position ``q`` of a random size-``size`` coalition.
    """
    table = _check_weight_table(k_neighbors, weight_table)
    if n < 1:
        raise ParameterError(f"n must be positive, got {n}")
    k = k_neighbors
    sizes = range(0, min(k, n))
    last_coef = float(sum(table[size, size] for size in sizes))
    beta = np.zeros(max(n - 1, 0), dtype=np.float64)
    if n < 2:
        return beta, last_coef
    r = np.arange(1, n, dtype=np.float64)
    for size in range(1, min(k, n)):
        inv_binom = 1.0 / math.comb(n - 1, size)
        for q in range(1, size + 1):
            delta_w = table[size, q - 1] - table[size - 1, q - 1]
            if delta_w == 0.0:
                continue
            counts = falling_binomial(r - 1.0, q - 1) * falling_binomial(
                n - 1.0 - r, size - q
            )
            beta += (delta_w * inv_binom) * counts
    return beta, last_coef


def chain_values_from_differences(
    anchor: float, differences: np.ndarray
) -> np.ndarray:
    """Reconstruct a value vector from its anchor and adjacent differences.

    Parameters
    ----------
    anchor:
        The value of the *last* element, ``s_N``.
    differences:
        ``differences[p] = s_{p+1} - s_{p+2}`` (1-based ranks), length
        ``N - 1``.

    Returns
    -------
    numpy.ndarray
        ``[s_1, ..., s_N]``.
    """
    differences = np.asarray(differences, dtype=np.float64)
    n = differences.shape[0] + 1
    values = np.empty(n, dtype=np.float64)
    values[-1] = anchor
    if n > 1:
        values[:-1] = anchor + np.cumsum(differences[::-1])[::-1]
    return values


# ======================================================================
# regression moments (the weighted-regression piecewise path)
# ======================================================================
def size_sum_closed_form(n: int, m: int, j: int) -> float:
    """``SB(M, j) = sum_s C(M, s - j) / C(N-2, s)`` in closed form.

    The Beta-integral identity behind every full-size telescoping sum
    here: substituting ``1/C(N-2, s) = (N-1) * Integral_0^1 x^s
    (1-x)^{N-2-s} dx`` and folding the binomial theorem gives::

        SB(M, j) = (N-1) * j! * (N-2-M-j)! / (N-1-M)!
                 = (N-1) * j! / ((N-1-M)(N-2-M) ... (N-1-M-j))

    valid for ``M + j <= N - 2`` (0 otherwise — the sum is then empty
    of well-defined terms).  ``M = N-i-1, j = a`` recovers Theorem 1's
    ``C(i-1, a) * SB = (N-1)/i`` for every position ``a``, which is how
    the classification totals collapse; the regression moments need the
    general ``(M, j)`` because each *farther* selected member carries
    its own rank ``r`` through ``M = N - r``.

    Evaluated as the falling product on the right — ``j + 1`` float
    multiplications, no big integers.
    """
    if j < 0 or m + j > n - 2:
        return 0.0
    num = float(math.factorial(j)) * (n - 1)
    den = 1.0
    for step in range(j + 1):
        den *= n - 1 - m - step
    return num / den


def _regression_check(n: int, k_neighbors: int, weight_table, y_sorted):
    table = _check_weight_table(k_neighbors, weight_table)
    y = np.asarray(y_sorted, dtype=np.float64)
    if y.ndim != 1 or y.shape[0] != n:
        raise ParameterError(
            f"y_sorted must be a length-{n} vector, got shape {y.shape}"
        )
    return table, y


def weighted_knn_regression_pair_totals(
    n: int, k_neighbors: int, weight_table, y_sorted, t: float
) -> np.ndarray:
    """Closed-form eq (75) sums of the weighted KNN *regressor*.

    Returns ``totals`` of length ``n - 1`` with ``totals[i-1] = (N-1) *
    (s_i - s_{i+1})`` for the rank-only weighted KNN regression game
    ``v(S) = -(pred(S) - t)^2`` — the regression analog of
    :func:`weighted_knn_group_weight_totals`, in ``O(N * K^3)``.

    The regression marginal is not piecewise *constant*: with ``a``
    members of ``S`` nearer than rank ``i`` and ``m = min(K, |S|+1)``
    selected, ``v(S ∪ {i}) - v(S ∪ {i+1}) = -w_{a+1}(m) * (y_i -
    y_{i+1}) * (2R + w_{a+1}(m)(y_i + y_{i+1}) - 2t)`` where ``R`` is
    the weighted label sum of the *other* selected members.  ``R`` is
    linear in the labels, so the group sums only need first label
    moments: per (position, selected count) group, binomial-weighted
    prefix sums of ``y`` (the ``F``/``H``/``J`` Pascal recursions
    below) replace the coalition counts of the classification case.
    The full-size telescoping closes through
    :func:`size_sum_closed_form`; coalitions of size ``<= K-2`` get the
    same saturated-to-true weight-table correction as the
    classification totals.

    Every moment column is a binomial-kernel correlation ``sum_r g(r)
    C(r - x, u)`` — an ``(u+1)``-fold repeated prefix/suffix cumsum
    (hockey-stick identity) — so the whole computation is ``O(K^2)``
    numpy passes of length ``N`` with no per-rank Python loop.
    """
    table, y = _regression_check(n, k_neighbors, weight_table, y_sorted)
    if n < 2:
        raise ParameterError(f"need at least two players, got {n}")
    t = float(t)
    k = k_neighbors
    ws = table[k - 1]  # saturated weights w_q(K)
    km1 = k - 1
    n_small = min(k - 1, n - 1)  # corrected sizes s = 0 .. n_small - 1

    ii = np.arange(1, n)  # pair ranks i = 1..N-1
    i_arr = ii.astype(np.float64)
    r_arr = np.arange(1.0, n + 1.0)  # ranks r = 1..N
    dy = y[:-1] - y[1:]
    ysum = y[:-1] + y[1:]
    pad = np.zeros(km1 + 2)

    # ---- farther-member moment columns (suffix cumsums) -------------
    # h_cols[u, j][i-1] = sum_{r >= i+2} y_r C(r-i-2, u) SB(N-r, j):
    # the (u+1)-fold suffix cumsum of y_r*SB(N-r, j), read at i+2+u.
    h_cols: dict = {}
    jj_cols: dict = {}
    if km1 > 0:
        fact_j = 1.0
        for j in range(1, k):
            fact_j *= j
            # SB(N-r, j) = (N-1) j! / ((r-1)(r-2)...(r-1-j)), 0 invalid
            denom = np.ones(n)
            for m in range(j + 1):
                denom = denom * (r_arr - 1.0 - m)
            sb = np.where(
                denom != 0.0,
                (n - 1.0) * fact_j / np.where(denom != 0.0, denom, 1.0),
                0.0,
            )
            s = y * sb
            for u in range(km1):
                s = np.cumsum(s[::-1])[::-1]
                h_cols[u, j] = np.concatenate((s, pad))[ii + 1 + u]
        # jj_cols[u, c]: same with plain C(N-r, c) in place of SB
        for c in range(n_small):
            s = y * falling_binomial(n - r_arr, c)
            for u in range(n_small):
                s = np.cumsum(s[::-1])[::-1]
                jj_cols[u, c] = np.concatenate((s, pad))[ii + 1 + u]

    # ---- nearer-member moment columns (prefix cumsums) --------------
    # f_cols[q, c][i-1] = sum_{r <= i-1} y_r C(r-1, q-1) C(i-1-r, c):
    # the (c+1)-fold prefix cumsum of y_r*C(r-1, q-1), read at i-1-c.
    f_cols: dict = {}
    if km1 > 0:
        for q in range(1, k):
            s = y * falling_binomial(r_arr - 1.0, q - 1)
            for c in range(km1):
                s = np.cumsum(s)
                idx = ii - 2 - c
                vec = np.zeros(n - 1)
                mask = idx >= 0
                vec[mask] = s[idx[mask]]
                f_cols[q, c] = vec

    # ---- per-position aggregates over all pairs at once -------------
    far_full = np.zeros((k, n - 1))
    near_sat = np.zeros((k, n - 1))
    for a in range(k):
        for qp in range(1, k - a):
            far_full[a] += ws[a + qp] * h_cols[qp - 1, a + qp]
        for q in range(1, a + 1):
            near_sat[a] += ws[q - 1] * f_cols[q, a - q]

    # ---- assembly ---------------------------------------------------
    totals = np.zeros(n - 1)
    # full (saturated-weight) part, telescoped over all sizes
    fact_a = 1.0
    denom = np.ones(n - 1)
    for a in range(k):
        if a > 0:
            fact_a *= a
        denom = denom * (i_arr - a)  # i(i-1)...(i-a) after this step
        # SB(N-i-1, a) = (N-1) a! / (i(i-1)...(i-a)), 0 when i <= a
        sb_i = np.where(
            denom != 0.0,
            (n - 1.0) * fact_a / np.where(denom != 0.0, denom, 1.0),
            0.0,
        )
        cia = falling_binomial(i_arr - 1.0, a)
        bracket = (
            ((n - 1.0) / i_arr) * (ws[a] * ysum - 2.0 * t)
            + 2.0 * sb_i * near_sat[a]
            + 2.0 * cia * far_full[a]
        )
        totals -= np.where(ii >= a + 1, ws[a] * dy * bracket, 0.0)
    # small-coalition corrections: swap w_q(K) -> w_q(s+1).  Positions
    # a > i-1 self-cancel (every factor carries a vanished C(i-1, a)
    # or an empty nearer-member moment), so no extra mask is needed.
    for s_sz in range(n_small):
        inv_binom = 1.0 / math.comb(n - 2, s_sz)
        for a in range(s_sz + 1):
            cia = falling_binomial(i_arr - 1.0, a)
            cnia = falling_binomial(n - 1.0 - i_arr, s_sz - a)
            cnt = cia * cnia
            near_t = np.zeros(n - 1)
            near_s = np.zeros(n - 1)
            for q in range(1, a + 1):
                fv = f_cols[q, a - q]
                near_t += table[s_sz, q - 1] * fv
                near_s += ws[q - 1] * fv
            ctf = np.zeros(n - 1)
            csf = np.zeros(n - 1)
            for qp in range(1, s_sz - a + 1):
                jv = jj_cols[qp - 1, s_sz - a - qp]
                ctf += table[s_sz, a + qp] * jv
                csf += ws[a + qp] * jv
            true_term = table[s_sz, a] * (
                (table[s_sz, a] * ysum - 2.0 * t) * cnt
                + 2.0 * (cnia * near_t + cia * ctf)
            )
            sat_term = ws[a] * (
                (ws[a] * ysum - 2.0 * t) * cnt
                + 2.0 * (cnia * near_s + cia * csf)
            )
            totals -= dy * inv_binom * (true_term - sat_term)
    return totals


def weighted_knn_regression_anchor(
    n: int, k_neighbors: int, weight_table, y_sorted, t: float
) -> float:
    """Close the eq (74) anchor of the rank-only weighted regressor.

    Averages ``v(S ∪ {N}) - v(S)`` over all coalition sizes ``c <=
    K-1``.  Writing ``D = pred(S ∪ {N}) - pred(S)`` and ``P = pred(S)``
    the marginal is ``-D * (D + 2P - 2t)`` — quadratic in the labels,
    so beyond the first moments ``M1(c, q) = sum_S y_{sigma_q}`` it
    needs the *second* moments ``M2(c, q, q') = sum_S y_{sigma_q}
    y_{sigma_q'}``: the diagonal carries ``sum y_r^2`` prefix sums and
    the off-diagonal a between-ranks Pascal recursion ``W``.
    ``O(N * K^3)`` total.
    """
    table, y = _regression_check(n, k_neighbors, weight_table, y_sorted)
    t = float(t)
    k = k_neighbors
    if n == 1:
        return -((table[0, 0] * y[0] - t) ** 2) + t**2
    y_n = y[n - 1]
    y_head = y[: n - 1]
    cmax = min(k, n) - 1  # largest incumbent count with q >= 1
    total = 0.0
    if cmax >= 1:
        r = np.arange(1.0, n, dtype=np.float64)  # ranks 1..N-1
        # cl[:, q-1] = C(r-1, q-1); cr[:, j] = C(N-1-r, j)
        cl = np.stack(
            [falling_binomial(r - 1.0, q - 1) for q in range(1, cmax + 1)],
            axis=1,
        )
        cr = np.stack(
            [falling_binomial(n - 1.0 - r, j) for j in range(cmax)], axis=1
        )
        # m1[q-1, j] = sum_r y_r C(r-1,q-1) C(N-1-r, j); m2d with y^2
        m1 = np.einsum("r,rq,rj->qj", y_head, cl, cr)
        m2d = np.einsum("r,rq,rj->qj", y_head**2, cl, cr)
        # w_t[r'-1, q-1, u] = sum_{r < r'} y_r C(r-1,q-1) C(r'-r-1, u)
        m2o = None
        if cmax >= 2:
            w_t = np.zeros((n - 1, cmax, cmax - 1))
            for rp in range(2, n):  # build row r' from row r'-1
                w_t[rp - 1, :, 1:] = (
                    w_t[rp - 2, :, 1:] + w_t[rp - 2, :, :-1]
                )
                w_t[rp - 1, :, 0] = (
                    w_t[rp - 2, :, 0] + y[rp - 2] * cl[rp - 2]
                )
            # m2o[q-1, u, j] = sum_r' y_r' C(N-1-r', j) w_t[r', q, u]
            m2o = np.einsum("r,rj,rqu->quj", y_head, cr, w_t)
    for c in range(0, min(k, n)):
        w_new_self = table[c, c]  # w_{c+1}(c+1)
        wn = w_new_self * y_n
        inv_binom = 1.0 / math.comb(n - 1, c)
        level = math.comb(n - 1, c) * wn * (wn - 2.0 * t)
        if c >= 1:
            w_new = table[c, :c]  # w_q(c+1), q = 1..c
            w_old = table[c - 1, :c]  # w_q(c)
            delta = w_new - w_old
            a_coef = w_new + w_old
            m1_c = np.array([m1[q - 1, c - q] for q in range(1, c + 1)])
            m2d_c = np.array([m2d[q - 1, c - q] for q in range(1, c + 1)])
            level += float(np.dot(delta * a_coef, m2d_c))
            for q in range(1, c + 1):
                for qp in range(q + 1, c + 1):
                    cross = m2o[q - 1, qp - q - 1, c - qp]
                    level += (
                        delta[q - 1] * a_coef[qp - 1]
                        + delta[qp - 1] * a_coef[q - 1]
                    ) * cross
            level += wn * float(np.dot(a_coef, m1_c))
            level += (wn - 2.0 * t) * float(np.dot(delta, m1_c))
        total -= inv_binom * level
    return total / n
