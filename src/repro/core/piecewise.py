"""The piecewise utility-difference framework (Appendix F).

All the efficient algorithms in this library exploit one structural
property: for a pair of players ``i, j`` the utility difference
``v(S ∪ {i}) - v(S ∪ {j})`` takes only ``T`` distinct values over all
coalitions ``S``, partitioned into groups ``S_1 .. S_T`` with constants
``C_1 .. C_T``.  Lemma 1 then turns the Shapley difference into a
*counting* problem::

    s_i - s_j = (1/(N-1)) * sum_t C_t *
                sum_k |{S in S_t : |S| = k}| / C(N-2, k)

This module provides that counting machinery in reusable form plus the
closed-form group-size counts for the unweighted KNN classifier
(``T = 1``), which is how Theorem 1's ``min(K, i)/i`` factor arises:

    sum_k ( sum_{m <= min(K-1, k)} C(i-1, m) C(N-i-1, k-m) ) / C(N-2, k)
        = min(K, i) * (N - 1) / i

It also provides :func:`chain_values_from_differences`, the generic
"anchor plus telescoping differences" step shared by every recursion in
:mod:`repro.core`.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "shapley_difference_from_groups",
    "knn_group_count",
    "knn_group_weight_closed_form",
    "chain_values_from_differences",
]


def shapley_difference_from_groups(
    n: int,
    constants: Sequence[float],
    group_sizes: Sequence[Callable[[int], float]],
) -> float:
    """Evaluate Lemma 1 for a piecewise utility difference.

    Parameters
    ----------
    n:
        Number of players.
    constants:
        The ``C_t`` constants, one per group.
    group_sizes:
        For each group ``t``, a callable ``k -> |{S in S_t : |S| = k}|``
        counting coalitions of each size in the group.

    Returns
    -------
    float
        ``s_i - s_j`` per eq (31).
    """
    if len(constants) != len(group_sizes):
        raise ParameterError(
            "constants and group_sizes must have equal length; got "
            f"{len(constants)} and {len(group_sizes)}"
        )
    if n < 2:
        raise ParameterError(f"need at least two players, got {n}")
    total = 0.0
    for c_t, count_fn in zip(constants, group_sizes):
        inner = 0.0
        for k in range(n - 1):  # |S| ranges over 0 .. N-2
            inner += count_fn(k) / math.comb(n - 2, k)
        total += c_t * inner
    return total / (n - 1)


def knn_group_count(n: int, i: int, k_neighbors: int, size: int) -> int:
    """Size-``size`` coalitions where rank-``i``'s marginal is "live".

    For the unweighted KNN classifier and the adjacent pair
    ``(alpha_i, alpha_{i+1})`` (1-based rank ``i``), the single group
    ``S_1`` of Appendix F contains the coalitions with fewer than K
    members nearer than rank ``i``::

        |{S in S_1 : |S| = size}| =
            sum_{m=0}^{min(K-1, size)} C(i-1, m) * C(N-i-1, size-m)

    (``m`` counts members nearer than rank i; the rest must be farther
    than rank i+1.)
    """
    if not 1 <= i <= n - 1:
        raise ParameterError(f"rank i must lie in [1, {n - 1}], got {i}")
    total = 0
    for m in range(0, min(k_neighbors - 1, size) + 1):
        if m > i - 1 or size - m > n - i - 1:
            continue
        total += math.comb(i - 1, m) * math.comb(n - i - 1, size - m)
    return total


def knn_group_weight_closed_form(n: int, i: int, k_neighbors: int) -> float:
    """The binomial-identity closed form ``min(K, i) * (N - 1) / i``.

    Equals ``sum_k knn_group_count(n, i, K, k) / C(N-2, k)`` — eq (13)
    of the paper.  The test suite asserts this identity exhaustively.
    """
    if not 1 <= i <= n - 1:
        raise ParameterError(f"rank i must lie in [1, {n - 1}], got {i}")
    return min(k_neighbors, i) * (n - 1) / i


def chain_values_from_differences(
    anchor: float, differences: np.ndarray
) -> np.ndarray:
    """Reconstruct a value vector from its anchor and adjacent differences.

    Parameters
    ----------
    anchor:
        The value of the *last* element, ``s_N``.
    differences:
        ``differences[p] = s_{p+1} - s_{p+2}`` (1-based ranks), length
        ``N - 1``.

    Returns
    -------
    numpy.ndarray
        ``[s_1, ..., s_N]``.
    """
    differences = np.asarray(differences, dtype=np.float64)
    n = differences.shape[0] + 1
    values = np.empty(n, dtype=np.float64)
    values[-1] = anchor
    if n > 1:
        values[:-1] = anchor + np.cumsum(differences[::-1])[::-1]
    return values
