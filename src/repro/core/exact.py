"""Exact Shapley values for the unweighted KNN classifier (Theorem 1).

The paper's headline result: for the KNN utility of eq (5), the Shapley
value of every training point follows a two-term recursion over the
distance ranking.  Sorting dominates, so the whole computation is
O(N log N) per test point — an exponential improvement over the
O(2^N) definition.

With training points re-indexed so that ``alpha_i`` is the i-th nearest
neighbor of the test point::

    s_{alpha_N} = 1[y_{alpha_N} = y_test] / N
    s_{alpha_i} = s_{alpha_{i+1}}
                  + (1[y_{alpha_i} = y_test] - 1[y_{alpha_{i+1}} = y_test]) / K
                    * min(K, i) / i

For several test points, the additivity property makes the multi-test
Shapley value the average of single-test values (eq 8 / Algorithm 1).

This module is a thin wrapper over the shared ``exact`` kernel in
:mod:`repro.core.kernels` — the recursion itself lives there, once,
behind the same :class:`~repro.core.kernels.RankPlan` interface every
other theorem uses.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..knn.search import argsort_by_distance
from ..types import Dataset, ValuationResult
from .kernels import RankPlan, classification_rank_values, get_kernel

__all__ = ["exact_knn_shapley", "exact_knn_shapley_from_order", "knn_shapley_single_test"]


def exact_knn_shapley_from_order(
    order: np.ndarray,
    y_train: np.ndarray,
    y_test: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Theorem 1 given a precomputed distance ranking.

    Parameters
    ----------
    order:
        Shape ``(n_test, n_train)``; row ``j`` lists training indices
        from nearest to farthest from test point ``j``.
    y_train, y_test:
        Labels.
    k:
        The K of KNN.

    Returns
    -------
    (values, per_test):
        ``values`` is the test-averaged Shapley value per training
        point, shape ``(n_train,)``.  ``per_test`` has shape
        ``(n_test, n_train)`` with the single-test values (in original
        training index order).
    """
    plan = RankPlan.from_order(order, y_train, y_test)
    per_test = get_kernel("exact").values_from_plan(plan, k)
    return per_test.mean(axis=0), per_test


def exact_knn_shapley(
    dataset: Dataset, k: int, metric: str = "euclidean"
) -> ValuationResult:
    """Exact Shapley values for an unweighted KNN classifier (Algorithm 1).

    Complexity: one O(N d + N log N) ranking per test point, then an
    O(N) recursion.

    Parameters
    ----------
    dataset:
        Training and test data; labels are class labels.
    k:
        The K of KNN.
    metric:
        Distance metric name.

    Returns
    -------
    ValuationResult
        ``values[i]`` is the Shapley value of training point ``i``
        under the multi-test KNN utility (eq 8).  ``extra['per_test']``
        holds the per-test value matrix.
    """
    order, _ = argsort_by_distance(dataset.x_test, dataset.x_train, metric=metric)
    values, per_test = exact_knn_shapley_from_order(
        order, dataset.y_train, dataset.y_test, k
    )
    return ValuationResult(
        values=values,
        method="exact",
        extra={"k": k, "metric": metric, "per_test": per_test},
    )


def knn_shapley_single_test(
    y_sorted: np.ndarray, y_test: object, k: int
) -> np.ndarray:
    """Theorem 1 for one test point, labels already sorted by distance.

    A minimal entry point useful for streaming settings where the
    caller maintains its own ranking.  Returns values in rank space.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    y_sorted = np.asarray(y_sorted)
    match = (y_sorted == y_test).astype(np.float64)[None, :]
    return classification_rank_values(match, k)[0]
