"""Closed-form Shapley values for the composite game (Theorems 9-12).

The composite game (eq 28) adds one more player to the data-only game:
the *analyst* who contributes computation.  A coalition has value only
if it contains the analyst **and** at least one seller.  The paper shows
the sellers' values keep the recursion-over-ranks structure with
modified combinatorial coefficients, and the analyst's value follows
from group rationality::

    s_C = v(I) - sum_i s_i

Each data point's composite value is strictly smaller than its
data-only value (eqs 88-89 bound the ratio by 1/2) — the analyst
captures at least half of the total utility.

Player ordering in every result: training points (or sellers) first,
the analyst last — matching
:class:`repro.utility.composite.CompositeUtility`.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from ..exceptions import ParameterError
from ..knn.search import argsort_by_distance
from ..types import Dataset, GroupedDataset, ValuationResult
from ..utility.base import UtilityFunction
from ..utility.weighted_utility import (
    WeightedKNNClassificationUtility,
    WeightedKNNRegressionUtility,
)
from .grouped import _rank_of

__all__ = [
    "composite_knn_shapley",
    "composite_knn_regression_shapley",
    "composite_weighted_knn_shapley",
    "composite_grouped_knn_shapley",
]


# ----------------------------------------------------------------------
# Theorem 9: unweighted KNN classification
# ----------------------------------------------------------------------
def composite_knn_shapley(
    dataset: Dataset, k: int, metric: str = "euclidean"
) -> ValuationResult:
    """Composite-game Shapley values, unweighted KNN classifier (Thm 9).

    With ranks sorted by distance::

        s_{alpha_N} = (min(N, K) + 1) / (2 (N+1) N) * 1[y_{alpha_N} = y_test]
        s_{alpha_i} = s_{alpha_{i+1}}
                      + (1[y_i = y] - 1[y_{i+1} = y]) / K
                        * min(i, K) (min(i, K) + 1) / (2 i (i+1))
        s_C         = v(I) - sum_i s_i

    Returns one value per training point plus the analyst (last).
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    order, _ = argsort_by_distance(dataset.x_test, dataset.x_train, metric=metric)
    n_test, n = order.shape
    match = (dataset.y_train[order] == dataset.y_test[:, None]).astype(np.float64)

    s_rank = np.empty((n_test, n), dtype=np.float64)
    # Data-only anchor 1[match]*min(K,N)/(NK) times the eq (88) ratio
    # (min(N,K)+1)/(2(N+1)); reduces to eq (85) when K < N.
    mkn = min(n, k)
    s_rank[:, -1] = match[:, -1] * mkn * (mkn + 1) / (2.0 * (n + 1) * n * k)
    if n > 1:
        i = np.arange(1, n, dtype=np.float64)
        mik = np.minimum(i, float(k))
        factors = mik * (mik + 1.0) / (2.0 * i * (i + 1.0)) / k
        diffs = (match[:, :-1] - match[:, 1:]) * factors[None, :]
        tail = np.cumsum(diffs[:, ::-1], axis=1)[:, ::-1]
        s_rank[:, :-1] = tail + s_rank[:, -1:]

    per_test = np.empty_like(s_rank)
    np.put_along_axis(per_test, order, s_rank, axis=1)
    point_values = per_test.mean(axis=0)
    grand = float(match[:, : min(k, n)].sum(axis=1).mean() / k)
    analyst = grand - float(point_values.sum())
    return ValuationResult(
        values=np.append(point_values, analyst),
        method="composite-exact",
        extra={"k": k, "grand_utility": grand, "per_test": per_test},
    )


# ----------------------------------------------------------------------
# Theorem 10: unweighted KNN regression
# ----------------------------------------------------------------------
def _composite_regression_single(y: np.ndarray, t: float, k: int) -> np.ndarray:
    """Theorem 10 recursion for one test point, rank space."""
    n = y.shape[0]
    s = np.empty(n, dtype=np.float64)
    if n == 1:
        # Two-player game {point, analyst}: the point's value is half
        # the marginal it creates with the analyst present, and the
        # analyst-only coalition is worth 0 by eq (28).
        s[0] = -0.5 * (y[0] / k - t) ** 2
        return s

    total = float(y.sum())
    s[-1] = (
        -1.0
        / (k * (n + 1))
        * y[-1]
        * (
            (k + 2.0) * (k - 1.0) / (2.0 * n) * (y[-1] / k - 2.0 * t)
            + 2.0 * (k - 1.0) * (k + 1.0) / (3.0 * n * (n - 1.0)) * (total - y[-1])
        )
        - (1.0 / (n * (n + 1.0))) * (y[-1] / k - t) ** 2
    )

    i = np.arange(1, n, dtype=np.float64)
    min_k1i = np.minimum(float(k + 1), i + 1.0)
    min_ki = np.minimum(float(k), i)
    min_km1 = np.minimum(float(k - 1), i - 1.0)

    u1 = ((y[:-1] + y[1:]) / k - 2.0 * t) * min_k1i * min_ki / (2.0 * i * (i + 1.0))

    prefix = np.concatenate(([0.0], np.cumsum(y)[:-1]))
    p_im1 = prefix[0 : n - 1]
    prefix_coeff = np.where(
        i > 1.0,
        2.0 * min_k1i * min_ki * min_km1 / (3.0 * np.maximum(i - 1.0, 1.0) * i * (i + 1.0)),
        0.0,
    )

    w = np.zeros(n + 1, dtype=np.float64)
    ell = np.arange(3, n + 1, dtype=np.float64)
    w[3:] = (
        2.0
        * np.minimum(float(k + 1), ell)
        * np.minimum(float(k), ell - 1.0)
        * np.minimum(float(k - 1), ell - 2.0)
        / (3.0 * ell * (ell - 1.0) * (ell - 2.0))
    )
    wy = w[1:] * y
    suffix = np.concatenate((np.cumsum(wy[::-1])[::-1], [0.0]))
    t_suffix = suffix[2 : n + 1]

    deltas = (y[1:] - y[:-1]) / k * (u1 + (p_im1 * prefix_coeff + t_suffix) / k)
    tail = np.cumsum(deltas[::-1])[::-1]
    s[:-1] = s[-1] + tail
    return s


def composite_knn_regression_shapley(
    dataset: Dataset, k: int, metric: str = "euclidean"
) -> ValuationResult:
    """Composite-game Shapley values, unweighted KNN regressor (Thm 10).

    Requires ``n_train > K`` (the closed form of eq 90 assumes the
    farthest point sits beyond the K-th rank).
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    if dataset.n_train <= k and dataset.n_train > 1:
        raise ParameterError(
            "composite regression closed form requires n_train > k "
            f"(got n_train={dataset.n_train}, k={k})"
        )
    order, _ = argsort_by_distance(dataset.x_test, dataset.x_train, metric=metric)
    n_test, n = order.shape
    y_train = np.asarray(dataset.y_train, dtype=np.float64)
    y_test = np.asarray(dataset.y_test, dtype=np.float64)
    per_test = np.empty((n_test, n), dtype=np.float64)
    grand_total = 0.0
    for j in range(n_test):
        y_sorted = y_train[order[j]]
        per_test[j, order[j]] = _composite_regression_single(
            y_sorted, float(y_test[j]), k
        )
        pred = y_sorted[: min(k, n)].sum() / k
        grand_total += -((pred - float(y_test[j])) ** 2)
    grand = grand_total / n_test
    point_values = per_test.mean(axis=0)
    analyst = grand - float(point_values.sum())
    return ValuationResult(
        values=np.append(point_values, analyst),
        method="composite-exact-regression",
        extra={"k": k, "grand_utility": grand, "per_test": per_test},
    )


# ----------------------------------------------------------------------
# Theorem 11: weighted KNN
# ----------------------------------------------------------------------
def _composite_pad_weight(n: int, k: int, rmax: int) -> float:
    """``sum_{k'=K-1}^{N-2} C(N - rmax, k' - K + 1) / C(N-1, k' + 1)``."""
    avail = n - rmax
    total = 0.0
    for pad in range(avail + 1):
        kk = k - 1 + pad
        if kk > n - 2:
            break
        total += math.comb(avail, pad) / math.comb(n - 1, kk + 1)
    return total


def _composite_weighted_single_test(utility, test_index: int) -> np.ndarray:
    """Theorem 11 for one test point; values in original index order."""
    n = utility.n_players
    k = utility.k
    order = utility.order[test_index]
    value_cache: dict[tuple[int, ...], float] = {}

    def v(rank_members: tuple[int, ...]) -> float:
        # In the composite game the coalition behind an empty data set
        # is {analyst}, whose value is 0 by eq (28) — NOT the data-only
        # v(∅) (which is -t^2 for regression utilities).
        if not rank_members:
            return 0.0
        cached = value_cache.get(rank_members)
        if cached is None:
            members = order[np.asarray(rank_members, dtype=np.intp) - 1]
            cached = utility.per_test_value(np.sort(members), test_index)
            value_cache[rank_members] = cached
        return cached

    s_rank = np.empty(n, dtype=np.float64)
    if n == 1:
        s_rank[0] = 0.5 * (v((1,)) - v(()))
        values = np.empty(1)
        values[order] = s_rank
        return values

    # anchor (eq 93)
    others = range(1, n)
    total = 0.0
    for size in range(0, k):
        inv_binom = 1.0 / math.comb(n, size + 1)
        level = 0.0
        for combo in itertools.combinations(others, size):
            with_n = tuple(sorted(combo + (n,)))
            level += v(with_n) - v(combo)
        total += inv_binom * level
    s_rank[n - 1] = total / (n + 1)

    # recursion (eq 94)
    pool = list(range(1, n + 1))
    for i in range(n - 1, 0, -1):
        rest = [r for r in pool if r != i and r != i + 1]
        acc = 0.0
        for size in range(0, max(0, k - 1)):
            inv_binom = 1.0 / math.comb(n - 1, size + 1)
            level = 0.0
            for combo in itertools.combinations(rest, size):
                si = tuple(sorted(combo + (i,)))
                sj = tuple(sorted(combo + (i + 1,)))
                level += v(si) - v(sj)
            acc += inv_binom * level
        if n - 2 >= k - 1:
            for combo in itertools.combinations(rest, k - 1):
                rmax = max(combo + (i + 1,))
                si = tuple(sorted(combo + (i,)))
                sj = tuple(sorted(combo + (i + 1,)))
                diff = v(si) - v(sj)
                if diff != 0.0:
                    acc += _composite_pad_weight(n, k, rmax) * diff
        s_rank[i - 1] = s_rank[i] + acc / n

    values = np.empty(n, dtype=np.float64)
    values[order] = s_rank
    return values


def composite_weighted_knn_shapley(
    dataset: Dataset,
    k: int,
    weights: str = "inverse_distance",
    task: str = "classification",
    metric: str = "euclidean",
) -> ValuationResult:
    """Composite-game Shapley values for weighted KNN (Theorem 11).

    Same enumeration cost as the data-only Theorem 7 (O(N^K)), with the
    composite coefficient table.  Returns training points + analyst.
    """
    if task == "classification":
        utility = WeightedKNNClassificationUtility(
            dataset, k, weights=weights, metric=metric
        )
    elif task == "regression":
        utility = WeightedKNNRegressionUtility(
            dataset, k, weights=weights, metric=metric
        )
    else:
        raise ParameterError(
            f"task must be 'classification' or 'regression', got {task!r}"
        )
    n_test = dataset.n_test
    per_test = np.empty((n_test, dataset.n_train), dtype=np.float64)
    grand_total = 0.0
    all_members = np.arange(dataset.n_train, dtype=np.intp)
    for j in range(n_test):
        per_test[j] = _composite_weighted_single_test(utility, j)
        grand_total += utility.per_test_value(all_members, j)
    grand = grand_total / n_test
    point_values = per_test.mean(axis=0)
    analyst = grand - float(point_values.sum())
    return ValuationResult(
        values=np.append(point_values, analyst),
        method="composite-exact-weighted",
        extra={"k": k, "task": task, "grand_utility": grand, "per_test": per_test},
    )


# ----------------------------------------------------------------------
# Theorem 12: multi-data-per-seller composite game
# ----------------------------------------------------------------------
def composite_grouped_knn_shapley(
    utility: UtilityFunction,
    grouped: GroupedDataset,
) -> ValuationResult:
    """Composite-game Shapley values per seller (Theorem 12).

    Identical configuration enumeration to Theorem 8 with the
    composite weights ``C(|G|, k) / C(M, |h(S)| + k + 1)`` and
    prefactor ``1/(M+1)``; the analyst again takes the remainder.
    """
    if not hasattr(utility, "per_test_value") or not hasattr(utility, "order"):
        raise ParameterError(
            "utility must be a KNN-family utility exposing per_test_value/order"
        )
    k = utility.k
    m = grouped.n_sellers
    n_test = int(utility.order.shape[0])
    per_test = np.empty((n_test, m), dtype=np.float64)
    grand_total = 0.0
    all_members = np.arange(grouped.dataset.n_train, dtype=np.intp)

    for jt in range(n_test):
        rank = _rank_of(utility, jt)
        seller_points = []
        nearest_rank = np.empty(m, dtype=np.int64)
        for s in range(m):
            pts = grouped.members(s)
            pts = pts[np.argsort(rank[pts], kind="stable")]
            seller_points.append(pts)
            nearest_rank[s] = rank[pts[0]]

        def topk_of(sellers: tuple[int, ...]) -> tuple[int, ...]:
            if not sellers:
                return ()
            pool = np.concatenate([seller_points[s][:k] for s in sellers])
            pool = pool[np.argsort(rank[pool], kind="stable")]
            return tuple(int(p) for p in pool[:k])

        configs: dict[tuple[int, ...], tuple[frozenset[int], int]] = {}
        for size in range(0, min(k, m) + 1):
            for sellers in itertools.combinations(range(m), size):
                cfg = topk_of(sellers)
                if cfg in configs:
                    continue
                owners = frozenset(int(grouped.groups[p]) for p in cfg)
                worst = int(rank[list(cfg)].max()) if cfg else -1
                configs[cfg] = (owners, worst)

        value_cache: dict[tuple[int, ...], float] = {}

        def v(cfg: tuple[int, ...]) -> float:
            # Empty data + analyst = coalition {analyst}, value 0 (eq 28).
            if not cfg:
                return 0.0
            cached = value_cache.get(cfg)
            if cached is None:
                cached = utility.per_test_value(
                    np.asarray(cfg, dtype=np.intp), jt
                )
                value_cache[cfg] = cached
            return cached

        for j in range(m):
            total = 0.0
            for cfg, (owners, worst) in configs.items():
                if j in owners:
                    continue
                with_j = topk_of(tuple(sorted(owners | {j})))
                diff = v(with_j) - v(cfg)
                if diff == 0.0:
                    continue
                if len(cfg) < k:
                    g_size = 0
                else:
                    g_size = int(
                        sum(
                            1
                            for s2 in range(m)
                            if s2 != j
                            and s2 not in owners
                            and nearest_rank[s2] > worst
                        )
                    )
                base_size = len(owners)
                weight = 0.0
                for pad in range(g_size + 1):
                    weight += math.comb(g_size, pad) / math.comb(
                        m, base_size + pad + 1
                    )
                total += weight * diff
            per_test[jt, j] = total / (m + 1)
        grand_total += v(tuple(int(p) for p in topk_of(tuple(range(m)))))

    # Grand utility is the base utility on the full training set.
    grand = grand_total / n_test
    seller_values = per_test.mean(axis=0)
    analyst = grand - float(seller_values.sum())
    return ValuationResult(
        values=np.append(seller_values, analyst),
        method="composite-exact-grouped",
        extra={"k": k, "grand_utility": grand, "per_test": per_test},
    )
