"""Truncated (epsilon, 0)-approximation of the KNN Shapley value (Theorem 2).

Because ``|s_{alpha_i}| <= min(1/i, 1/K)`` (Appendix C of the paper),
every training point beyond rank ``K* = max(K, ceil(1/epsilon))`` has a
Shapley value of magnitude at most ``epsilon``.  Setting those values to
zero and running the Theorem 1 recursion only over the first ``K* - 1``
ranks yields an (epsilon, 0)-approximation that preserves the exact
value *differences* — and therefore the exact ranking — among the K*
nearest neighbors.

This is the bridge to the LSH method: the problem reduces to retrieving
the K* nearest neighbors, which approximate indexes do in sublinear
time (Theorems 3-4).
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ParameterError
from ..knn.search import top_k
from ..types import Dataset, ValuationResult

__all__ = [
    "truncation_rank",
    "truncated_values_from_labels",
    "truncated_knn_shapley",
]


def truncation_rank(k: int, epsilon: float) -> int:
    """The rank ``K* = max(K, ceil(1/epsilon))`` of Theorem 2."""
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    if epsilon <= 0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    return max(k, math.ceil(1.0 / epsilon))


def truncated_values_from_labels(
    neighbor_labels: np.ndarray,
    y_test: object,
    k: int,
    k_star: int,
    n_train: int | None = None,
) -> np.ndarray:
    """Run the truncated recursion given the labels of ranked neighbors.

    Parameters
    ----------
    neighbor_labels:
        Labels of (at least the first ``k_star``) training points in
        ascending-distance order for one test point.  Fewer labels are
        accepted — the recursion then starts from the last available
        rank, which is what happens when an approximate index returns
        fewer than ``k_star`` candidates.
    y_test:
        The test label.
    k:
        The K of KNN.
    k_star:
        Truncation rank (ranks ``>= k_star`` get value 0).
    n_train:
        Total training-set size.  Only needed for the degenerate case
        ``k_star >= n_train`` where no rank is truncated: the recursion
        then anchors at the *exact* farthest-point value
        ``1[match] * min(K, N) / (N K)`` and reproduces Theorem 1
        exactly.  Defaults to "the labels are a strict prefix", i.e.
        ranks at and beyond ``k_star`` exist and are zeroed.

    Returns
    -------
    numpy.ndarray
        Approximate Shapley values in rank space, one per supplied
        label (zeros beyond rank ``k_star``).
    """
    labels = np.asarray(neighbor_labels)
    n = labels.shape[0]
    values = np.zeros(n, dtype=np.float64)
    if n == 0:
        return values
    match = (labels == y_test).astype(np.float64)
    if n_train is not None and k_star >= n_train and n == n_train:
        # Nothing is truncated: anchor exactly (Theorem 1).
        running = float(match[-1]) * min(k, n_train) / (n_train * k)
        values[-1] = running
        start = n - 1
    else:
        # s_{alpha_i} = 0 for ranks >= k_star; recurse below them.
        running = 0.0
        start = min(k_star - 1, n - 1)
    for i in range(start, 0, -1):  # i is the 1-based rank of alpha_i
        running += (match[i - 1] - match[i]) / k * min(k, i) / i
        values[i - 1] = running
    return values


def truncated_knn_shapley(
    dataset: Dataset,
    k: int,
    epsilon: float,
    metric: str = "euclidean",
) -> ValuationResult:
    """(epsilon, 0)-approximate Shapley values via truncation (Theorem 2).

    Retrieves only the ``K*`` nearest neighbors per test point (via
    ``argpartition``, so no full sort) and runs the truncated recursion.
    All other training points receive value exactly 0, which Theorem 2
    shows is within ``epsilon`` of their true value.

    Returns
    -------
    ValuationResult
        ``extra['k_star']`` records the truncation rank.
    """
    k_star = truncation_rank(k, epsilon)
    n = dataset.n_train
    idx, _ = top_k(dataset.x_test, dataset.x_train, min(k_star, n), metric=metric)
    per_test = np.zeros((dataset.n_test, n), dtype=np.float64)
    for j in range(dataset.n_test):
        vals = truncated_values_from_labels(
            dataset.y_train[idx[j]], dataset.y_test[j], k, k_star, n_train=n
        )
        per_test[j, idx[j]] = vals
    values = per_test.mean(axis=0)
    return ValuationResult(
        values=values,
        method="truncated",
        extra={"k": k, "epsilon": epsilon, "k_star": k_star, "per_test": per_test},
    )
