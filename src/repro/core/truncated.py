"""Truncated (epsilon, 0)-approximation of the KNN Shapley value (Theorem 2).

Because ``|s_{alpha_i}| <= min(1/i, 1/K)`` (Appendix C of the paper),
every training point beyond rank ``K* = max(K, ceil(1/epsilon))`` has a
Shapley value of magnitude at most ``epsilon``.  Setting those values to
zero and running the Theorem 1 recursion only over the first ``K* - 1``
ranks yields an (epsilon, 0)-approximation that preserves the exact
value *differences* — and therefore the exact ranking — among the K*
nearest neighbors.

This is the bridge to the LSH method: the problem reduces to retrieving
the K* nearest neighbors, which approximate indexes do in sublinear
time (Theorems 3-4).

The recursion itself lives in the shared ``truncated`` kernel of
:mod:`repro.core.kernels`; this module re-exports the rank-space
entry points under their historical names and provides the
single-shot dataset API.
"""

from __future__ import annotations

from ..knn.search import top_k
from ..types import Dataset, ValuationResult
from .kernels import (
    RankPlan,
    get_kernel,
    truncated_rank_values,
    truncation_rank,
)

__all__ = [
    "truncation_rank",
    "truncated_values_from_labels",
    "truncated_knn_shapley",
]

#: Historical name of :func:`repro.core.kernels.truncated_rank_values`.
truncated_values_from_labels = truncated_rank_values


def truncated_knn_shapley(
    dataset: Dataset,
    k: int,
    epsilon: float,
    metric: str = "euclidean",
) -> ValuationResult:
    """(epsilon, 0)-approximate Shapley values via truncation (Theorem 2).

    Retrieves only the ``K*`` nearest neighbors per test point (via
    ``argpartition``, so no full sort) and runs the truncated recursion.
    All other training points receive value exactly 0, which Theorem 2
    shows is within ``epsilon`` of their true value.

    Returns
    -------
    ValuationResult
        ``extra['k_star']`` records the truncation rank.
    """
    k_star = truncation_rank(k, epsilon)
    n = dataset.n_train
    idx, _ = top_k(dataset.x_test, dataset.x_train, min(k_star, n), metric=metric)
    plan = RankPlan.from_order(idx, dataset.y_train, dataset.y_test)
    per_test = get_kernel("truncated").values_from_plan(
        plan, k, k_star=k_star, exact_anchor=True
    )
    values = per_test.mean(axis=0)
    return ValuationResult(
        values=values,
        method="truncated",
        extra={"k": k, "epsilon": epsilon, "k_star": k_star, "per_test": per_test},
    )
