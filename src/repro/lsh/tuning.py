"""LSH parameter selection, following Section 6.1 of the paper.

Three parameters govern the index: the projection width ``r``, the code
length ``m`` (hash functions per table), and the table count ``l``.
The paper's procedure, reproduced here:

* ``r`` — grid search minimizing the complexity exponent ``g(C_K*)``
  (Figure 10b shows ``g`` is insensitive to ``r`` past a point; we pick
  the minimizer over a small grid).
* ``m`` — ``m = alpha * log N / log(1 / f_h(D_mean))`` (Gionis et al.),
  which keeps the expected number of random collisions per bucket
  roughly constant as N grows.  With data normalized to
  ``D_mean = 1``, ``f_h(D_mean) = f_h(1)``.
* ``l`` — from Theorem 3: ``l >= p_nn^{-m} * log(K/delta)`` tables make
  the miss probability of any of the K* neighbors at most ``delta``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from ..exceptions import ParameterError
from .contrast import ContrastEstimate, g_exponent
from .pstable import collision_probability

__all__ = [
    "LSHParameters",
    "choose_width",
    "choose_n_bits",
    "choose_n_tables",
    "tune_lsh",
    "retune_lsh",
    "DEFAULT_WIDTH_GRID",
]

#: Width grid used by :func:`choose_width`; spans the region where
#: ``f_h(1)`` moves from ~0.2 to ~0.95 (the useful range in practice).
DEFAULT_WIDTH_GRID: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0)


@dataclass(frozen=True)
class LSHParameters:
    """A complete, buildable LSH configuration.

    Attributes
    ----------
    width, n_bits, n_tables:
        The ``r``, ``m`` and ``l`` of the index.
    g:
        The complexity exponent ``g(C_K*)`` at the chosen width.
    contrast:
        The contrast estimate the tuning was based on.
    """

    width: float
    n_bits: int
    n_tables: int
    g: float
    contrast: ContrastEstimate


def choose_width(
    contrast: float, grid: tuple[float, ...] = DEFAULT_WIDTH_GRID
) -> tuple[float, float]:
    """Pick the width minimizing ``g(C)`` over a grid.

    Returns ``(width, g)``.  Widths yielding degenerate collision
    probabilities are skipped.
    """
    best: tuple[float, float] | None = None
    for r in grid:
        try:
            g = g_exponent(contrast, r)
        except ParameterError:
            continue
        if best is None or g < best[1]:
            best = (r, g)
    if best is None:
        raise ParameterError(
            f"no width in grid {grid} gives usable collision probabilities"
        )
    return best


def choose_n_bits(n: int, width: float, alpha: float = 1.0) -> int:
    """Code length ``m = ceil(alpha * ln N / ln(1/f_h(1)))``.

    Makes the expected number of colliding random points per bucket
    about ``N^{1-alpha}``; ``alpha = 1`` targets O(1) random collisions.
    """
    if n <= 1:
        raise ParameterError(f"n must exceed 1, got {n}")
    if alpha <= 0:
        raise ParameterError(f"alpha must be positive, got {alpha}")
    p_rand = collision_probability(1.0, width)
    if not 0 < p_rand < 1:
        raise ParameterError(f"width {width} gives degenerate f_h(1)={p_rand}")
    m = math.ceil(alpha * math.log(n) / math.log(1.0 / p_rand))
    return max(1, m)


def choose_n_tables(
    contrast: float,
    width: float,
    n_bits: int,
    k_star: int,
    delta: float,
    max_tables: int = 4096,
) -> int:
    """Table count from the Theorem 3 argument.

    One table catches a specific true neighbor with probability at
    least ``p_nn^m`` where ``p_nn = f_h(1/C)``; ``l`` independent
    tables miss it with probability ``(1 - p_nn^m)^l``.  Requiring a
    union-bound miss probability of ``delta`` over the ``K*`` neighbors
    gives ``l = ceil( log(K*/delta) / -log(1 - p_nn^m) )``.
    """
    if not 0 < delta < 1:
        raise ParameterError(f"delta must lie in (0, 1), got {delta}")
    if k_star <= 0:
        raise ParameterError(f"k_star must be positive, got {k_star}")
    p_nn = collision_probability(1.0 / contrast, width)
    p_catch = p_nn**n_bits
    if p_catch <= 0:
        return max_tables
    if p_catch >= 1:
        return 1
    tables = math.ceil(math.log(k_star / delta) / -math.log1p(-p_catch))
    return int(min(max(1, tables), max_tables))


def tune_lsh(
    contrast: ContrastEstimate,
    n: int,
    k_star: int,
    delta: float,
    alpha: float = 1.0,
    width_grid: tuple[float, ...] = DEFAULT_WIDTH_GRID,
    max_tables: int = 4096,
) -> LSHParameters:
    """End-to-end parameter selection for a dataset.

    Parameters
    ----------
    contrast:
        Output of
        :func:`repro.lsh.contrast.estimate_relative_contrast` computed
        at ``k = k_star`` on data normalized to ``D_mean = 1``.
    n:
        Training-set size.
    k_star:
        Number of neighbors the valuation needs
        (``max(K, ceil(1/epsilon))``, Theorem 2).
    delta:
        Allowed retrieval failure probability.
    alpha:
        Code-length multiplier (paper tries a few and keeps the
        fastest; 1.0 is a solid default).
    """
    width, g = choose_width(contrast.contrast, grid=width_grid)
    n_bits = choose_n_bits(n, width, alpha=alpha)
    n_tables = choose_n_tables(
        contrast.contrast, width, n_bits, k_star, delta, max_tables=max_tables
    )
    return LSHParameters(
        width=width, n_bits=n_bits, n_tables=n_tables, g=g, contrast=contrast
    )


def retune_lsh(
    old: LSHParameters,
    contrast: ContrastEstimate,
    n: int,
    k_star: int,
    delta: float,
    alpha: float = 1.0,
    width_grid: tuple[float, ...] = DEFAULT_WIDTH_GRID,
    max_tables: int = 4096,
) -> LSHParameters:
    """Re-run the Section 6.1 selection against a *fresh* contrast.

    The maintenance entry point for long-lived indexes: a deployment
    tuned once keeps serving while the data distribution shifts, and
    only the contrast estimate changes — the recipe itself does not.
    This re-derives ``(r, m, l)`` from ``contrast`` with the same
    knobs, returning ``old`` unchanged (``is``-identical) when the new
    estimate leads to the same configuration, so callers can cheaply
    test whether a rebuild is actually warranted.
    """
    fresh = tune_lsh(
        contrast,
        n=n,
        k_star=k_star,
        delta=delta,
        alpha=alpha,
        width_grid=width_grid,
        max_tables=max_tables,
    )
    unchanged = (
        fresh.width == old.width
        and fresh.n_bits == old.n_bits
        and fresh.n_tables == old.n_tables
    )
    return old if unchanged else fresh
