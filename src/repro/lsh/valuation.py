"""LSH-accelerated Shapley approximation (Theorem 4).

The composition of Theorems 2 and 3: retrieve the ``K* = max(K,
ceil(1/epsilon))`` (approximate) nearest neighbors of each test point
with an LSH index, run the truncated recursion on their labels, and
assign value 0 to everything else.  When the retrieval succeeds with
probability ``1 - delta`` per neighbor set, the result is an
``(epsilon, delta)``-approximation to the full Shapley vector, at
``O(N^{g(C_K*)} log N)`` query cost — sublinear whenever the relative
contrast keeps ``g`` below 1.
"""

from __future__ import annotations

from typing import Optional

from ..core.kernels import RankPlan, get_kernel, truncation_rank
from ..exceptions import ParameterError
from ..rng import SeedLike
from ..types import Dataset, ValuationResult
from .contrast import normalize_to_unit_dmean
from .tables import LSHIndex
from .tuning import LSHParameters, tune_lsh

__all__ = ["lsh_knn_shapley"]


def lsh_knn_shapley(
    dataset: Dataset,
    k: int,
    epsilon: float = 0.1,
    delta: float = 0.1,
    params: Optional[LSHParameters] = None,
    alpha: float = 0.5,
    seed: SeedLike = None,
) -> ValuationResult:
    """(epsilon, delta)-approximate KNN Shapley values via LSH (Thm 4).

    Parameters
    ----------
    dataset:
        Training and test data (classification labels).
    k:
        The K of KNN.
    epsilon:
        Per-point value error target; sets the truncation rank
        ``K* = max(K, ceil(1/epsilon))``.
    delta:
        Allowed probability that some neighbor set is imperfectly
        retrieved.
    params:
        Pre-tuned LSH parameters.  When omitted, the data is
        normalized to ``D_mean = 1``, the contrast is estimated, and
        :func:`repro.lsh.tuning.tune_lsh` picks width / bits / tables.
    alpha:
        Code-length multiplier forwarded to the tuner.
    seed:
        Seed for contrast subsampling and hash projections.

    Returns
    -------
    ValuationResult
        ``extra`` records the tuned parameters, the truncation rank,
        and candidate statistics.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    k_star = truncation_rank(k, epsilon)
    n = dataset.n_train
    k_star_eff = min(k_star, n)

    if params is None:
        x_train, x_test, contrast = normalize_to_unit_dmean(
            dataset.x_train, dataset.x_test, k=k_star_eff, seed=seed
        )
        params = tune_lsh(contrast, n=n, k_star=k_star_eff, delta=delta, alpha=alpha)
    else:
        # Trust the caller's normalization choices.
        contrast = params.contrast
        scale = 1.0 / contrast.d_mean if contrast.d_mean > 0 else 1.0
        x_train = dataset.x_train * scale
        x_test = dataset.x_test * scale

    import time

    build_start = time.perf_counter()
    index = LSHIndex(
        n_tables=params.n_tables,
        n_bits=params.n_bits,
        width=params.width,
        seed=seed,
    ).build(x_train)
    build_seconds = time.perf_counter() - build_start

    query_start = time.perf_counter()
    neighbor_idx, _, stats = index.query(x_test, k_star_eff)
    query_seconds = time.perf_counter() - query_start

    # the same truncated kernel the engine dispatches, over a ragged
    # plan of approximate neighbors; the zero anchor reflects that an
    # LSH index never certifies full coverage of the training set
    plan = RankPlan.from_neighbor_rows(
        neighbor_idx, dataset.y_train, dataset.y_test
    )
    per_test = get_kernel("truncated").values_from_plan(
        plan, k, k_star=k_star, exact_anchor=False
    )
    values = per_test.mean(axis=0)
    return ValuationResult(
        values=values,
        method="lsh",
        extra={
            "k": k,
            "epsilon": epsilon,
            "delta": delta,
            "k_star": k_star,
            "params": params,
            "mean_candidates": stats.mean_candidates,
            "build_seconds": build_seconds,
            "query_seconds": query_seconds,
            "per_test": per_test,
        },
    )
