"""Relative contrast and the LSH complexity exponent (Theorem 3).

The K-th *relative contrast* of a dataset with respect to a query
distribution is::

    C_K = D_mean / D_K

where ``D_mean`` is the expected distance from a query to a random
training point and ``D_K`` the expected distance to the K-th nearest
neighbor.  Theorem 3 shows LSH retrieves the exact K nearest neighbors
with probability ``1 - delta`` using ``O(N^{g(C_K)} log(K/delta))``
tables, where::

    g(C) = log f_h(1/C) / log f_h(1)

(computed after normalizing the dataset so ``D_mean = 1``).  ``g`` is
monotonically decreasing in ``C``: higher contrast means nearest
neighbors are easier to separate from random points, so fewer tables
suffice — the effect Figure 9 measures and Figure 10 simulates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..knn.distance import euclidean_distances
from ..rng import SeedLike, ensure_rng
from .pstable import collision_probability

__all__ = [
    "ContrastEstimate",
    "contrast_drift",
    "estimate_relative_contrast",
    "g_exponent",
    "normalize_to_unit_dmean",
]


@dataclass(frozen=True)
class ContrastEstimate:
    """Estimated distance statistics of a dataset.

    Attributes
    ----------
    d_mean:
        Expected query-to-random-point distance.
    d_k:
        Expected query-to-Kth-neighbor distance.
    contrast:
        ``C_K = d_mean / d_k``.
    k:
        The K the estimate was computed for.
    """

    d_mean: float
    d_k: float
    contrast: float
    k: int


def estimate_relative_contrast(
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    max_queries: int = 200,
    max_reference: int = 2000,
    seed: SeedLike = None,
) -> ContrastEstimate:
    """Estimate ``C_K`` by sampling queries and reference points.

    Parameters
    ----------
    data:
        Training matrix ``(n, d)``.
    queries:
        Query matrix; a subsample of ``max_queries`` rows is used.
    k:
        Which nearest neighbor defines ``D_K``.
    max_queries, max_reference:
        Subsampling caps for the two expectations (both are simple
        means, so a few hundred samples give stable estimates).
    seed:
        Subsampling seed.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if data.shape[0] <= k:
        raise ParameterError(
            f"need more than k={k} data points, got {data.shape[0]}"
        )
    rng = ensure_rng(seed)
    if queries.shape[0] > max_queries:
        sel = rng.choice(queries.shape[0], size=max_queries, replace=False)
        queries = queries[sel]
    # D_K needs distances to the whole dataset; D_mean can subsample.
    dist_all = euclidean_distances(queries, data)
    d_k = float(np.partition(dist_all, k - 1, axis=1)[:, k - 1].mean())
    if data.shape[0] > max_reference:
        ref = rng.choice(data.shape[0], size=max_reference, replace=False)
        d_mean = float(dist_all[:, ref].mean())
    else:
        d_mean = float(dist_all.mean())
    if d_k <= 0:
        raise ParameterError("degenerate dataset: D_K is zero")
    return ContrastEstimate(
        d_mean=d_mean, d_k=d_k, contrast=d_mean / d_k, k=k
    )


def contrast_drift(
    tuned: ContrastEstimate, fresh: ContrastEstimate, scale: float = 1.0
) -> float:
    """How far a fresh contrast estimate has moved from the tuned one.

    Two distinct distance statistics can go stale under distribution
    shift, and either invalidates the Section 6.1 tuning:

    * the *relative contrast* ``C_K`` — drives the width grid choice
      and the table count through ``g(C_K)``;
    * the *mean distance* ``D_mean`` — drives the normalization scale,
      and with it the effective quantization width of every hash
      function.  (A pure rescaling of the data leaves ``C_K`` untouched
      while making the tuned width arbitrarily wrong.)

    ``fresh`` is measured in raw data space; ``scale`` is the
    normalization the index applies (``tuned`` lives in that normalized
    space, usually with ``d_mean == 1``).  Returns the larger of the
    two relative deviations — 0 means the tuning still describes the
    data, 1 means a statistic is off by 100%.
    """
    if tuned.contrast <= 0 or tuned.d_mean <= 0:
        raise ParameterError(
            f"tuned estimate must have positive contrast and d_mean, got "
            f"contrast={tuned.contrast}, d_mean={tuned.d_mean}"
        )
    dev_contrast = abs(fresh.contrast / tuned.contrast - 1.0)
    dev_scale = abs(fresh.d_mean * scale / tuned.d_mean - 1.0)
    return float(max(dev_contrast, dev_scale))


def g_exponent(contrast: float, width: float) -> float:
    """The complexity exponent ``g(C) = log f_h(1/C) / log f_h(1)``.

    Assumes the dataset has been normalized to ``D_mean = 1`` (see
    :func:`normalize_to_unit_dmean`), so a random point sits at
    distance 1 and the K-th neighbor at distance ``1/C``.

    ``g < 1`` is the sublinear regime: the LSH-based Shapley
    approximation beats the exact O(N log N) sort.  ``g >= 1`` (low
    contrast, i.e. C <= 1) means LSH cannot help — the regime the
    paper's Figure 10 shows for very small epsilon.
    """
    if contrast <= 0:
        raise ParameterError(f"contrast must be positive, got {contrast}")
    p_nn = collision_probability(1.0 / contrast, width)
    p_rand = collision_probability(1.0, width)
    if not 0 < p_rand < 1 or not 0 < p_nn < 1:
        raise ParameterError(
            f"width {width} gives degenerate collision probabilities "
            f"(p_nn={p_nn}, p_rand={p_rand})"
        )
    return float(np.log(p_nn) / np.log(p_rand))


def normalize_to_unit_dmean(
    data: np.ndarray,
    queries: np.ndarray,
    k: int = 1,
    seed: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray, ContrastEstimate]:
    """Rescale features so the mean query-to-point distance is 1.

    Scaling does not change neighbor ranks, so Shapley values are
    unaffected; it standardizes the LSH width grid across datasets
    (the paper normalizes all datasets to ``D_mean = 1`` for Figure 9).

    Returns the scaled ``(data, queries)`` and the contrast estimate
    computed *after* scaling.
    """
    est = estimate_relative_contrast(data, queries, k=k, seed=seed)
    scale = 1.0 / est.d_mean
    data_s = np.asarray(data, dtype=np.float64) * scale
    queries_s = np.asarray(queries, dtype=np.float64) * scale
    est_s = ContrastEstimate(
        d_mean=1.0, d_k=est.d_k * scale, contrast=est.contrast, k=k
    )
    return data_s, queries_s, est_s
