"""Locality-sensitive hashing substrate (Section 3.2, Theorems 3-4).

2-stable Gaussian hash family, multi-table index with exact candidate
re-ranking, relative-contrast estimation, parameter tuning, and the
LSH-accelerated Shapley approximation.
"""

from .contrast import (
    ContrastEstimate,
    contrast_drift,
    estimate_relative_contrast,
    g_exponent,
    normalize_to_unit_dmean,
)
from .pstable import (
    GaussianHashFamily,
    collision_probability,
    collision_probability_numeric,
)
from .tables import LSHIndex, LSHQueryStats
from .tuning import (
    DEFAULT_WIDTH_GRID,
    LSHParameters,
    choose_n_bits,
    choose_n_tables,
    choose_width,
    retune_lsh,
    tune_lsh,
)
from .valuation import lsh_knn_shapley

__all__ = [
    "GaussianHashFamily",
    "collision_probability",
    "collision_probability_numeric",
    "LSHIndex",
    "LSHQueryStats",
    "ContrastEstimate",
    "contrast_drift",
    "estimate_relative_contrast",
    "g_exponent",
    "normalize_to_unit_dmean",
    "LSHParameters",
    "choose_width",
    "choose_n_bits",
    "choose_n_tables",
    "tune_lsh",
    "retune_lsh",
    "DEFAULT_WIDTH_GRID",
    "lsh_knn_shapley",
]
