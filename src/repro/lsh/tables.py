"""Multi-table LSH index with exact re-ranking of candidates.

The standard LSH retrieval pipeline of Section 3.2: ``l`` hash tables,
each bucketing points by an ``m``-digit 2-stable code; a query gathers
the union of its matching buckets across tables and re-ranks those
candidates by true l2 distance.  A K-nearest query succeeds when every
true neighbor landed in at least one shared bucket — Theorem 3 sizes
``l`` so this holds with probability ``1 - delta``.

The index also supports bounded churn without a rebuild: hashing is
per-point, so :meth:`LSHIndex.insert` appends new points into the
existing buckets in place, and :meth:`LSHIndex.remove` *tombstones*
points (queries skip them; buckets are left untouched, since scrubbing
every table would cost a full pass).  Once tombstones accumulate,
:meth:`LSHIndex.compact` scrubs them in one pass over the bucket
arrays — no rehashing, the families stay fixed, and query results are
bit-identical before and after (the alive candidate sets do not
change).  The hash parameters were tuned for the build-time ``n`` and
contrast, so owners should still fall back to a full rebuild (or a
re-tune — see :mod:`repro.monitor`) once the alive count drifts far
from the tuned size — :class:`repro.engine.backends.LSHNeighborBackend`
refits past 25%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import NotFittedError, ParameterError
from ..knn.distance import euclidean_distances
from ..rng import SeedLike, ensure_rng
from .pstable import GaussianHashFamily

__all__ = ["LSHIndex", "LSHQueryStats"]


@dataclass(frozen=True)
class LSHQueryStats:
    """Bookkeeping for one batch of LSH queries.

    Attributes
    ----------
    n_candidates:
        Candidate-set size per query (after bucket union, before
        re-ranking).
    n_returned:
        Number of neighbors actually returned per query (can fall
        short of the requested k when the buckets are sparse).
    """

    n_candidates: np.ndarray
    n_returned: np.ndarray

    @property
    def mean_candidates(self) -> float:
        """Average candidate-set size over the batch."""
        return float(self.n_candidates.mean()) if self.n_candidates.size else 0.0


class LSHIndex:
    """An l-table, m-bit 2-stable LSH index over a fixed dataset.

    Parameters
    ----------
    n_tables:
        Number of hash tables ``l``.
    n_bits:
        Hash functions per table ``m`` (the code length).
    width:
        Quantization width ``r`` of each hash function.
    seed:
        Seed for the random projections.
    """

    def __init__(
        self,
        n_tables: int,
        n_bits: int,
        width: float,
        seed: SeedLike = None,
    ) -> None:
        if n_tables <= 0:
            raise ParameterError(f"n_tables must be positive, got {n_tables}")
        self.n_tables = int(n_tables)
        self.n_bits = int(n_bits)
        self.width = float(width)
        self._seed = seed
        self._families: list[GaussianHashFamily] = []
        self._tables: list[dict[bytes, list[int]]] = []
        self._data: np.ndarray | None = None
        #: tombstone mask over internal ids; ``None`` means all alive
        self._alive: np.ndarray | None = None

    # ------------------------------------------------------------------
    def build(self, data: np.ndarray) -> "LSHIndex":
        """Hash every data point into all tables."""
        data = np.ascontiguousarray(np.atleast_2d(data), dtype=np.float64)
        if data.shape[0] == 0:
            raise ParameterError("cannot build an index over zero points")
        rng = ensure_rng(self._seed)
        self._data = data
        self._families = [
            GaussianHashFamily(data.shape[1], self.n_bits, self.width, seed=rng)
            for _ in range(self.n_tables)
        ]
        self._tables = []
        for family in self._families:
            codes = family.hash_values(data)
            # Vectorized bucketing: group equal code rows with one sort
            # instead of n dict inserts.
            keys = np.ascontiguousarray(codes).view(
                np.dtype((np.void, codes.dtype.itemsize * codes.shape[1]))
            ).ravel()
            sort_order = np.argsort(keys, kind="stable")
            sorted_keys = keys[sort_order]
            boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
            starts = np.concatenate(([0], boundaries))
            stops = np.concatenate((boundaries, [keys.shape[0]]))
            table: dict[bytes, np.ndarray] = {}
            for start, stop in zip(starts, stops):
                table[sorted_keys[start].tobytes()] = sort_order[start:stop]
            self._tables.append(table)
        self._alive = None
        return self

    def _require_built(self) -> np.ndarray:
        if self._data is None:
            raise NotFittedError("LSHIndex.build must be called first")
        return self._data

    @property
    def n(self) -> int:
        """Number of internal ids (including tombstoned points)."""
        return int(self._require_built().shape[0])

    @property
    def n_alive(self) -> int:
        """Number of indexed points that queries can still return."""
        if self._alive is None:
            return self.n
        return int(self._alive.sum())

    @property
    def tombstone_ratio(self) -> float:
        """Fraction of internal rows that are tombstoned, in [0, 1)."""
        n = self.n
        return 0.0 if n == 0 else 1.0 - self.n_alive / n

    def bucket_stats(self) -> dict:
        """Occupancy of the live tables (for monitoring dashboards).

        ``n_entries`` counts bucket memberships including tombstoned
        ids (they occupy memory until :meth:`compact`); ``max_bucket``
        is the largest single bucket across all tables.
        """
        n_entries = 0
        max_bucket = 0
        for table in self._tables:
            for bucket in table.values():
                n_entries += int(bucket.size)
                if bucket.size > max_bucket:
                    max_bucket = int(bucket.size)
        return {
            "n_tables": len(self._tables),
            "n_buckets": sum(len(t) for t in self._tables),
            "n_entries": n_entries,
            "max_bucket": max_bucket,
        }

    # ------------------------------------------------------------------
    # bounded churn: per-table bucket insertion and tombstoning
    def insert(self, points: np.ndarray) -> np.ndarray:
        """Hash ``points`` into the existing buckets in place.

        New points take the next internal ids (returned).  No table is
        rebuilt and no incumbent is rehashed — an O(m l) update for
        ``m`` new points over ``l`` tables.  The hash parameters stay
        those tuned at build time, so callers should rebuild once the
        indexed size drifts materially (see the module docstring).
        """
        data = self._require_built()
        points = np.ascontiguousarray(np.atleast_2d(points), dtype=np.float64)
        if points.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        if points.shape[1] != data.shape[1]:
            raise ParameterError(
                f"new points have {points.shape[1]} features, expected "
                f"{data.shape[1]}"
            )
        start = data.shape[0]
        ids = np.arange(start, start + points.shape[0], dtype=np.intp)
        self._data = np.ascontiguousarray(np.vstack((data, points)))
        if self._alive is not None:
            self._alive = np.concatenate(
                (self._alive, np.ones(points.shape[0], dtype=bool))
            )
        for family, table in zip(self._families, self._tables):
            keys = family.bucket_keys(points)
            for offset, key in enumerate(keys):
                bucket = table.get(key)
                if bucket is None:
                    table[key] = ids[offset : offset + 1].copy()
                else:
                    table[key] = np.append(bucket, ids[offset])
        return ids

    def remove(self, ids) -> None:
        """Tombstone internal ids: queries skip them from now on.

        Buckets are not scrubbed (that would touch every table); the
        rows stay in memory until the owner rebuilds.  Removing an
        already-dead id is rejected — it indicates a stale external
        mapping.
        """
        data = self._require_built()
        ids = np.atleast_1d(np.asarray(ids, dtype=np.intp))
        if ids.size == 0:
            return
        n = data.shape[0]
        if np.any(ids < 0) or np.any(ids >= n):
            raise ParameterError(
                f"remove ids must lie in [0, {n}), got {ids.tolist()}"
            )
        if self._alive is None:
            self._alive = np.ones(n, dtype=bool)
        if not np.all(self._alive[ids]):
            raise ParameterError(
                f"ids {ids[~self._alive[ids]].tolist()} are already removed"
            )
        self._alive[ids] = False
        if not self._alive.any():
            self._alive[ids] = True
            raise ParameterError("cannot remove every indexed point")

    def compacted(self) -> tuple["LSHIndex", np.ndarray]:
        """A tombstone-free copy of this index, plus the id renumbering.

        The copy shares the hash families (immutable after
        :meth:`build`) but owns fresh data and bucket arrays with every
        tombstoned row scrubbed.  Internal ids are renumbered
        compactly, *preserving the relative order of alive ids* — and
        since buckets are filtered through that monotonic remap (no
        rehashing), every query returns bit-identical results against
        the copy: the alive candidate sets, their distances, and all
        tie-breaks are unchanged.  Cost is one pass over the bucket
        arrays, O(total bucket entries).

        Because the original is left untouched, owners can swap the
        copy in while in-flight queries finish against the old tables
        — the concurrency story behind
        :meth:`repro.engine.backends.LSHNeighborBackend.compact`.

        Returns ``(index, remap)`` where ``remap`` maps old ids to new
        (``-1`` for scrubbed ids).
        """
        data = self._require_built()
        n = data.shape[0]
        clone = LSHIndex(
            n_tables=self.n_tables,
            n_bits=self.n_bits,
            width=self.width,
            seed=self._seed,
        )
        clone._families = self._families
        if self._alive is None:
            clone._data = data
            clone._tables = [dict(table) for table in self._tables]
            return clone, np.arange(n, dtype=np.intp)
        keep = np.flatnonzero(self._alive)
        remap = np.full(n, -1, dtype=np.intp)
        remap[keep] = np.arange(keep.size, dtype=np.intp)
        clone._data = np.ascontiguousarray(data[keep])
        clone._tables = []
        for table in self._tables:
            new_table: dict[bytes, np.ndarray] = {}
            for key, bucket in table.items():
                new_bucket = remap[bucket]
                new_bucket = new_bucket[new_bucket >= 0]
                if new_bucket.size:
                    new_table[key] = new_bucket
            clone._tables.append(new_table)
        return clone, remap

    def compact(self) -> np.ndarray:
        """Scrub tombstones in place; see :meth:`compacted`.

        Adopts a compacted copy's state, so the result-preservation
        guarantees are those of :meth:`compacted`.  Returns the old-id
        -> new-id mapping (``-1`` for scrubbed ids) so owners holding
        external-id translations can update them.
        """
        clone, remap = self.compacted()
        self._data = clone._data
        self._tables = clone._tables
        self._alive = None
        return remap

    # ------------------------------------------------------------------
    def candidates(self, queries: np.ndarray) -> list[np.ndarray]:
        """Union of matching-bucket members per query (alive only)."""
        self._require_built()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        per_query: list[list[np.ndarray]] = [[] for _ in range(queries.shape[0])]
        for family, table in zip(self._families, self._tables):
            keys = family.bucket_keys(queries)
            for qi, key in enumerate(keys):
                bucket = table.get(key)
                if bucket is not None and bucket.size:
                    per_query[qi].append(bucket)
        out: list[np.ndarray] = []
        for parts in per_query:
            if parts:
                cand = np.unique(np.concatenate(parts)).astype(np.intp)
                if self._alive is not None:
                    cand = cand[self._alive[cand]]
                out.append(cand)
            else:
                out.append(np.empty(0, dtype=np.intp))
        return out

    def query(
        self, queries: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray], LSHQueryStats]:
        """Approximate top-``k`` search with exact candidate re-ranking.

        Returns
        -------
        (indices, distances, stats):
            ``indices[j]`` / ``distances[j]`` list the returned
            neighbors of query ``j`` nearest-first (possibly fewer than
            ``k``); ``stats`` records candidate counts.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        data = self._require_built()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        cand_lists = self.candidates(queries)
        indices: list[np.ndarray] = []
        distances: list[np.ndarray] = []
        n_candidates = np.zeros(queries.shape[0], dtype=np.int64)
        n_returned = np.zeros(queries.shape[0], dtype=np.int64)
        for j, cand in enumerate(cand_lists):
            n_candidates[j] = cand.size
            if cand.size == 0:
                indices.append(np.empty(0, dtype=np.intp))
                distances.append(np.empty(0))
                continue
            dist = euclidean_distances(queries[j : j + 1], data[cand])[0]
            keep = min(k, cand.size)
            if keep < cand.size:
                part = np.argpartition(dist, keep - 1)[:keep]
            else:
                part = np.arange(cand.size)
            inner = np.argsort(dist[part], kind="stable")
            sel = part[inner]
            indices.append(cand[sel])
            distances.append(dist[sel])
            n_returned[j] = sel.size
        return indices, distances, LSHQueryStats(n_candidates, n_returned)

    def recall_at_k(
        self, queries: np.ndarray, true_indices: np.ndarray, k: int
    ) -> float:
        """Fraction of true top-``k`` neighbors the index retrieves.

        ``true_indices`` has shape ``(n_queries, >= k)`` with the exact
        nearest neighbors, nearest first.
        """
        retrieved, _, _ = self.query(queries, k)
        true_indices = np.asarray(true_indices)[:, :k]
        hits = 0
        for j in range(true_indices.shape[0]):
            hits += np.isin(true_indices[j], retrieved[j]).sum()
        return float(hits) / float(true_indices.size)
