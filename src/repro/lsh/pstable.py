"""p-stable locality-sensitive hashing for l2 distance (Datar et al. 2004).

The hash family used throughout Section 3.2 of the paper::

    h(x) = floor( (w . x + b) / r )

with ``w`` a vector of i.i.d. standard Gaussians (2-stable) and ``b``
uniform on ``[0, r]``.  Two points at l2 distance ``c`` collide with
probability::

    f_h(c) = \\int_0^r (1/c) f_2(z/c) (1 - z/r) dz

where ``f_2`` is the density of the absolute value of a standard
Gaussian.  ``f_h`` is monotonically decreasing in ``c`` — the property
that makes the family locality sensitive.  A closed form exists:

    f_h(c) = 1 - 2 Phi(-r/c) - (2 c / (sqrt(2 pi) r)) (1 - exp(-r^2 / (2 c^2)))

Both the closed form and the direct numerical integral are provided;
the test suite checks they agree.
"""

from __future__ import annotations

import numpy as np
from scipy import integrate, stats

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng

__all__ = [
    "collision_probability",
    "collision_probability_numeric",
    "GaussianHashFamily",
]


def collision_probability(c: float | np.ndarray, r: float) -> float | np.ndarray:
    """Collision probability ``f_h(c)`` of the 2-stable family (closed form).

    Parameters
    ----------
    c:
        l2 distance(s) between the two points; must be positive.
    r:
        Quantization width of the hash function; must be positive.
    """
    if r <= 0:
        raise ParameterError(f"width r must be positive, got {r}")
    c_arr = np.asarray(c, dtype=np.float64)
    if np.any(c_arr <= 0):
        raise ParameterError("distance c must be positive")
    ratio = r / c_arr
    p = (
        1.0
        - 2.0 * stats.norm.cdf(-ratio)
        - (2.0 / (np.sqrt(2.0 * np.pi) * ratio))
        * (1.0 - np.exp(-(ratio**2) / 2.0))
    )
    out = np.clip(p, 0.0, 1.0)
    return out if isinstance(c, np.ndarray) else float(out)


def collision_probability_numeric(c: float, r: float) -> float:
    """``f_h(c)`` by numerical quadrature of the defining integral."""
    if r <= 0 or c <= 0:
        raise ParameterError("c and r must be positive")

    def integrand(z: float) -> float:
        # density of |N(0, 1)| evaluated at z / c
        f2 = 2.0 * stats.norm.pdf(z / c)
        return (1.0 / c) * f2 * (1.0 - z / r)

    val, _ = integrate.quad(integrand, 0.0, r)
    return float(min(max(val, 0.0), 1.0))


class GaussianHashFamily:
    """A batch of ``m`` 2-stable hash functions sharing one width ``r``.

    One instance corresponds to one hash *table*'s code generator: the
    ``m`` individual hash values are concatenated into an m-digit code,
    so two points fall into the same bucket iff all ``m`` functions
    collide (probability ``f_h(c)^m``).
    """

    def __init__(self, n_dims: int, n_bits: int, width: float, seed: SeedLike = None) -> None:
        if n_dims <= 0:
            raise ParameterError(f"n_dims must be positive, got {n_dims}")
        if n_bits <= 0:
            raise ParameterError(f"n_bits must be positive, got {n_bits}")
        if width <= 0:
            raise ParameterError(f"width must be positive, got {width}")
        rng = ensure_rng(seed)
        self.n_dims = int(n_dims)
        self.n_bits = int(n_bits)
        self.width = float(width)
        #: projection matrix, shape (n_bits, n_dims)
        self.projections = rng.standard_normal((self.n_bits, self.n_dims))
        #: offsets, shape (n_bits,)
        self.offsets = rng.uniform(0.0, self.width, size=self.n_bits)

    def hash_values(self, x: np.ndarray) -> np.ndarray:
        """Integer hash codes, shape ``(n_points, n_bits)``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.n_dims:
            raise ParameterError(
                f"expected {self.n_dims}-dimensional input, got {x.shape[1]}"
            )
        proj = (x @ self.projections.T + self.offsets[None, :]) / self.width
        return np.floor(proj).astype(np.int64)

    def bucket_keys(self, x: np.ndarray) -> list[bytes]:
        """One hashable bucket key per row of ``x``.

        The ``n_bits`` integer codes are serialized to bytes; using
        ``bytes`` keys keeps the bucket dictionaries compact.
        """
        codes = self.hash_values(x)
        return [row.tobytes() for row in codes]
