"""Marketplace agents: sellers, the buyer, and the analyst.

These dataclasses model the actors of the paper's motivating scenario
(Section 1, Figure 1): sellers contribute labelled training points to a
shared pool, a buyer pays for an ML model trained over the pool, and —
in the composite game — an analyst contributes the computation.  The
classes are deliberately thin records; the economics lives in
:mod:`repro.market.game` and :mod:`repro.market.revenue`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import DataValidationError

__all__ = ["Seller", "Buyer", "Analyst"]


@dataclass(frozen=True)
class Seller:
    """A data contributor.

    Attributes
    ----------
    seller_id:
        Contiguous integer id (doubles as the player index in the
        data-only game).
    point_indices:
        Indices of the training points this seller owns.
    name:
        Optional display name.
    """

    seller_id: int
    point_indices: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        idx = np.asarray(self.point_indices, dtype=np.intp)
        if idx.ndim != 1 or idx.size == 0:
            raise DataValidationError(
                "a seller must own at least one training point"
            )
        object.__setattr__(self, "point_indices", idx)
        if not self.name:
            object.__setattr__(self, "name", f"seller-{self.seller_id}")

    @property
    def n_points(self) -> int:
        """Number of points contributed."""
        return int(self.point_indices.size)


@dataclass(frozen=True)
class Buyer:
    """The data consumer who pays for the trained model.

    Attributes
    ----------
    budget:
        Total payment for the grand-coalition model.
    name:
        Optional display name.
    """

    budget: float
    name: str = "buyer"

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise DataValidationError(
                f"budget must be non-negative, got {self.budget}"
            )


@dataclass(frozen=True)
class Analyst:
    """The computation contributor of the composite game (Section 4).

    Attributes
    ----------
    name:
        Display name.
    metadata:
        Free-form description of the contributed computation
        (infrastructure, IP, ...).
    """

    name: str = "analyst"
    metadata: dict = field(default_factory=dict)
