"""Data-marketplace layer: agents, games, revenue mapping, settlement."""

from .agents import Analyst, Buyer, Seller
from .game import CompositeGame, DataOnlyGame
from .marketplace import Marketplace, MarketplaceReport
from .revenue import AffineRevenueModel, PaymentLedger, allocate_payments

__all__ = [
    "Seller",
    "Buyer",
    "Analyst",
    "DataOnlyGame",
    "CompositeGame",
    "Marketplace",
    "MarketplaceReport",
    "AffineRevenueModel",
    "PaymentLedger",
    "allocate_payments",
]
