"""Mapping Shapley values to monetary rewards (Section 7).

The paper's discussion section proposes an affine revenue model:
``R(S) = a * v(S) + b``.  By the additivity property of the Shapley
value, the monetary reward of player ``i`` is then the same affine map
of its utility-space value plus its share of the constant term:
``s(R, i) = a * s(v, i) + b / N`` (the constant utility ``b`` is a
symmetric game whose value splits equally).

:func:`allocate_payments` applies that map and (optionally) clips
negative payouts, renormalizing so the buyer's budget is exactly
distributed — negative Shapley values are meaningful (harmful points)
but most real marketplaces cannot charge sellers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..types import ValuationResult

__all__ = ["AffineRevenueModel", "allocate_payments", "PaymentLedger"]


@dataclass(frozen=True)
class AffineRevenueModel:
    """``R(S) = a * v(S) + b`` with ``a > 0``.

    ``a`` converts model quality into money (determined by market
    research, per the paper); ``b`` is a base payment for participating.
    """

    a: float
    b: float = 0.0

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ParameterError(f"slope a must be positive, got {self.a}")

    def value_to_money(self, result: ValuationResult) -> np.ndarray:
        """Per-player monetary value ``a * s_i + b / N``."""
        n = result.n
        return self.a * result.values + self.b / n

    def total_revenue(self, grand_utility: float) -> float:
        """Revenue of the grand coalition, ``R(I)``."""
        return self.a * grand_utility + self.b


@dataclass(frozen=True)
class PaymentLedger:
    """The outcome of one payout round.

    Attributes
    ----------
    payments:
        Final per-player payments.
    raw:
        Pre-clipping affine payments (may contain negatives).
    budget:
        The distributed total.
    """

    payments: np.ndarray
    raw: np.ndarray
    budget: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "payments", np.asarray(self.payments, dtype=np.float64))
        object.__setattr__(self, "raw", np.asarray(self.raw, dtype=np.float64))


def allocate_payments(
    result: ValuationResult,
    budget: float,
    clip_negative: bool = True,
) -> PaymentLedger:
    """Distribute ``budget`` proportionally to Shapley values.

    Parameters
    ----------
    result:
        A valuation result (any method).
    budget:
        Total money to distribute.
    clip_negative:
        When True (default), negative values are clipped to zero before
        normalization — harmful contributors receive nothing rather
        than owe money.  When False, shares may be negative and the
        *net* distribution equals the budget.

    Notes
    -----
    If every value is non-positive the budget is split equally — the
    degenerate case where the valuation provides no signal.
    """
    if budget < 0:
        raise ParameterError(f"budget must be non-negative, got {budget}")
    values = result.values
    raw = values.copy()
    weights = np.clip(values, 0.0, None) if clip_negative else values
    total = float(weights.sum())
    if total <= 0:
        payments = np.full(result.n, budget / result.n)
    else:
        payments = budget * weights / total
    return PaymentLedger(payments=payments, raw=raw, budget=float(budget))
