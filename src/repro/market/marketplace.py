"""End-to-end marketplace orchestration.

Ties the pieces together into the workflow of the paper's motivating
example (Figure 1): sellers register data, a buyer requests a KNN model
and posts a budget, the marketplace values every contribution with the
exact Shapley algorithms and settles payments — optionally including an
analyst via the composite game.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..exceptions import ParameterError
from ..types import Dataset, GroupedDataset, ValuationResult
from .agents import Analyst, Buyer, Seller
from .game import CompositeGame, DataOnlyGame
from .revenue import AffineRevenueModel, PaymentLedger, allocate_payments

__all__ = ["MarketplaceReport", "Marketplace"]


@dataclass(frozen=True)
class MarketplaceReport:
    """Everything a settlement round produces.

    Attributes
    ----------
    valuation:
        The Shapley values used for the split.
    ledger:
        Final payments.
    sellers:
        Seller roster aligned with the payment vector (the analyst, if
        present, is the extra last entry of ``ledger.payments``).
    grand_utility:
        Utility of the full coalition (what the buyer paid for).
    includes_analyst:
        Whether the last payment entry belongs to the analyst.
    """

    valuation: ValuationResult
    ledger: PaymentLedger
    sellers: list[Seller]
    grand_utility: float
    includes_analyst: bool

    def seller_payment(self, seller_id: int) -> float:
        """Payment of one seller."""
        return float(self.ledger.payments[seller_id])

    def analyst_payment(self) -> float:
        """Payment of the analyst (0 when no analyst participated)."""
        if not self.includes_analyst:
            return 0.0
        return float(self.ledger.payments[-1])


@dataclass
class Marketplace:
    """A single-buyer KNN data marketplace.

    Parameters
    ----------
    dataset:
        The pooled training data plus the buyer's evaluation set.
    k:
        The K of the KNN model the buyer requests.
    task:
        ``"classification"`` or ``"regression"``.
    grouped:
        Optional seller ownership map (multiple data per curator).
    analyst:
        When given, settlement uses the composite game and the analyst
        receives a share.
    revenue_model:
        Affine utility-to-money map; defaults to identity slope 1.
    """

    dataset: Dataset
    k: int
    task: str = "classification"
    grouped: Optional[GroupedDataset] = None
    analyst: Optional[Analyst] = None
    revenue_model: AffineRevenueModel = field(
        default_factory=lambda: AffineRevenueModel(a=1.0, b=0.0)
    )

    def value_contributions(self) -> ValuationResult:
        """Run the appropriate exact valuation for the configured game."""
        if self.analyst is not None:
            game = CompositeGame(
                dataset=self.dataset,
                k=self.k,
                task=self.task,
                grouped=self.grouped,
                analyst=self.analyst,
            )
            return game.solve()
        return DataOnlyGame(
            dataset=self.dataset, k=self.k, task=self.task, grouped=self.grouped
        ).solve()

    def settle(self, buyer: Buyer, clip_negative: bool = True) -> MarketplaceReport:
        """Value every contribution and distribute the buyer's budget."""
        if buyer.budget <= 0:
            raise ParameterError("buyer budget must be positive to settle")
        valuation = self.value_contributions()
        monetary = self.revenue_model.value_to_money(valuation)
        monetary_result = ValuationResult(
            values=monetary,
            method=f"{valuation.method}+affine",
            extra=dict(valuation.extra),
        )
        ledger = allocate_payments(
            monetary_result, buyer.budget, clip_negative=clip_negative
        )
        game = DataOnlyGame(
            dataset=self.dataset, k=self.k, task=self.task, grouped=self.grouped
        )
        grand = float(game.utility().grand_value())
        return MarketplaceReport(
            valuation=valuation,
            ledger=ledger,
            sellers=game.sellers(),
            grand_utility=grand,
            includes_analyst=self.analyst is not None,
        )

    def flag_low_value_sellers(
        self, quantile: float = 0.05
    ) -> np.ndarray:
        """Sellers whose value falls below the given quantile.

        The task-specific valuation's defense against data poisoning
        (Section 7): adversarial or mislabeled contributions earn low
        or negative values and can be flagged for review.
        """
        if not 0 < quantile < 1:
            raise ParameterError(f"quantile must lie in (0, 1), got {quantile}")
        valuation = self.value_contributions()
        seller_values = (
            valuation.values[:-1] if self.analyst is not None else valuation.values
        )
        threshold = float(np.quantile(seller_values, quantile))
        return np.flatnonzero(seller_values <= threshold)
