"""The two cooperative games of the paper: data-only and composite.

* **Data-only game** (Section 2): players are sellers (one per
  training point, or one per curator in the grouped setting); the
  utility of a coalition is the KNN model quality on the pooled data.
* **Composite game** (Section 4, eq 28): one extra player — the
  analyst — and a utility that is zero unless both data and the
  analyst are present.

Each game knows how to *solve itself*: it dispatches to the fastest
exact algorithm available for its utility (Theorems 1, 6, 8, 9, 10,
12), falling back to Monte Carlo where no closed form exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.composite import (
    composite_grouped_knn_shapley,
    composite_knn_regression_shapley,
    composite_knn_shapley,
)
from ..core.exact import exact_knn_shapley
from ..core.grouped import exact_grouped_knn_shapley
from ..core.regression import exact_knn_regression_shapley
from ..exceptions import ParameterError
from ..types import Dataset, GroupedDataset, ValuationResult
from ..utility.knn_utility import KNNClassificationUtility
from ..utility.regression_utility import KNNRegressionUtility
from .agents import Analyst, Seller

__all__ = ["DataOnlyGame", "CompositeGame"]


def _sellers_from_groups(grouped: GroupedDataset) -> list[Seller]:
    return [
        Seller(seller_id=m, point_indices=grouped.members(m))
        for m in range(grouped.n_sellers)
    ]


@dataclass
class DataOnlyGame:
    """The sellers-only valuation game.

    Parameters
    ----------
    dataset:
        Training and test data.
    k:
        The K of KNN.
    task:
        ``"classification"`` (eq 5) or ``"regression"`` (eq 25).
    grouped:
        Optional ownership map; when given, players are sellers
        instead of individual points.
    metric:
        Distance metric name.
    """

    dataset: Dataset
    k: int
    task: str = "classification"
    grouped: Optional[GroupedDataset] = None
    metric: str = "euclidean"

    def __post_init__(self) -> None:
        if self.task not in ("classification", "regression"):
            raise ParameterError(
                f"task must be 'classification' or 'regression', got {self.task!r}"
            )
        if self.grouped is not None and self.grouped.dataset is not self.dataset:
            raise ParameterError(
                "grouped.dataset must be the same object as dataset"
            )

    @property
    def n_players(self) -> int:
        """Sellers when grouped, training points otherwise."""
        if self.grouped is not None:
            return self.grouped.n_sellers
        return self.dataset.n_train

    def sellers(self) -> list[Seller]:
        """The seller roster (one per player)."""
        if self.grouped is not None:
            return _sellers_from_groups(self.grouped)
        return [
            Seller(seller_id=i, point_indices=np.array([i]))
            for i in range(self.dataset.n_train)
        ]

    def utility(self):
        """The point-level utility function of this game."""
        if self.task == "classification":
            return KNNClassificationUtility(self.dataset, self.k, metric=self.metric)
        return KNNRegressionUtility(self.dataset, self.k, metric=self.metric)

    def solve(self) -> ValuationResult:
        """Exact Shapley values via the fastest applicable theorem."""
        if self.grouped is None:
            if self.task == "classification":
                return exact_knn_shapley(self.dataset, self.k, metric=self.metric)
            return exact_knn_regression_shapley(
                self.dataset, self.k, metric=self.metric
            )
        return exact_grouped_knn_shapley(self.utility(), self.grouped)


@dataclass
class CompositeGame:
    """The sellers-plus-analyst valuation game (eq 28).

    Same parameters as :class:`DataOnlyGame`; the analyst is always the
    last player of the solved result.
    """

    dataset: Dataset
    k: int
    task: str = "classification"
    grouped: Optional[GroupedDataset] = None
    metric: str = "euclidean"
    analyst: Analyst = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.task not in ("classification", "regression"):
            raise ParameterError(
                f"task must be 'classification' or 'regression', got {self.task!r}"
            )
        if self.analyst is None:
            self.analyst = Analyst()

    @property
    def n_players(self) -> int:
        """Sellers (or points) plus the analyst."""
        base = (
            self.grouped.n_sellers
            if self.grouped is not None
            else self.dataset.n_train
        )
        return base + 1

    def utility(self):
        """The point-level utility underlying the composite game."""
        if self.task == "classification":
            return KNNClassificationUtility(self.dataset, self.k, metric=self.metric)
        return KNNRegressionUtility(self.dataset, self.k, metric=self.metric)

    def solve(self) -> ValuationResult:
        """Exact composite Shapley values (Theorems 9, 10, 12)."""
        if self.grouped is None:
            if self.task == "classification":
                return composite_knn_shapley(self.dataset, self.k, metric=self.metric)
            return composite_knn_regression_shapley(
                self.dataset, self.k, metric=self.metric
            )
        return composite_grouped_knn_shapley(self.utility(), self.grouped)

    def analyst_share(self, result: Optional[ValuationResult] = None) -> float:
        """The analyst's fraction of the total distributed value."""
        if result is None:
            result = self.solve()
        total = result.total()
        if total == 0:
            return 0.0
        return float(result.values[-1] / total)
