"""Value-based data curation (Section 7's applications).

The task-specific Shapley value supports two downstream operations the
paper highlights: defending against data poisoning (adversarial or
mislabeled points earn low values and can be dropped) and informed
data acquisition (keep the points that actually improve the model).
This module turns those into library operations:

* :func:`select_by_value` — keep the top fraction of points by value;
* :func:`drop_harmful` — remove points with negative (or
  below-threshold) values;
* :func:`curation_curve` — model quality as a function of how many of
  the lowest-valued points are removed, the standard evaluation of a
  valuation method's usefulness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..exceptions import ParameterError
from ..knn.classifier import KNNClassifier
from ..types import Dataset, ValuationResult

__all__ = [
    "select_by_value",
    "drop_harmful",
    "CurationPoint",
    "curation_curve",
]


def select_by_value(
    result: ValuationResult, fraction: float
) -> np.ndarray:
    """Indices of the top ``fraction`` of players by value.

    Ties are broken toward lower index (stable).  At least one player
    is always selected.
    """
    if not 0 < fraction <= 1:
        raise ParameterError(f"fraction must lie in (0, 1], got {fraction}")
    n_keep = max(1, int(round(fraction * result.n)))
    return np.sort(result.ranking()[:n_keep])


def drop_harmful(
    result: ValuationResult, threshold: float = 0.0
) -> np.ndarray:
    """Indices of players whose value exceeds ``threshold``.

    With the default threshold 0 this removes the points whose
    *average marginal contribution is negative* — they actively hurt
    the model, the signature of mislabeled or adversarial data.
    Returns all indices if everything would be dropped.
    """
    keep = np.flatnonzero(result.values > threshold)
    if keep.size == 0:
        return np.arange(result.n)
    return keep


@dataclass(frozen=True)
class CurationPoint:
    """One point on a curation curve.

    Attributes
    ----------
    removed_fraction:
        Fraction of the training set removed (lowest values first).
    n_kept:
        Training points remaining.
    score:
        Model quality on the test set after removal.
    """

    removed_fraction: float
    n_kept: int
    score: float


def curation_curve(
    dataset: Dataset,
    result: ValuationResult,
    fractions: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    scorer: Callable[[Dataset], float] | None = None,
    k: int = 5,
) -> list[CurationPoint]:
    """Model quality after removing the lowest-valued points.

    Parameters
    ----------
    dataset:
        The valued dataset.
    result:
        A valuation of its training points (any method).
    fractions:
        Removal fractions to evaluate, in any order; each keeps at
        least one point.
    scorer:
        Maps a (reduced) dataset to a quality score.  Defaults to the
        accuracy of a fresh K-NN classifier — the model the values
        were computed for.
    k:
        K for the default scorer.

    Notes
    -----
    A valuation method is *useful* when this curve rises (or at least
    holds) as genuinely harmful points are removed first — the check
    both the paper's discussion and the follow-on literature use.
    """
    if result.n != dataset.n_train:
        raise ParameterError(
            f"valuation covers {result.n} players but the dataset has "
            f"{dataset.n_train} training points"
        )

    if scorer is None:

        def scorer(d: Dataset) -> float:
            clf = KNNClassifier(k=min(k, d.n_train)).fit(d.x_train, d.y_train)
            return clf.score(d.x_test, d.y_test)

    ascending = np.argsort(result.values, kind="stable")
    curve = []
    for fraction in fractions:
        if not 0 <= fraction < 1:
            raise ParameterError(
                f"fractions must lie in [0, 1), got {fraction}"
            )
        n_drop = min(int(round(fraction * dataset.n_train)), dataset.n_train - 1)
        keep = np.sort(ascending[n_drop:])
        reduced = dataset.subset(keep)
        curve.append(
            CurationPoint(
                removed_fraction=fraction,
                n_kept=int(keep.size),
                score=float(scorer(reduced)),
            )
        )
    return curve
