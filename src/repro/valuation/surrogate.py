"""KNN-surrogate valuation for non-KNN models (Section 7).

The paper's discussion section observes that since a KNN classifier on
good features is usually competitive with parametric classifiers, the
*cheap* KNN Shapley value can serve as a proxy for the *expensive*
Shapley value of another model trained on the same data — and for deep
networks one can build the KNN on the network's own penultimate-layer
features, calibrating K so the surrogate matches the original model's
accuracy.

:func:`calibrate_k` performs that calibration; :func:`surrogate_values`
returns the KNN Shapley values together with the surrogate's accuracy
gap, so callers can judge how trustworthy the proxy is.  The Figure 16
experiment validates the approach by correlating these values against
Monte Carlo logistic-regression values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


from ..core.exact import exact_knn_shapley
from ..exceptions import ParameterError
from ..knn.classifier import KNNClassifier
from ..types import Dataset, ValuationResult

__all__ = ["SurrogateCalibration", "calibrate_k", "surrogate_values"]


@dataclass(frozen=True)
class SurrogateCalibration:
    """Outcome of K calibration.

    Attributes
    ----------
    k:
        The chosen K.
    knn_accuracy:
        Test accuracy of the K-NN surrogate.
    target_accuracy:
        Accuracy of the model being mimicked.
    candidates:
        ``(k, accuracy)`` pairs examined.
    """

    k: int
    knn_accuracy: float
    target_accuracy: float
    candidates: tuple[tuple[int, float], ...]

    @property
    def accuracy_gap(self) -> float:
        """``|knn_accuracy - target_accuracy|`` of the chosen K."""
        return abs(self.knn_accuracy - self.target_accuracy)


def calibrate_k(
    dataset: Dataset,
    target_accuracy: float,
    k_grid: Sequence[int] = (1, 2, 3, 5, 7, 10, 15),
    metric: str = "euclidean",
) -> SurrogateCalibration:
    """Choose K so the KNN surrogate's accuracy tracks the target model.

    Parameters
    ----------
    dataset:
        The (feature-space) data both models see.
    target_accuracy:
        Test accuracy of the model to mimic.
    k_grid:
        Candidate K values (capped at the training size).
    """
    if not 0 <= target_accuracy <= 1:
        raise ParameterError(
            f"target_accuracy must lie in [0, 1], got {target_accuracy}"
        )
    candidates: list[tuple[int, float]] = []
    for k in k_grid:
        if k <= 0 or k > dataset.n_train:
            continue
        clf = KNNClassifier(k=k, metric=metric).fit(
            dataset.x_train, dataset.y_train
        )
        acc = clf.score(dataset.x_test, dataset.y_test)
        candidates.append((k, acc))
    if not candidates:
        raise ParameterError("k_grid contains no feasible K")
    best_k, best_acc = min(
        candidates, key=lambda ka: (abs(ka[1] - target_accuracy), ka[0])
    )
    return SurrogateCalibration(
        k=best_k,
        knn_accuracy=best_acc,
        target_accuracy=target_accuracy,
        candidates=tuple(candidates),
    )


def surrogate_values(
    dataset: Dataset,
    target_accuracy: float,
    k_grid: Sequence[int] = (1, 2, 3, 5, 7, 10, 15),
    metric: str = "euclidean",
) -> tuple[ValuationResult, SurrogateCalibration]:
    """KNN-surrogate Shapley values for a non-KNN model.

    Calibrates K against ``target_accuracy`` and runs the exact
    Theorem 1 algorithm at the calibrated K.  The returned result's
    ``extra`` records the calibration, so downstream reports can show
    how faithful the surrogate is.
    """
    calibration = calibrate_k(
        dataset, target_accuracy, k_grid=k_grid, metric=metric
    )
    result = exact_knn_shapley(dataset, calibration.k, metric=metric)
    result = result.with_extra(
        surrogate=True,
        calibrated_k=calibration.k,
        accuracy_gap=calibration.accuracy_gap,
    )
    return result, calibration
