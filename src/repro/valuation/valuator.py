"""High-level facade: one object, every valuation method in the paper.

:class:`KNNShapleyValuator` is the entry point a downstream user should
reach for.  It owns a :class:`~repro.types.Dataset` and a KNN
configuration and exposes one method per algorithm, each returning a
:class:`~repro.types.ValuationResult`:

================  ===========================================  =============
method            algorithm                                    complexity
================  ===========================================  =============
``exact()``       Theorem 1 (classification) / 6 (regression)  O(N log N)
``truncated()``   Theorem 2                                    O(N + K* log K*)
``lsh()``         Theorem 4                                    sublinear
``monte_carlo()`` Algorithm 2 / baseline                       O(T N log K)
``weighted()``    Theorem 7                                    O(N^K)
``grouped()``     Theorem 8                                    O(M^K)
``composite()``   Theorems 9-12                                as data-only
================  ===========================================  =============
"""

from __future__ import annotations

from typing import Optional

from ..core.composite import (
    composite_grouped_knn_shapley,
    composite_knn_regression_shapley,
    composite_knn_shapley,
)
from ..core.grouped import exact_grouped_knn_shapley
from ..core.montecarlo import baseline_mc_shapley, improved_mc_shapley
from ..core.weighted import exact_weighted_knn_shapley
from ..engine import ValuationEngine
from ..exceptions import ParameterError
from ..rng import SeedLike
from ..types import Dataset, GroupedDataset, ValuationResult
from ..utility.grouped import GroupedUtility
from ..utility.knn_utility import KNNClassificationUtility
from ..utility.regression_utility import KNNRegressionUtility

__all__ = ["KNNShapleyValuator"]


class KNNShapleyValuator:
    """Task-specific data valuation for KNN models.

    Parameters
    ----------
    dataset:
        Training and test data.
    k:
        The K of KNN.
    task:
        ``"classification"`` or ``"regression"``.
    metric:
        Distance metric name.
    backend:
        Neighbor backend for the exact/truncated paths (``"brute"`` or
        ``"blocked"``); see :mod:`repro.engine.backends`.

    Notes
    -----
    ``exact``, ``truncated``, ``weighted`` and ``lsh`` delegate to a
    shared :class:`~repro.engine.ValuationEngine`, so the neighbor
    index is fit once per valuator and repeated calls reuse cached
    rankings (``weighted`` additionally reuses cached sorted
    distances).
    """

    def __init__(
        self,
        dataset: Dataset,
        k: int = 1,
        task: str = "classification",
        metric: str = "euclidean",
        backend: str = "brute",
    ) -> None:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        if task not in ("classification", "regression"):
            raise ParameterError(
                f"task must be 'classification' or 'regression', got {task!r}"
            )
        self.dataset = dataset
        self.k = int(k)
        self.task = task
        self.metric = metric
        self.backend = backend
        self._engine: Optional[ValuationEngine] = None
        self._hub = None
        self._tracer = None

    # ------------------------------------------------------------------
    def engine(self) -> ValuationEngine:
        """The lazily-built :class:`~repro.engine.ValuationEngine`.

        Shared by :meth:`exact` and :meth:`truncated`, so the neighbor
        index is fit once and rankings are memoized across calls.
        """
        if self._engine is None:
            self._engine = ValuationEngine(
                self.dataset.x_train,
                self.dataset.y_train,
                self.k,
                task=self.task,
                metric=self.metric,
                backend=self.backend,
            )
            self._instrument(self._engine)
        return self._engine

    def _instrument(self, engine: ValuationEngine) -> ValuationEngine:
        """Forward any attached hub/tracer onto an owned engine."""
        if self._hub is not None:
            engine.attach_telemetry(self._hub)
        if self._tracer is not None:
            engine.attach_tracer(self._tracer)
        return engine

    # ------------------------------------------------------------------
    # observability (see repro.monitor)
    def attach_telemetry(self, hub) -> "KNNShapleyValuator":
        """Publish engine/backend streams of every owned engine to ``hub``.

        Accepts a :class:`~repro.monitor.TelemetryHub` or a
        :meth:`~repro.monitor.TelemetryHub.labeled` view of a shared
        one; applies to the lazily-built shared engine and to the
        per-call :meth:`lsh` engines.  Returns ``self`` for chaining.
        """
        self._hub = hub
        if self._engine is not None:
            self._engine.attach_telemetry(hub)
        return self

    def attach_tracer(self, tracer) -> "KNNShapleyValuator":
        """Trace engine-served methods through ``tracer``.

        Each of :meth:`exact`, :meth:`truncated`, :meth:`lsh` and
        :meth:`weighted` then opens a ``facade.<method>`` span over
        the engine request, so the span tree starts at the user-facing
        entry point.  Returns ``self`` for chaining.
        """
        self._tracer = tracer
        if self._engine is not None:
            self._engine.attach_tracer(tracer)
        return self

    def _facade_span(self, name: str, engine: ValuationEngine):
        return engine.tracer.span(
            f"facade.{name}", k=self.k, task=self.task, backend=engine.backend.name
        )

    # ------------------------------------------------------------------
    def utility(self):
        """The utility function of the configured game."""
        if self.task == "classification":
            return KNNClassificationUtility(self.dataset, self.k, metric=self.metric)
        return KNNRegressionUtility(self.dataset, self.k, metric=self.metric)

    # ------------------------------------------------------------------
    def exact(self) -> ValuationResult:
        """Exact values (Theorem 1 or 6), O(N log N) per test point.

        Returns:
            A :class:`~repro.types.ValuationResult` with one value per
            training point and the per-test matrix in
            ``extra["per_test"]``.
        """
        engine = self.engine()
        with self._facade_span("exact", engine):
            return engine.value(
                self.dataset.x_test,
                self.dataset.y_test,
                method="exact",
                store_per_test=True,
            )

    def truncated(self, epsilon: float = 0.1) -> ValuationResult:
        """(epsilon, 0)-approximate values by truncation (Theorem 2).

        Args:
            epsilon: Approximation target; sets the truncation rank
                ``K*`` (reported in ``extra["k_star"]``).

        Returns:
            A :class:`~repro.types.ValuationResult` within ``epsilon``
            of the exact values in max norm.

        Raises:
            ParameterError: For regression tasks (the truncation bound
                is a classification result) or ``epsilon <= 0``.
        """
        if self.task != "classification":
            raise ParameterError(
                "truncated approximation is defined for classification"
            )
        engine = self.engine()
        with self._facade_span("truncated", engine):
            return engine.value(
                self.dataset.x_test,
                self.dataset.y_test,
                method="truncated",
                epsilon=epsilon,
                store_per_test=True,
            )

    def lsh(
        self,
        epsilon: float = 0.1,
        delta: float = 0.1,
        seed: SeedLike = None,
        params=None,
        alpha: float = 0.5,
    ) -> ValuationResult:
        """(epsilon, delta)-approximate values via LSH (Theorem 4).

        Args:
            epsilon: Truncation target (as in :meth:`truncated`).
            delta: Failure probability of the retrieval guarantee.
            seed: Seed for hash sampling and tuning.
            params: Pre-tuned :class:`~repro.lsh.tuning.LSHParameters`;
                when ``None``, parameters are tuned from a relative
                contrast estimate (Section 6.1).
            alpha: Contrast-estimation subsample fraction.

        Returns:
            A :class:`~repro.types.ValuationResult`; retrieval and
            index diagnostics ride in ``extra``.

        Raises:
            ParameterError: For regression tasks or invalid
                ``epsilon``/``delta``.
        """
        if self.task != "classification":
            raise ParameterError("the LSH approximation is defined for classification")
        engine = self._instrument(
            ValuationEngine(
                self.dataset.x_train,
                self.dataset.y_train,
                self.k,
                task=self.task,
                metric=self.metric,
                backend="lsh",
                backend_options={
                    "delta": delta,
                    "params": params,
                    "alpha": alpha,
                    "seed": seed,
                },
            )
        )
        with self._facade_span("lsh", engine):
            return engine.value(
                self.dataset.x_test,
                self.dataset.y_test,
                method="lsh",
                epsilon=epsilon,
                store_per_test=True,
            )

    def monte_carlo(
        self,
        epsilon: float = 0.1,
        delta: float = 0.1,
        improved: bool = True,
        grouped: Optional[GroupedDataset] = None,
        seed: SeedLike = None,
        **kwargs,
    ) -> ValuationResult:
        """Monte Carlo estimate: Algorithm 2 (default) or the baseline.

        Args:
            epsilon: Additive error target per value.
            delta: Failure probability of the error bound.
            improved: Use the Bennett-bound estimator of Algorithm 2
                (``True``) or the permutation baseline (``False``).
            grouped: Value sellers instead of points.
            seed: Permutation-sampling seed.
            **kwargs: Forwarded to the estimator (e.g. ``max_perms``).

        Returns:
            A :class:`~repro.types.ValuationResult` whose ``extra``
            records the permutation count actually drawn.

        Raises:
            ParameterError: On invalid ``epsilon``/``delta``.
            ConvergenceError: When the Bennett bound solver fails.
        """
        utility = self.utility()
        if improved:
            target = (
                GroupedUtility(utility, grouped) if grouped is not None else utility
            )
            return improved_mc_shapley(
                target, epsilon=epsilon, delta=delta, seed=seed, **kwargs
            )
        target = GroupedUtility(utility, grouped) if grouped is not None else utility
        return baseline_mc_shapley(
            target, epsilon=epsilon, delta=delta, seed=seed, **kwargs
        )

    def weighted(
        self, weights: str = "inverse_distance", mode: str = "auto"
    ) -> ValuationResult:
        """Exact weighted-KNN values (Theorem 7).

        Served by the shared engine: the ranking and sorted distances
        are cached across calls, and ``mode="auto"`` picks the
        cheapest exact-equivalent execution path of the ``weighted``
        kernel — the O(N) K=1 collapse, the O(N·K^2) piecewise
        counting path for rank-only weight functions, or the batched
        O(N^K) configuration engine (see
        :meth:`repro.core.kernels.WeightedKernel.select_path`).  A
        backend that cannot produce full rankings (``"lsh"``) falls
        back to the single-shot path — Theorem 7 needs the whole
        ranking, whatever executes it.
        """
        engine = self.engine()
        if not engine.backend.supports_full_ranking:
            return exact_weighted_knn_shapley(
                self.dataset,
                self.k,
                weights=weights,
                task=self.task,
                metric=self.metric,
                mode=mode,
            )
        with self._facade_span("weighted", engine):
            return engine.value(
                self.dataset.x_test,
                self.dataset.y_test,
                method="weighted",
                weights=weights,
                mode=mode,
                store_per_test=True,
            )

    def grouped(self, grouped: GroupedDataset) -> ValuationResult:
        """Exact per-seller values (Theorem 8), O(M^K).

        Args:
            grouped: The point-to-seller assignment.

        Returns:
            A :class:`~repro.types.ValuationResult` with one value per
            seller (group), not per point.
        """
        return exact_grouped_knn_shapley(self.utility(), grouped)

    def composite(
        self, grouped: Optional[GroupedDataset] = None
    ) -> ValuationResult:
        """Composite-game values (Theorems 9, 10, 12); analyst last.

        Args:
            grouped: Optional seller grouping; when given, the game is
                sellers + analyst instead of points + analyst.

        Returns:
            A :class:`~repro.types.ValuationResult` whose last entry
            is the analyst's value.
        """
        if grouped is not None:
            return composite_grouped_knn_shapley(self.utility(), grouped)
        if self.task == "classification":
            return composite_knn_shapley(self.dataset, self.k, metric=self.metric)
        return composite_knn_regression_shapley(
            self.dataset, self.k, metric=self.metric
        )
