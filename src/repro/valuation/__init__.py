"""High-level valuation API: the facade and the KNN-surrogate proxy."""

from .selection import (
    CurationPoint,
    curation_curve,
    drop_harmful,
    select_by_value,
)
from .surrogate import SurrogateCalibration, calibrate_k, surrogate_values
from .valuator import KNNShapleyValuator

__all__ = [
    "KNNShapleyValuator",
    "SurrogateCalibration",
    "calibrate_k",
    "surrogate_values",
    "CurationPoint",
    "curation_curve",
    "drop_harmful",
    "select_by_value",
]
