"""The unified component-stats schema.

Every observable component in the serving stack — the rank cache, the
valuation engine, the serving queue, the neighbor backends, the
telemetry hub itself — answers ``stats()`` with one dict shape, so the
monitoring layer (:mod:`repro.monitor`) can consume any of them without
per-component adapters:

``component``
    Dotted component name, e.g. ``"backend.lsh"``.
``counters``
    Monotonic event counts (ints): requests served, cache hits,
    in-place inserts, refits, ...
``timings``
    Accumulated / last-observed durations in seconds (floats).
``gauges``
    Point-in-time levels that move both ways: live entry counts,
    tombstone ratios, tuned sizes, ...

Components may add extra keys after these four (the serving queue keeps
its legacy keys, for instance); consumers must tolerate extras but can
rely on the four schema keys always being present.
"""

from __future__ import annotations

from typing import Mapping, Optional

__all__ = ["STATS_SCHEMA_KEYS", "component_stats"]

#: The keys every component ``stats()`` dict carries.
STATS_SCHEMA_KEYS = ("component", "counters", "timings", "gauges")


def component_stats(
    component: str,
    counters: Optional[Mapping] = None,
    timings: Optional[Mapping] = None,
    gauges: Optional[Mapping] = None,
    **extra,
) -> dict:
    """Build a schema-conforming stats dict (missing sections empty)."""
    out = {
        "component": str(component),
        "counters": dict(counters or {}),
        "timings": dict(timings or {}),
        "gauges": dict(gauges or {}),
    }
    out.update(extra)
    return out
