"""Multinomial logistic regression, implemented from scratch on numpy.

The paper uses logistic regression twice: as the accuracy reference in
Figure 8 and as the "other classifier" whose Monte Carlo Shapley
values are compared with KNN Shapley values in Figure 16.  sklearn is
not a dependency of this reproduction, so this module provides a small
batch-gradient-descent trainer with L2 regularization — entirely
sufficient for both uses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ConvergenceError, NotFittedError, ParameterError
from ..rng import SeedLike, ensure_rng
from ..types import as_float_matrix, as_label_vector

__all__ = ["LogisticRegression", "softmax"]


def softmax(z: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction for numerical stability."""
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class LogisticRegression:
    """Multinomial logistic regression trained by full-batch gradient descent.

    Parameters
    ----------
    l2:
        L2 regularization strength (applied to weights, not bias).
    learning_rate:
        Gradient-descent step size.
    max_iter:
        Maximum number of epochs.
    tol:
        Stop when the loss improvement over an epoch drops below this.
    raise_on_nonconvergence:
        When True, failing to reach ``tol`` raises
        :class:`~repro.exceptions.ConvergenceError` instead of
        returning the best-effort fit.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        learning_rate: float = 0.5,
        max_iter: int = 500,
        tol: float = 1e-7,
        raise_on_nonconvergence: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if l2 < 0:
            raise ParameterError(f"l2 must be non-negative, got {l2}")
        if learning_rate <= 0:
            raise ParameterError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        if max_iter <= 0:
            raise ParameterError(f"max_iter must be positive, got {max_iter}")
        self.l2 = float(l2)
        self.learning_rate = float(learning_rate)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.raise_on_nonconvergence = bool(raise_on_nonconvergence)
        self._seed = seed
        self.weights: Optional[np.ndarray] = None  # (n_classes, d)
        self.bias: Optional[np.ndarray] = None  # (n_classes,)
        self.classes_: Optional[np.ndarray] = None
        self.n_iter_: int = 0
        self.converged_: bool = False
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _loss_and_grad(
        self,
        x: np.ndarray,
        onehot: np.ndarray,
        w: np.ndarray,
        b: np.ndarray,
    ) -> tuple[float, np.ndarray, np.ndarray]:
        n = x.shape[0]
        probs = softmax(x @ w.T + b[None, :])
        # cross-entropy + L2
        eps = 1e-12
        loss = -np.log(probs[onehot.astype(bool)] + eps).sum() / n
        loss += 0.5 * self.l2 * float((w**2).sum())
        diff = (probs - onehot) / n
        grad_w = diff.T @ x + self.l2 * w
        grad_b = diff.sum(axis=0)
        return float(loss), grad_w, grad_b

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Train on ``(x, y)``; ``y`` may be any hashable class labels.

        Features are standardized internally (zero mean, unit variance)
        so one default learning rate works across feature scales, and
        each gradient step uses backtracking: a step that increases the
        loss is rejected and the step size halved, which makes training
        robust to aggressive learning rates and large L2.
        """
        x = as_float_matrix(x, "x")
        y = as_label_vector(y, x.shape[0], "y")
        classes = np.unique(y)
        if classes.size < 2:
            raise ParameterError("need at least two classes to fit")
        self._mean = x.mean(axis=0)
        self._std = np.maximum(x.std(axis=0), 1e-8)
        x = (x - self._mean) / self._std
        class_pos = {label: p for p, label in enumerate(classes)}
        onehot = np.zeros((x.shape[0], classes.size))
        for i, label in enumerate(y):
            onehot[i, class_pos[label]] = 1.0

        rng = ensure_rng(self._seed)
        w = 0.01 * rng.standard_normal((classes.size, x.shape[1]))
        b = np.zeros(classes.size)
        step = self.learning_rate
        loss, grad_w, grad_b = self._loss_and_grad(x, onehot, w, b)
        converged = False
        it = 0
        for it in range(1, self.max_iter + 1):
            w_new = w - step * grad_w
            b_new = b - step * grad_b
            new_loss, new_gw, new_gb = self._loss_and_grad(
                x, onehot, w_new, b_new
            )
            if new_loss > loss + 1e-12:
                # Reject the step; a smaller one will be tried next.
                step *= 0.5
                if step < 1e-12:
                    converged = True
                    break
                continue
            improvement = loss - new_loss
            w, b, loss = w_new, b_new, new_loss
            grad_w, grad_b = new_gw, new_gb
            if improvement < self.tol:
                converged = True
                break
        if not converged and self.raise_on_nonconvergence:
            raise ConvergenceError(
                f"logistic regression did not converge in {self.max_iter} epochs"
            )
        self.weights = w
        self.bias = b
        self.classes_ = classes
        self.n_iter_ = it
        self.converged_ = converged
        return self

    def _require_fitted(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self.weights is None or self.bias is None or self.classes_ is None:
            raise NotFittedError("LogisticRegression.fit must be called first")
        return self.weights, self.bias, self.classes_

    # ------------------------------------------------------------------
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities, shape ``(n, n_classes)``."""
        w, b, _ = self._require_fitted()
        x = as_float_matrix(x, "x")
        x = (x - self._mean) / self._std
        return softmax(x @ w.T + b[None, :])

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        _, _, classes = self._require_fitted()
        return classes[np.argmax(self.predict_proba(x), axis=1)]

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean 0/1 accuracy."""
        pred = self.predict(x)
        y = as_label_vector(y, pred.shape[0], "y")
        return float(np.mean(pred == y))
