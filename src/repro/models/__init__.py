"""From-scratch baseline models used by the comparison experiments."""

from .logistic import LogisticRegression, softmax
from .utility_wrapper import RetrainUtility, TrainableModel

__all__ = ["LogisticRegression", "softmax", "RetrainUtility", "TrainableModel"]
