"""Retraining-based utility for arbitrary models (the expensive path).

For models without the KNN locality structure — logistic regression in
Figure 16 — the utility of a coalition is the test accuracy of the
model *retrained* on that coalition.  Every evaluation costs a full
training run, which is exactly why the paper's KNN-specific algorithms
matter; this wrapper exists so the Monte Carlo estimators can value
such models for the comparison experiments.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..exceptions import ParameterError
from ..types import Dataset
from ..utility.base import UtilityFunction

__all__ = ["RetrainUtility", "TrainableModel"]


class TrainableModel(Protocol):
    """Anything with sklearn-style fit / score."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> object: ...

    def score(self, x: np.ndarray, y: np.ndarray) -> float: ...


class RetrainUtility(UtilityFunction):
    """Utility = test score of a model retrained on the coalition.

    Parameters
    ----------
    dataset:
        Training and test data.
    model_factory:
        Zero-argument callable producing a fresh trainable model.
    fallback:
        Utility returned when the coalition cannot be trained on
        (empty, or fewer than two classes present).  The natural choice
        for accuracy utilities is chance level or 0.
    min_classes:
        Minimum distinct labels needed to attempt training.
    """

    def __init__(
        self,
        dataset: Dataset,
        model_factory: Callable[[], TrainableModel],
        fallback: float = 0.0,
        min_classes: int = 2,
    ) -> None:
        if min_classes < 1:
            raise ParameterError(f"min_classes must be >= 1, got {min_classes}")
        self.dataset = dataset
        self.model_factory = model_factory
        self.fallback = float(fallback)
        self.min_classes = int(min_classes)
        self.n_players = dataset.n_train
        self.n_evaluations = 0  # exposed so experiments can report cost

    def _evaluate(self, members: np.ndarray) -> float:
        if members.size == 0:
            return self.fallback
        y = self.dataset.y_train[members]
        if np.unique(y).size < self.min_classes:
            return self.fallback
        self.n_evaluations += 1
        model = self.model_factory()
        model.fit(self.dataset.x_train[members], y)
        return float(model.score(self.dataset.x_test, self.dataset.y_test))

    def value_bounds(self) -> tuple[float, float]:
        """Accuracy-style utilities live in [0, 1]."""
        return (min(0.0, self.fallback), max(1.0, self.fallback))
