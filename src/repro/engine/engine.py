"""Batched, cached, parallel execution of the KNN Shapley algorithms.

:class:`ValuationEngine` is the execution layer between the valuation
math in :mod:`repro.core` and a retrieval-scale workload.  It owns a
fitted :class:`~repro.engine.backends.NeighborBackend` and a
:class:`~repro.engine.cache.RankCache`, and evaluates each request by

1. splitting the test queries into chunks,
2. running chunks concurrently (``concurrent.futures`` threads — the
   heavy numpy kernels release the GIL),
3. merging the per-chunk Shapley *partial sums*.

Step 3 is lossless: by the additivity property (eq 8 of the paper) the
multi-test Shapley value is the mean of single-test values, so partial
sums over any partition of the test set merge exactly.  Chunking also
bounds memory — the ``(n_test, n_train)`` rank and per-test value
matrices of the single-shot path never fully materialize — and is what
the cache and the parallelism hang off.

The engine serves every fast path of the paper:

* ``method="exact"`` — Theorem 1 (classification) / Theorem 6
  (regression) over a full ranking; exact-search backends only.
* ``method="truncated"`` — Theorem 2 over top-``K*`` neighbors, any
  backend.
* ``method="lsh"`` — Theorem 4: the truncated recursion over an LSH
  backend's approximate neighbors.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Optional, Sequence

import numpy as np

from ..core.exact import exact_knn_shapley_from_order
from ..core.regression import regression_shapley_from_order
from ..core.truncated import truncated_values_from_labels, truncation_rank
from ..exceptions import ParameterError
from ..types import (
    Dataset,
    ValuationResult,
    as_float_matrix,
    as_label_vector,
    as_new_points,
)
from .backends import LSHNeighborBackend, NeighborBackend, make_backend
from .cache import RankCache, array_fingerprint

__all__ = ["ValuationEngine"]

_EXACT_METHODS = ("exact",)
_TOPK_METHODS = ("truncated", "lsh")


def _default_workers() -> int:
    return max(1, min(4, os.cpu_count() or 1))


class _RWLock:
    """Many concurrent readers or one exclusive writer.

    Valuations (reads) dominate and run concurrently; mutations
    (writes) are rare and must see no in-flight valuation while they
    swap the training arrays, backend index, and fingerprint as a
    unit.  No writer preference — under sustained read load a writer
    waits, which matches the serving workload (mutations are market
    events, not the hot path).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False

    @contextmanager
    def read(self):
        with self._cond:
            while self._writing:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            while self._writing or self._readers:
                self._cond.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


class ValuationEngine:
    """Fit-once valuation executor over a pluggable neighbor backend.

    Parameters
    ----------
    x_train, y_train:
        The training set being valued.
    k:
        The K of KNN.
    task:
        ``"classification"`` or ``"regression"`` (the truncated and LSH
        paths are classification-only, as in the paper).
    metric:
        Distance metric for exact backends (LSH is l2).
    backend:
        Registered backend name (``"brute"``, ``"blocked"``, ``"lsh"``)
        or a pre-built :class:`NeighborBackend`.
    backend_options:
        Keyword arguments for the backend factory (ignored when
        ``backend`` is an instance).
    cache:
        ``True`` (default) for a private :class:`RankCache`, ``False``
        to disable memoization, or a shared :class:`RankCache`.
    n_workers:
        Thread count for chunk execution; defaults to
        ``min(4, cpu_count)``.
    chunk_size:
        Test points per chunk; defaults to a size keeping each chunk's
        working set a few million elements.
    """

    def __init__(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        k: int,
        task: str = "classification",
        metric: str = "euclidean",
        backend="brute",
        backend_options: Optional[dict] = None,
        cache=True,
        n_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        if task not in ("classification", "regression"):
            raise ParameterError(
                f"task must be 'classification' or 'regression', got {task!r}"
            )
        self.x_train = as_float_matrix(x_train, "x_train")
        self.y_train = as_label_vector(y_train, self.x_train.shape[0], "y_train")
        self.k = int(k)
        self.task = task
        self.metric = metric
        options = dict(backend_options or {})
        if isinstance(backend, str) and backend in ("brute", "blocked"):
            options.setdefault("metric", metric)
        self.backend: NeighborBackend = make_backend(backend, **options)
        if (
            isinstance(self.backend, LSHNeighborBackend)
            and metric != "euclidean"
        ):
            raise ParameterError("the LSH backend supports only the l2 metric")
        self.backend.fit(self.x_train)
        if cache is True:
            self.cache: Optional[RankCache] = RankCache()
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        if n_workers is not None and n_workers <= 0:
            raise ParameterError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = int(n_workers) if n_workers else _default_workers()
        if chunk_size is not None and chunk_size <= 0:
            raise ParameterError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size
        self._train_fp = array_fingerprint(self.x_train)
        self._state_lock = _RWLock()

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: Dataset, k: int, **kwargs) -> "ValuationEngine":
        """Build an engine over a :class:`~repro.types.Dataset`'s training split."""
        return cls(dataset.x_train, dataset.y_train, k, **kwargs)

    @property
    def n_train(self) -> int:
        """Number of training points being valued."""
        return int(self.x_train.shape[0])

    # ------------------------------------------------------------------
    def _chunk_spans(self, n_test: int) -> list[tuple[int, int]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            # keep each chunk's (q, n) working set around 2^21 elements
            size = int(max(1, min(256, 2**21 // max(1, self.n_train))))
        return [(s, min(n_test, s + size)) for s in range(0, n_test, size)]

    def _run_chunks(self, worker, spans: Sequence[tuple[int, int]]) -> list:
        """Run ``worker(start, stop)`` over spans, possibly in threads.

        Results come back ordered by span so the merge — and therefore
        the floating-point summation order — is deterministic.
        """
        if self.n_workers <= 1 or len(spans) <= 1:
            return [worker(s, e) for s, e in spans]
        with ThreadPoolExecutor(
            max_workers=min(self.n_workers, len(spans))
        ) as pool:
            futures = [pool.submit(worker, s, e) for s, e in spans]
            return [f.result() for f in futures]

    def _cache_key(self, test_fp: str) -> tuple:
        return (self._train_fp, test_fp, self.backend.cache_token())

    # ------------------------------------------------------------------
    def value(
        self,
        x_test: np.ndarray,
        y_test: np.ndarray,
        method: str = "exact",
        epsilon: float = 0.1,
        store_per_test: bool = False,
    ) -> ValuationResult:
        """Shapley values of the training set for one test batch.

        Parameters
        ----------
        x_test, y_test:
            The query batch (labels of the training task's type).
        method:
            ``"exact"``, ``"truncated"``, or ``"lsh"``.
        epsilon:
            Truncation target for the approximate methods.
        store_per_test:
            Keep the full ``(n_test, n_train)`` per-test value matrix
            in ``extra["per_test"]``.  Off by default: it is the one
            thing that cannot be memory-bounded.
        """
        x_test = as_float_matrix(x_test, "x_test")
        y_test = as_label_vector(y_test, x_test.shape[0], "y_test")
        if method not in _EXACT_METHODS + _TOPK_METHODS:
            raise ParameterError(
                f"unknown method {method!r}; expected one of "
                f"{_EXACT_METHODS + _TOPK_METHODS}"
            )
        with self._state_lock.read():
            if x_test.shape[1] != self.x_train.shape[1]:
                raise ParameterError(
                    f"x_test has {x_test.shape[1]} features, expected "
                    f"{self.x_train.shape[1]}"
                )
            if method in _EXACT_METHODS:
                return self._value_exact(x_test, y_test, store_per_test)
            if method == "lsh" and not isinstance(
                self.backend, LSHNeighborBackend
            ):
                raise ParameterError(
                    "method='lsh' requires the 'lsh' backend; this engine "
                    f"runs {self.backend.name!r}"
                )
            if self.task != "classification":
                raise ParameterError(
                    "the truncated/LSH approximations are defined for "
                    "classification"
                )
            return self._value_truncated(
                x_test, y_test, epsilon, method, store_per_test
            )

    # convenience wrappers -------------------------------------------------
    def exact(self, x_test, y_test, **kwargs) -> ValuationResult:
        """Exact values (Theorem 1 / 6); see :meth:`value`."""
        return self.value(x_test, y_test, method="exact", **kwargs)

    def truncated(self, x_test, y_test, epsilon: float = 0.1, **kwargs):
        """(epsilon, 0)-approximate values (Theorem 2); see :meth:`value`."""
        return self.value(
            x_test, y_test, method="truncated", epsilon=epsilon, **kwargs
        )

    def lsh(self, x_test, y_test, epsilon: float = 0.1, **kwargs):
        """(epsilon, delta)-approximate values (Theorem 4); see :meth:`value`."""
        return self.value(x_test, y_test, method="lsh", epsilon=epsilon, **kwargs)

    # ------------------------------------------------------------------
    # dynamic datasets: mutate the training set being valued
    def add_points(self, x_new: np.ndarray, y_new: np.ndarray) -> np.ndarray:
        """Append training points; returns the indices they received.

        Runs under the exclusive side of the engine's reader-writer
        lock, so no valuation observes a half-applied mutation.  Exact
        backends absorb the append in place; the LSH backend refits
        (with a ``RuntimeWarning``).  Cached rankings of the *old*
        training set are evicted by fingerprint — entries for other
        datasets sharing the cache survive.
        """
        with self._state_lock.write():
            x_new, y_new = as_new_points(x_new, y_new, self.x_train.shape[1])
            first = self.n_train
            self.y_train = np.concatenate((self.y_train, y_new))
            self.backend.partial_fit(x_new)
            # alias the backend's index — one training-set copy, not two
            self.x_train = self.backend.data
            self._invalidate_train_fp()
            return np.arange(first, first + x_new.shape[0], dtype=np.intp)

    def remove_points(self, idx) -> None:
        """Delete training points by index (``numpy.delete`` semantics)."""
        idx = np.atleast_1d(np.asarray(idx, dtype=np.intp))
        if idx.size == 0:
            return
        with self._state_lock.write():
            # backend.forget validates range/uniqueness/non-emptiness
            # against the same n before anything is touched
            self.backend.forget(idx)
            self.x_train = self.backend.data
            self.y_train = np.delete(self.y_train, idx)
            self._invalidate_train_fp()

    def _invalidate_train_fp(self) -> None:
        old_fp = self._train_fp
        self._train_fp = array_fingerprint(self.x_train)
        if self.cache is not None:
            self.cache.invalidate(old_fp)

    # ------------------------------------------------------------------
    def _value_exact(
        self, x_test: np.ndarray, y_test: np.ndarray, store_per_test: bool
    ) -> ValuationResult:
        if not self.backend.supports_full_ranking:
            raise ParameterError(
                f"backend {self.backend.name!r} cannot produce the full "
                "rankings the exact method needs; use method='truncated' "
                "or 'lsh'"
            )
        start = time.perf_counter()
        n, n_test = self.n_train, x_test.shape[0]
        key = None
        cached_order = None
        if self.cache is not None:
            key = self._cache_key(array_fingerprint(x_test))
            cached_order = self.cache.get_ranking(key)
        spans = self._chunk_spans(n_test)
        from_order = (
            exact_knn_shapley_from_order
            if self.task == "classification"
            else regression_shapley_from_order
        )
        collect_order = (
            self.cache is not None
            and cached_order is None
            and n_test * n <= self.cache.max_entry_elements
        )

        def worker(s: int, e: int):
            if cached_order is not None:
                order = cached_order[s:e]
            else:
                order = self.backend.rank(x_test[s:e])
            _, per_test = from_order(order, self.y_train, y_test[s:e], self.k)
            partial = per_test.sum(axis=0)
            return (
                partial,
                order if collect_order else None,
                per_test if store_per_test else None,
            )

        results = self._run_chunks(worker, spans)
        total = np.zeros(n, dtype=np.float64)
        for partial, _, _ in results:
            total += partial
        values = total / n_test
        if collect_order and key is not None:
            self.cache.put_ranking(
                key, np.concatenate([r[1] for r in results], axis=0)
            )
        extra = {
            "k": self.k,
            "metric": self.metric,
            "backend": self.backend.name,
            "n_chunks": len(spans),
            "n_workers": self.n_workers,
            "cache": (
                self.cache.stats.as_dict() if self.cache is not None else None
            ),
            "elapsed_seconds": time.perf_counter() - start,
        }
        if store_per_test:
            extra["per_test"] = np.concatenate([r[2] for r in results], axis=0)
        method = "exact" if self.task == "classification" else "exact-regression"
        return ValuationResult(values=values, method=method, extra=extra)

    # ------------------------------------------------------------------
    def _value_truncated(
        self,
        x_test: np.ndarray,
        y_test: np.ndarray,
        epsilon: float,
        method: str,
        store_per_test: bool,
    ) -> ValuationResult:
        start = time.perf_counter()
        n, n_test = self.n_train, x_test.shape[0]
        k_star = truncation_rank(self.k, epsilon)
        k_eff = min(k_star, n)
        self.backend.prepare(x_test, k_eff)
        key = None
        cached_idx = None
        if self.cache is not None:
            key = self._cache_key(array_fingerprint(x_test))
            cached_idx = self.cache.get_topk(key, k_eff)
        spans = self._chunk_spans(n_test)
        exactly_k = True  # rectangular results can be cached

        def worker(s: int, e: int):
            if cached_idx is not None:
                idx_rows = cached_idx[s:e]
            else:
                idx_rows, _ = self.backend.query(x_test[s:e], k_eff)
            dense = np.zeros((e - s, n), dtype=np.float64)
            rectangular = True
            for j in range(e - s):
                row = np.asarray(idx_rows[j], dtype=np.intp)
                rectangular = rectangular and row.size == k_eff
                if row.size == 0:
                    continue
                vals = truncated_values_from_labels(
                    self.y_train[row], y_test[s + j], self.k, k_star, n_train=n
                )
                dense[j, row] = vals
            partial = dense.sum(axis=0)
            return (
                partial,
                idx_rows if cached_idx is None else None,
                rectangular,
                dense if store_per_test else None,
            )

        results = self._run_chunks(worker, spans)
        total = np.zeros(n, dtype=np.float64)
        for partial, _, rect, _ in results:
            total += partial
            exactly_k = exactly_k and rect
        values = total / n_test
        if (
            key is not None
            and cached_idx is None
            and exactly_k
            and not isinstance(self.backend, LSHNeighborBackend)
        ):
            idx = np.vstack(
                [np.asarray(r[1], dtype=np.intp).reshape(-1, k_eff) for r in results]
            )
            self.cache.put_topk(key, k_eff, idx)
        extra = {
            "k": self.k,
            "metric": self.metric,
            "backend": self.backend.name,
            "epsilon": epsilon,
            "k_star": k_star,
            "n_chunks": len(spans),
            "n_workers": self.n_workers,
            "cache": (
                self.cache.stats.as_dict() if self.cache is not None else None
            ),
            "elapsed_seconds": time.perf_counter() - start,
        }
        if isinstance(self.backend, LSHNeighborBackend):
            extra["delta"] = self.backend.delta
            extra["params"] = self.backend.params
            if self.backend.last_stats is not None:
                extra["mean_candidates"] = self.backend.last_stats.mean_candidates
        if store_per_test:
            extra["per_test"] = np.concatenate([r[3] for r in results], axis=0)
        return ValuationResult(values=values, method=method, extra=extra)
