"""Batched, cached, parallel execution of the KNN Shapley algorithms.

:class:`ValuationEngine` is the execution layer between the valuation
math in :mod:`repro.core` and a retrieval-scale workload.  It owns a
fitted :class:`~repro.engine.backends.NeighborBackend` and a
:class:`~repro.engine.cache.RankCache`, and evaluates each request by

1. splitting the test queries into chunks,
2. running chunks concurrently (``concurrent.futures`` threads — the
   heavy numpy kernels release the GIL),
3. merging the per-chunk Shapley *partial sums*.

Step 3 is lossless: by the additivity property (eq 8 of the paper) the
multi-test Shapley value is the mean of single-test values, so partial
sums over any partition of the test set merge exactly.  Chunking also
bounds memory — the ``(n_test, n_train)`` rank and per-test value
matrices of the single-shot path never fully materialize — and is what
the cache and the parallelism hang off.

The engine serves every fast path of the paper by dispatching through
the kernel registry of :mod:`repro.core.kernels` — each request builds
:class:`~repro.core.kernels.RankPlan` chunks from the backend and hands
them to the named kernel, so any registered kernel (including
third-party ones) gets batching, caching and parallel merging for
free:

* ``method="exact"`` — Theorem 1 (classification) / Theorem 6
  (regression) over a full ranking; exact-search backends only.
* ``method="truncated"`` — Theorem 2 over top-``K*`` neighbors, any
  backend.
* ``method="lsh"`` — Theorem 4: the truncated kernel over an LSH
  backend's approximate neighbors.
* ``method="weighted"`` — Theorem 7 over a full ranking with
  distances (classification eq 26 / regression eq 27).  The kernel
  picks an execution path per request (``mode="auto"``: the O(N) K=1
  collapse, the O(N·poly(K)) piecewise counting/moment paths for
  rank-only weights on either task, or the batched configuration
  engine — materialized within its memory budget, streaming past it —
  see
  :meth:`repro.core.kernels.WeightedKernel.select_path`); the chosen
  path is surfaced in ``ValuationResult.extra["weighted_path"]`` and
  counted in :meth:`ValuationEngine.stats`.
* any other name — looked up in the kernel registry and routed by its
  :class:`~repro.core.kernels.KernelCapabilities`.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Optional, Sequence

import numpy as np

from ..core.bounds import bennett_permutations, certified_epsilon
from ..core.kernels import (
    RankPlan,
    ValuationKernel,
    available_kernels,
    get_kernel,
    weighted_config_cache_stats,
)
from ..core.mcserve import mc_values_from_distances
from ..core.truncated import truncation_rank
from ..exceptions import DeadlineExceededError, ParameterError
from ..knn.distance import get_metric
from ..monitor.tracing import NOOP_TRACER
from ..stats import component_stats
from ..types import (
    Dataset,
    ValuationResult,
    as_float_matrix,
    as_label_vector,
    as_new_points,
)
from .backends import LSHNeighborBackend, NeighborBackend, make_backend
from .cache import RankCache, array_fingerprint

__all__ = ["ValuationEngine", "resolve_method_kernel"]

#: Built-in method names and the registered kernel each resolves to
#: (``None`` marks task-dependent resolution).
_METHOD_KERNELS = {
    "exact": None,  # "exact" kernel for classification, "regression" else
    "truncated": "truncated",
    "lsh": "truncated",
    "weighted": "weighted",
}


def _default_workers() -> int:
    return max(1, min(4, os.cpu_count() or 1))


def resolve_method_kernel(method: str, task: str) -> ValuationKernel:
    """Map a request ``method`` name to a registered valuation kernel.

    The single resolution rule shared by :class:`ValuationEngine` and
    the shard router (:class:`repro.engine.sharding.ShardRouter`), so a
    request means the same kernel wherever it lands.

    Args:
        method: ``"exact"``, ``"truncated"``, ``"lsh"``, ``"weighted"``,
            or any name registered via
            :func:`repro.core.kernels.register_kernel`.
        task: ``"classification"`` or ``"regression"`` — disambiguates
            ``"exact"``, which is task-dependent.

    Returns:
        The resolved :class:`~repro.core.kernels.ValuationKernel`.

    Raises:
        ParameterError: If ``method`` names neither a built-in method
            nor a registered kernel.
    """
    if method in _METHOD_KERNELS:
        name = _METHOD_KERNELS[method]
        if name is None:
            name = "exact" if task == "classification" else "regression"
        return get_kernel(name)
    if method in available_kernels():
        # third-party kernels dispatch under their registry name
        return get_kernel(method)
    raise ParameterError(
        f"unknown method {method!r}; expected one of "
        f"{tuple(_METHOD_KERNELS)} or a registered kernel "
        f"{available_kernels()}"
    )


class _RWLock:
    """Many concurrent readers or one exclusive writer.

    Valuations (reads) dominate and run concurrently; mutations
    (writes) are rare and must see no in-flight valuation while they
    swap the training arrays, backend index, and fingerprint as a
    unit.  No writer preference — under sustained read load a writer
    waits, which matches the serving workload (mutations are market
    events, not the hot path).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False

    @contextmanager
    def read(self):
        with self._cond:
            while self._writing:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            while self._writing or self._readers:
                self._cond.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


class ValuationEngine:
    """Fit-once valuation executor over a pluggable neighbor backend.

    Parameters
    ----------
    x_train, y_train:
        The training set being valued.
    k:
        The K of KNN.
    task:
        ``"classification"`` or ``"regression"`` (the truncated and LSH
        paths are classification-only, as in the paper).
    metric:
        Distance metric for exact backends (LSH is l2).
    backend:
        Registered backend name (``"brute"``, ``"blocked"``, ``"lsh"``)
        or a pre-built :class:`NeighborBackend`.
    backend_options:
        Keyword arguments for the backend factory (ignored when
        ``backend`` is an instance).
    cache:
        ``True`` (default) for a private :class:`RankCache`, ``False``
        to disable memoization, or a shared :class:`RankCache`.
    n_workers:
        Thread count for chunk execution; defaults to
        ``min(4, cpu_count)``.
    chunk_size:
        Test points per chunk; defaults to a size keeping each chunk's
        working set a few million elements.
    """

    def __init__(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        k: int,
        task: str = "classification",
        metric: str = "euclidean",
        backend="brute",
        backend_options: Optional[dict] = None,
        cache=True,
        n_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        if task not in ("classification", "regression"):
            raise ParameterError(
                f"task must be 'classification' or 'regression', got {task!r}"
            )
        self.x_train = as_float_matrix(x_train, "x_train")
        self.y_train = as_label_vector(y_train, self.x_train.shape[0], "y_train")
        self.k = int(k)
        self.task = task
        self.metric = metric
        options = dict(backend_options or {})
        if isinstance(backend, str) and backend in ("brute", "blocked"):
            options.setdefault("metric", metric)
        self.backend: NeighborBackend = make_backend(backend, **options)
        if (
            isinstance(self.backend, LSHNeighborBackend)
            and metric != "euclidean"
        ):
            raise ParameterError("the LSH backend supports only the l2 metric")
        self.backend.fit(self.x_train)
        if cache is True:
            self.cache: Optional[RankCache] = RankCache()
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        if n_workers is not None and n_workers <= 0:
            raise ParameterError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = int(n_workers) if n_workers else _default_workers()
        if chunk_size is not None and chunk_size <= 0:
            raise ParameterError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size
        self._train_fp = array_fingerprint(self.x_train)
        self._state_lock = _RWLock()
        #: optional :class:`repro.monitor.TelemetryHub` (see
        #: :meth:`attach_telemetry`)
        self.telemetry = None
        #: the request tracer; the shared no-op by default (see
        #: :meth:`attach_tracer`), so untraced serving pays nothing
        self.tracer = NOOP_TRACER
        self._ops_lock = threading.Lock()
        self._ops = {"requests": 0, "chunks": 0, "mutations": 0}
        self._timings = {
            "compute_seconds": 0.0,
            "merge_seconds": 0.0,
            "last_request_seconds": 0.0,
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: Dataset, k: int, **kwargs) -> "ValuationEngine":
        """Build an engine over a :class:`~repro.types.Dataset`'s training split."""
        return cls(dataset.x_train, dataset.y_train, k, **kwargs)

    @property
    def n_train(self) -> int:
        """Number of training points being valued."""
        return int(self.x_train.shape[0])

    # ------------------------------------------------------------------
    def _chunk_spans(self, n_test: int) -> list[tuple[int, int]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            # keep each chunk's (q, n) working set around 2^21 elements
            size = int(max(1, min(256, 2**21 // max(1, self.n_train))))
        return [(s, min(n_test, s + size)) for s in range(0, n_test, size)]

    def _run_chunks(self, worker, spans: Sequence[tuple[int, int]]) -> list:
        """Run ``worker(start, stop)`` over spans, possibly in threads.

        Results come back ordered by span so the merge — and therefore
        the floating-point summation order — is deterministic.
        """
        if self.n_workers <= 1 or len(spans) <= 1:
            return [worker(s, e) for s, e in spans]
        with ThreadPoolExecutor(
            max_workers=min(self.n_workers, len(spans))
        ) as pool:
            futures = [pool.submit(worker, s, e) for s, e in spans]
            return [f.result() for f in futures]

    def _cache_key(self, test_fp: str) -> tuple:
        return (self._train_fp, test_fp, self.backend.cache_token())

    # ------------------------------------------------------------------
    # observability and maintenance (the repro.monitor surface)
    def attach_telemetry(self, hub) -> "ValuationEngine":
        """Publish engine and backend streams into ``hub`` from now on.

        Returns ``self`` for chaining.  The hub sees per-request
        compute and partial-sum-merge timings from the engine plus the
        backend's retrieval streams; the cache keeps its own counters,
        consumed via :meth:`stats`.
        """
        self.telemetry = hub
        self.backend.telemetry = hub
        return self

    def attach_tracer(self, tracer) -> "ValuationEngine":
        """Trace every request through ``tracer`` from now on.

        Returns ``self`` for chaining.  Each served request then opens
        an ``engine.request`` root span with one ``engine.chunk`` child
        per executed chunk (each holding its ``backend.rank`` /
        ``backend.query`` retrieval and ``kernel.<name>`` spans), an
        ``engine.merge`` child, and attributes for the cache outcome
        and — for ``method="weighted"`` — the chosen execution path;
        the finished tree lands in ``ValuationResult.extra["trace"]``.
        Pass :data:`repro.monitor.NOOP_TRACER` to turn tracing off
        again.
        """
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        return self

    def _record_request(
        self, n_chunks: int, elapsed: float, merge_seconds: float
    ) -> None:
        with self._ops_lock:
            self._ops["requests"] += 1
            self._ops["chunks"] += n_chunks
            self._timings["compute_seconds"] += elapsed
            self._timings["merge_seconds"] += merge_seconds
            self._timings["last_request_seconds"] = elapsed
        hub = self.telemetry
        if hub is not None:
            hub.record("engine.request_seconds", elapsed)
            hub.record("engine.merge_seconds", merge_seconds)
            hub.record("engine.chunks", n_chunks)

    def _record_weighted_path(self, path: str) -> None:
        """Count which weighted execution path served a request."""
        key = f"weighted_path_{path}"
        with self._ops_lock:
            self._ops[key] = self._ops.get(key, 0) + 1
        hub = self.telemetry
        if hub is not None:
            hub.count(f"engine.weighted_path.{path}")

    def stats(self) -> dict:
        """Unified-schema snapshot (see :mod:`repro.stats`).

        The cache's and backend's own snapshots ride along under
        ``"cache"`` / ``"backend"`` so one call captures the engine
        stack; each nested dict follows the same schema.  The shared
        weighted configuration-array cache
        (:func:`repro.core.kernels.weighted_config_cache_stats`) rides
        along under ``"weighted_config_cache"`` — it is process-wide,
        repeated here so one engine snapshot captures it.
        """
        with self._ops_lock:
            counters = dict(self._ops)
            timings = dict(self._timings)
        return component_stats(
            "valuation_engine",
            counters=counters,
            timings=timings,
            gauges={
                "n_train": self.n_train,
                "n_workers": self.n_workers,
                "k": self.k,
            },
            cache=self.cache.stats() if self.cache is not None else None,
            backend=self.backend.stats(),
            weighted_config_cache=weighted_config_cache_stats(),
        )

    def run_exclusive(self, fn):
        """Run ``fn()`` under the exclusive side of the state lock.

        The maintenance entry point: a background scheduler re-tuning
        or compacting this engine's backend must not interleave with
        in-flight valuations (they read the backend mid-request).  Any
        cache entries keyed by the backend's *previous* result
        semantics become unreachable when the token changes, so they
        are pre-invalidated here rather than left to age out of the
        LRU.  Returns ``fn()``'s result.
        """
        with self._state_lock.write():
            token_before = self.backend.cache_token()
            try:
                return fn()
            finally:
                if (
                    self.cache is not None
                    and self.backend.cache_token() != token_before
                ):
                    self.cache.invalidate(self._train_fp)

    # ------------------------------------------------------------------
    def _resolve_kernel(self, method: str) -> ValuationKernel:
        """Map a request method to a registered valuation kernel."""
        return resolve_method_kernel(method, self.task)

    def value(
        self,
        x_test: np.ndarray,
        y_test: np.ndarray,
        method: str = "exact",
        epsilon: float = 0.1,
        store_per_test: bool = False,
        weights: str = "inverse_distance",
        mode: str = "auto",
        deadline_s: Optional[float] = None,
        delta: float = 0.05,
        n_permutations: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> ValuationResult:
        """Shapley values of the training set for one test batch.

        Parameters
        ----------
        x_test, y_test:
            The query batch (labels of the training task's type).
        method:
            ``"exact"``, ``"truncated"``, ``"lsh"``, ``"weighted"``,
            ``"mc"`` (the sort-free Monte Carlo estimator of
            :mod:`repro.core.mcserve` with a Theorem 5 certificate),
            or the name of any kernel registered with
            :func:`repro.core.kernels.register_kernel`.
        epsilon:
            Truncation target for the approximate methods; for
            ``method="mc"`` the ``(epsilon, delta)`` target that sizes
            the permutation budget via Theorem 5.
        store_per_test:
            Keep the full ``(n_test, n_train)`` per-test value matrix
            in ``extra["per_test"]``.  Off by default: it is the one
            thing that cannot be memory-bounded.
        weights:
            Weight-function name for ``method="weighted"`` (see
            :mod:`repro.knn.weights`); ignored by the other methods.
        mode:
            Execution-path selector for ``method="weighted"``
            (``"auto"`` | ``"piecewise"`` | ``"vectorized"`` |
            ``"streaming"`` | ``"reference"``, see
            :meth:`repro.core.kernels.WeightedKernel.select_path`);
            ignored by the other methods.  The resolved path lands in
            ``extra["weighted_path"]`` and the engine's path counters.
        deadline_s:
            Optional compute budget in seconds, measured from request
            entry.  Checked before every chunk: when the budget is
            already spent the request raises
            :class:`~repro.exceptions.DeadlineExceededError` instead
            of starting more work (a running chunk is never aborted
            mid-kernel, so overshoot is bounded by one chunk).
        delta:
            Failure probability for the ``method="mc"`` certificate;
            ignored by the other methods.
        n_permutations:
            Explicit permutation count for ``method="mc"``; ``None``
            (default) sizes the budget from ``(epsilon, delta)`` via
            Theorem 5.  An explicit count is inverted back into the
            epsilon it certifies.
        seed:
            Seed for the ``method="mc"`` permutation stream; ``None``
            draws fresh entropy.
        """
        x_test = as_float_matrix(x_test, "x_test")
        y_test = as_label_vector(y_test, x_test.shape[0], "y_test")
        check_deadline = self._deadline_check(deadline_s)
        if method == "mc":
            # Monte Carlo serves from raw distances — no kernel, no
            # ranking — so it dispatches before kernel resolution
            return self._value_mc(
                x_test, y_test, epsilon, delta, n_permutations, seed,
                store_per_test, check_deadline,
            )
        kernel = self._resolve_kernel(method)
        caps = kernel.capabilities
        with self._state_lock.read():
            if x_test.shape[1] != self.x_train.shape[1]:
                raise ParameterError(
                    f"x_test has {x_test.shape[1]} features, expected "
                    f"{self.x_train.shape[1]}"
                )
            if self.task != "classification" and not caps.supports_regression:
                raise ParameterError(
                    "the truncated/LSH approximations are defined for "
                    "classification"
                )
            if method == "lsh" and not isinstance(
                self.backend, LSHNeighborBackend
            ):
                raise ParameterError(
                    "method='lsh' requires the 'lsh' backend; this engine "
                    f"runs {self.backend.name!r}"
                )
            params: dict = {}
            if kernel.name == "weighted":
                params = {"weights": weights, "task": self.task, "mode": mode}
            with self.tracer.span(
                "engine.request",
                method=method,
                kernel=kernel.name,
                backend=self.backend.name,
                n_test=int(x_test.shape[0]),
                n_train=self.n_train,
            ) as root:
                if caps.needs_full_ranking:
                    result = self._value_ranked(
                        kernel, method, x_test, y_test, params,
                        store_per_test, root, check_deadline,
                    )
                else:
                    result = self._value_topk(
                        kernel, method, x_test, y_test, epsilon,
                        store_per_test, root, check_deadline,
                    )
            if root:
                # summarized after the span closed, so the root's own
                # duration is final when it lands in the result
                result.extra["trace"] = root.summary()
            return result

    @staticmethod
    def _deadline_check(deadline_s: Optional[float]):
        """Closure raising once ``deadline_s`` is spent; ``None`` → no-op."""
        if deadline_s is None:
            return lambda: None
        if deadline_s <= 0:
            raise DeadlineExceededError(
                f"deadline budget already spent ({deadline_s:.4f}s remaining)",
                deadline_s=float(deadline_s),
                elapsed_s=0.0,
            )
        t0 = time.perf_counter()

        def check() -> None:
            elapsed = time.perf_counter() - t0
            if elapsed >= deadline_s:
                raise DeadlineExceededError(
                    f"deadline of {deadline_s:.4f}s exceeded after "
                    f"{elapsed:.4f}s",
                    deadline_s=float(deadline_s),
                    elapsed_s=elapsed,
                )

        return check

    def run(self, *args, **kwargs) -> ValuationResult:
        """Alias of :meth:`value` (the serving-layer verb)."""
        return self.value(*args, **kwargs)

    # convenience wrappers -------------------------------------------------
    def exact(self, x_test, y_test, **kwargs) -> ValuationResult:
        """Exact values (Theorem 1 / 6); see :meth:`value`."""
        return self.value(x_test, y_test, method="exact", **kwargs)

    def truncated(self, x_test, y_test, epsilon: float = 0.1, **kwargs):
        """(epsilon, 0)-approximate values (Theorem 2); see :meth:`value`."""
        return self.value(
            x_test, y_test, method="truncated", epsilon=epsilon, **kwargs
        )

    def lsh(self, x_test, y_test, epsilon: float = 0.1, **kwargs):
        """(epsilon, delta)-approximate values (Theorem 4); see :meth:`value`."""
        return self.value(x_test, y_test, method="lsh", epsilon=epsilon, **kwargs)

    def weighted(self, x_test, y_test, weights: str = "inverse_distance", **kwargs):
        """Exact weighted-KNN values (Theorem 7); see :meth:`value`."""
        return self.value(
            x_test, y_test, method="weighted", weights=weights, **kwargs
        )

    # ------------------------------------------------------------------
    def retrieve(
        self, x_test: np.ndarray, k: Optional[int] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ranked retrieval over this engine's training set, no valuation.

        The building block of the sharded tier
        (:class:`repro.engine.sharding.ShardRouter`): each shard engine
        answers retrieval for its slice and the router merges the
        sorted results exactly before running the kernel once.  Runs
        under the read side of the engine lock and reuses the rank
        cache, so interleaved ``retrieve``/``value`` traffic shares
        work.

        Args:
            x_test: Query batch, shape ``(n_test, n_features)``.
            k: ``None`` (default) returns the full distance-sorted
                ranking — ties broken by training index — via
                ``backend.rank_with_distances``.  An integer returns
                the top ``min(k, n_train)`` neighbors per query via
                ``backend.query`` (rows may be ragged for candidate-set
                backends such as LSH).

        Returns:
            ``(order, distances)`` — for ``k=None`` two
            ``(n_test, n_train)`` arrays; for integer ``k`` the
            backend's neighbor rows and their distances.

        Raises:
            ParameterError: If the feature count mismatches the
                training set, ``k`` is not positive, or ``k=None`` on
                a backend without full-ranking support.
        """
        x_test = as_float_matrix(x_test, "x_test")
        if k is not None and k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        with self._state_lock.read():
            if x_test.shape[1] != self.x_train.shape[1]:
                raise ParameterError(
                    f"x_test has {x_test.shape[1]} features, expected "
                    f"{self.x_train.shape[1]}"
                )
            start = time.perf_counter()
            with self.tracer.span(
                "engine.retrieve",
                backend=self.backend.name,
                n_test=int(x_test.shape[0]),
                k=-1 if k is None else int(k),
            ) as span:
                if k is None:
                    if not self.backend.supports_full_ranking:
                        raise ParameterError(
                            f"backend {self.backend.name!r} cannot produce "
                            "full rankings; retrieve with an explicit k"
                        )
                    out = self._retrieve_ranked(x_test, span)
                else:
                    k_eff = min(int(k), self.n_train)
                    self.backend.prepare(x_test, k_eff)
                    out = self.backend.query(x_test, k_eff)
            hub = self.telemetry
            if hub is not None:
                hub.count("engine.retrievals")
                hub.record(
                    "engine.retrieve_seconds", time.perf_counter() - start
                )
            return out

    def _retrieve_ranked(self, x_test: np.ndarray, span):
        """Full-ranking retrieval through the rank cache."""
        key = None
        if self.cache is not None:
            key = self._cache_key(array_fingerprint(x_test))
            got = self.cache.get_ranking_with_distances(key)
            if got is not None:
                span.set("cache", "hit")
                return got
            span.set("cache", "miss")
        else:
            span.set("cache", "off")
        order, dist = self.backend.rank_with_distances(x_test)
        if (
            key is not None
            and order.size <= self.cache.max_entry_elements
        ):
            self.cache.put_ranking(key, order, distances=dist)
        return order, dist

    def distances(self, x_test: np.ndarray) -> np.ndarray:
        """Raw test-to-train distances, no ranking and no sort.

        The retrieval primitive of the Monte Carlo serving rung
        (:mod:`repro.core.mcserve`): the estimator scans distances in
        permutation order, so sorting them first would forfeit the
        rung's entire latency advantage.  The sharded tier fans this
        out per shard and concatenates columns by placement.  Runs
        under the read side of the engine lock against the backend's
        live training matrix.

        Args:
            x_test: Query batch, shape ``(n_test, n_features)``.

        Returns:
            ``(n_test, n_train)`` float64 distances under this
            engine's metric.
        """
        x_test = as_float_matrix(x_test, "x_test")
        with self._state_lock.read():
            if x_test.shape[1] != self.x_train.shape[1]:
                raise ParameterError(
                    f"x_test has {x_test.shape[1]} features, expected "
                    f"{self.x_train.shape[1]}"
                )
            start = time.perf_counter()
            dist = get_metric(self.metric)(x_test, self.backend.data)
            hub = self.telemetry
            if hub is not None:
                hub.count("engine.distance_scans")
                hub.record(
                    "engine.distances_seconds", time.perf_counter() - start
                )
            return dist

    # ------------------------------------------------------------------
    # dynamic datasets: mutate the training set being valued
    def add_points(self, x_new: np.ndarray, y_new: np.ndarray) -> np.ndarray:
        """Append training points; returns the indices they received.

        Runs under the exclusive side of the engine's reader-writer
        lock, so no valuation observes a half-applied mutation.  Exact
        backends absorb the append in place; the LSH backend inserts
        into its existing buckets and only falls back to a warned
        refit when ``n`` drifts beyond its tuned size.  Cached
        rankings of the *old* training set are evicted by fingerprint
        — entries for other datasets sharing the cache survive.
        """
        with self._state_lock.write():
            with self.tracer.span("engine.mutate", kind="add") as span:
                x_new, y_new = as_new_points(x_new, y_new, self.x_train.shape[1])
                span.set("n_points", int(x_new.shape[0]))
                first = self.n_train
                self.y_train = np.concatenate((self.y_train, y_new))
                self.backend.partial_fit(x_new)
                # alias the backend's index — one training-set copy, not two
                self.x_train = self.backend.data
                self._invalidate_train_fp()
                return np.arange(first, first + x_new.shape[0], dtype=np.intp)

    def remove_points(self, idx) -> None:
        """Delete training points by index (``numpy.delete`` semantics)."""
        idx = np.atleast_1d(np.asarray(idx, dtype=np.intp))
        if idx.size == 0:
            return
        with self._state_lock.write():
            with self.tracer.span(
                "engine.mutate", kind="remove", n_points=int(idx.size)
            ):
                # backend.forget validates range/uniqueness/non-emptiness
                # against the same n before anything is touched
                self.backend.forget(idx)
                self.x_train = self.backend.data
                self.y_train = np.delete(self.y_train, idx)
                self._invalidate_train_fp()

    def _invalidate_train_fp(self) -> None:
        old_fp = self._train_fp
        self._train_fp = array_fingerprint(self.x_train)
        if self.cache is not None:
            self.cache.invalidate(old_fp)
        with self._ops_lock:
            self._ops["mutations"] += 1
        hub = self.telemetry
        if hub is not None:
            hub.count("engine.mutations")

    # ------------------------------------------------------------------
    def _value_ranked(
        self,
        kernel: ValuationKernel,
        method: str,
        x_test: np.ndarray,
        y_test: np.ndarray,
        params: dict,
        store_per_test: bool,
        root,
        check_deadline=lambda: None,
    ) -> ValuationResult:
        """Generic chunked execution of a full-ranking kernel.

        ``root`` is the request's root :class:`~repro.monitor.tracing.Span`
        (the shared null span when tracing is off); chunk spans parent
        to it *explicitly* because pool threads do not inherit the
        caller's context.
        """
        if not self.backend.supports_full_ranking:
            raise ParameterError(
                f"backend {self.backend.name!r} cannot produce the full "
                f"rankings the {method!r} method needs; use "
                "method='truncated' or 'lsh'"
            )
        weighted_path = None
        if kernel.name == "weighted" and hasattr(kernel, "select_path"):
            # resolve (and validate) the execution path once up front —
            # the choice is deterministic, so every chunk takes it
            weighted_path = kernel.select_path(
                self.k,
                params.get("weights", "inverse_distance"),
                task=params.get("task", "classification"),
                mode=params.get("mode", "auto"),
                n_train=self.n_train,
            )
            self._record_weighted_path(weighted_path)
            root.set("weighted_path", weighted_path)
        start = time.perf_counter()
        n, n_test = self.n_train, x_test.shape[0]
        need_dist = kernel.capabilities.needs_distances
        key = None
        cached_order = None
        cached_dist = None
        if self.cache is not None:
            key = self._cache_key(array_fingerprint(x_test))
            if need_dist:
                got = self.cache.get_ranking_with_distances(key)
                if got is not None:
                    cached_order, cached_dist = got
            else:
                cached_order = self.cache.get_ranking(key)
            root.set("cache", "hit" if cached_order is not None else "miss")
        else:
            root.set("cache", "off")
        spans = self._chunk_spans(n_test)
        collect_order = (
            self.cache is not None
            and cached_order is None
            and n_test * n <= self.cache.max_entry_elements
        )
        tracer = self.tracer

        def worker(s: int, e: int):
            check_deadline()
            with tracer.span("engine.chunk", parent=root, start=s, stop=e) as chunk:
                dist = None
                if cached_order is not None:
                    order = cached_order[s:e]
                    if need_dist:
                        dist = cached_dist[s:e]
                else:
                    with tracer.span(
                        "backend.rank", parent=chunk, backend=self.backend.name
                    ):
                        if need_dist:
                            order, dist = self.backend.rank_with_distances(
                                x_test[s:e]
                            )
                        else:
                            order = self.backend.rank(x_test[s:e])
                plan = RankPlan.from_order(
                    order, self.y_train, y_test[s:e], distances=dist
                )
                with tracer.span(f"kernel.{kernel.name}", parent=chunk):
                    per_test = kernel.values_from_plan(plan, self.k, **params)
                partial = per_test.sum(axis=0)
                return (
                    partial,
                    order if collect_order else None,
                    dist if (collect_order and need_dist) else None,
                    per_test if store_per_test else None,
                )

        results = self._run_chunks(worker, spans)
        with tracer.span("engine.merge", parent=root, n_chunks=len(spans)):
            merge_start = time.perf_counter()
            total = np.zeros(n, dtype=np.float64)
            for partial, _, _, _ in results:
                total += partial
            values = total / n_test
            merge_seconds = time.perf_counter() - merge_start
        if collect_order and key is not None:
            self.cache.put_ranking(
                key,
                np.concatenate([r[1] for r in results], axis=0),
                distances=(
                    np.concatenate([r[2] for r in results], axis=0)
                    if need_dist
                    else None
                ),
            )
        elapsed = time.perf_counter() - start
        self._record_request(len(spans), elapsed, merge_seconds)
        extra = {
            "k": self.k,
            "metric": self.metric,
            "backend": self.backend.name,
            "kernel": kernel.name,
            "n_chunks": len(spans),
            "n_workers": self.n_workers,
            "cache": (
                self.cache.stats.as_dict() if self.cache is not None else None
            ),
            "elapsed_seconds": elapsed,
        }
        if kernel.name == "weighted":
            extra["weights"] = params.get("weights")
            extra["task"] = params.get("task")
            extra["mode"] = params.get("mode")
            extra["weighted_path"] = weighted_path
        if store_per_test:
            extra["per_test"] = np.concatenate([r[3] for r in results], axis=0)
        if method == "exact":
            out_method = (
                "exact" if self.task == "classification" else "exact-regression"
            )
        elif method == "weighted":
            out_method = "exact-weighted"
        else:
            out_method = method
        return ValuationResult(values=values, method=out_method, extra=extra)

    # ------------------------------------------------------------------
    def _value_topk(
        self,
        kernel: ValuationKernel,
        method: str,
        x_test: np.ndarray,
        y_test: np.ndarray,
        epsilon: float,
        store_per_test: bool,
        root,
        check_deadline=lambda: None,
    ) -> ValuationResult:
        """Generic chunked execution of a top-``K*`` (prefix) kernel.

        ``root`` is the request's root span (the shared null span when
        tracing is off), explicitly parented into the chunk workers.
        """
        start = time.perf_counter()
        n, n_test = self.n_train, x_test.shape[0]
        k_star = truncation_rank(self.k, epsilon)
        k_eff = min(k_star, n)
        tracer = self.tracer
        with tracer.span("backend.prepare", parent=root, k=k_eff):
            self.backend.prepare(x_test, k_eff)
        key = None
        cached_idx = None
        if self.cache is not None:
            key = self._cache_key(array_fingerprint(x_test))
            cached_idx = self.cache.get_topk(key, k_eff)
            root.set("cache", "hit" if cached_idx is not None else "miss")
        else:
            root.set("cache", "off")
        root.set("k_star", k_star)
        spans = self._chunk_spans(n_test)
        exactly_k = True  # rectangular results can be cached

        def worker(s: int, e: int):
            check_deadline()
            with tracer.span("engine.chunk", parent=root, start=s, stop=e) as chunk:
                if cached_idx is not None:
                    idx_rows = cached_idx[s:e]
                else:
                    with tracer.span(
                        "backend.query", parent=chunk, backend=self.backend.name
                    ):
                        idx_rows, _ = self.backend.query(x_test[s:e], k_eff)
                rectangular = all(
                    np.asarray(row).shape[0] == k_eff for row in idx_rows
                )
                plan = RankPlan.from_neighbor_rows(
                    idx_rows, self.y_train, y_test[s:e]
                )
                with tracer.span(f"kernel.{kernel.name}", parent=chunk):
                    dense = kernel.values_from_plan(
                        plan, self.k, k_star=k_star, exact_anchor=True
                    )
                partial = dense.sum(axis=0)
                return (
                    partial,
                    idx_rows if cached_idx is None else None,
                    rectangular,
                    dense if store_per_test else None,
                )

        results = self._run_chunks(worker, spans)
        with tracer.span("engine.merge", parent=root, n_chunks=len(spans)):
            merge_start = time.perf_counter()
            total = np.zeros(n, dtype=np.float64)
            for partial, _, rect, _ in results:
                total += partial
                exactly_k = exactly_k and rect
            values = total / n_test
            merge_seconds = time.perf_counter() - merge_start
        if (
            key is not None
            and cached_idx is None
            and exactly_k
            and not isinstance(self.backend, LSHNeighborBackend)
        ):
            idx = np.vstack(
                [np.asarray(r[1], dtype=np.intp).reshape(-1, k_eff) for r in results]
            )
            self.cache.put_topk(key, k_eff, idx)
        elapsed = time.perf_counter() - start
        self._record_request(len(spans), elapsed, merge_seconds)
        extra = {
            "k": self.k,
            "metric": self.metric,
            "backend": self.backend.name,
            "kernel": kernel.name,
            "epsilon": epsilon,
            "k_star": k_star,
            "n_chunks": len(spans),
            "n_workers": self.n_workers,
            "cache": (
                self.cache.stats.as_dict() if self.cache is not None else None
            ),
            "elapsed_seconds": elapsed,
        }
        if isinstance(self.backend, LSHNeighborBackend):
            extra["delta"] = self.backend.delta
            extra["params"] = self.backend.params
            if self.backend.last_stats is not None:
                extra["mean_candidates"] = self.backend.last_stats.mean_candidates
        if store_per_test:
            extra["per_test"] = np.concatenate([r[3] for r in results], axis=0)
        return ValuationResult(values=values, method=method, extra=extra)

    # ------------------------------------------------------------------
    def _value_mc(
        self,
        x_test: np.ndarray,
        y_test: np.ndarray,
        epsilon: float,
        delta: float,
        n_permutations: Optional[int],
        seed: Optional[int],
        store_per_test: bool,
        check_deadline,
    ) -> ValuationResult:
        """Sort-free Monte Carlo estimation with a Theorem 5 certificate.

        The overload rung of the precision ladder: cost is
        ``T * O(K ln N)`` heap events over raw distances per test
        point, with ``T`` independent of N for fixed ``(epsilon,
        delta)`` (Figure 11's flattening curve) — no ranking, no sort,
        no kernel.  Chunk results merge by eq 8 additivity exactly
        like the other paths, and each chunk draws its permutations
        from its own spawned child stream so the output is
        deterministic in ``seed`` regardless of thread scheduling.
        """
        if self.task != "classification":
            raise ParameterError(
                "method='mc' replays the unweighted KNN classification "
                "utility and is defined for classification only"
            )
        r = 1.0 / self.k
        with self._state_lock.read():
            if x_test.shape[1] != self.x_train.shape[1]:
                raise ParameterError(
                    f"x_test has {x_test.shape[1]} features, expected "
                    f"{self.x_train.shape[1]}"
                )
            start = time.perf_counter()
            n, n_test = self.n_train, x_test.shape[0]
            if n_permutations is None:
                t_budget = bennett_permutations(
                    epsilon, delta, n, self.k, r
                )
                cert_eps = float(epsilon)
            else:
                if n_permutations <= 0:
                    raise ParameterError(
                        "n_permutations must be positive, got "
                        f"{n_permutations}"
                    )
                t_budget = int(n_permutations)
                # an explicit budget certifies the epsilon it buys,
                # not the one the caller asked for
                cert_eps = certified_epsilon(
                    t_budget, delta, n, self.k, r
                )
            spans = self._chunk_spans(n_test)
            streams = np.random.SeedSequence(seed).spawn(len(spans))
            metric_fn = get_metric(self.metric)
            data = self.backend.data
            y_train = self.y_train
            tracer = self.tracer
            with tracer.span(
                "engine.request",
                method="mc",
                backend=self.backend.name,
                n_test=n_test,
                n_train=n,
                n_permutations=t_budget,
            ) as root:

                def worker(s: int, e: int):
                    check_deadline()
                    with tracer.span(
                        "engine.chunk", parent=root, start=s, stop=e
                    ) as chunk:
                        with tracer.span("engine.distances", parent=chunk):
                            dist = metric_fn(x_test[s:e], data)
                        match = (
                            y_train[None, :] == y_test[s:e, None]
                        ).astype(np.float64)
                        with tracer.span("kernel.mcserve", parent=chunk):
                            per_test = mc_values_from_distances(
                                dist,
                                match,
                                self.k,
                                t_budget,
                                np.random.default_rng(streams[spans.index((s, e))]),
                            )
                        return (
                            per_test.sum(axis=0),
                            per_test if store_per_test else None,
                        )

                results = self._run_chunks(worker, spans)
                with tracer.span(
                    "engine.merge", parent=root, n_chunks=len(spans)
                ):
                    merge_start = time.perf_counter()
                    total = np.zeros(n, dtype=np.float64)
                    for partial, _ in results:
                        total += partial
                    values = total / n_test
                    merge_seconds = time.perf_counter() - merge_start
            elapsed = time.perf_counter() - start
            self._record_request(len(spans), elapsed, merge_seconds)
            extra = {
                "k": self.k,
                "metric": self.metric,
                "backend": self.backend.name,
                "kernel": "mcserve",
                "epsilon": cert_eps,
                "delta": float(delta),
                "n_permutations": t_budget,
                "certificate": {
                    "epsilon": cert_eps,
                    "delta": float(delta),
                    "n_permutations": t_budget,
                    "bound": "bennett-theorem5",
                },
                "n_chunks": len(spans),
                "n_workers": self.n_workers,
                "elapsed_seconds": elapsed,
            }
            if store_per_test:
                extra["per_test"] = np.concatenate(
                    [r[1] for r in results], axis=0
                )
            if root:
                extra["trace"] = root.summary()
            return ValuationResult(values=values, method="mc", extra=extra)
