"""Queue-based serving of concurrent valuation requests.

The serving story of Section 3.2: a deployed system receives valuation
requests — batches of test queries against the training set — from
many clients at once.  :class:`ValuationService` puts a thread pool in
front of a :class:`~repro.engine.engine.ValuationEngine`: requests
enter a bounded queue as :class:`ValuationJob` handles, workers drain
the queue, and every job records its own latency split (queue wait vs
compute) so an operator can see where time goes under load.

Dynamic datasets ride the same queue: a :class:`MutationRequest`
(sellers joining or leaving) is just another job, applied atomically
under the engine's reader-writer lock — every valuation sees a fully
before- or fully after-mutation training set, never a torn one.  Jobs
are *popped* in submission order, but with more than one worker they
execute concurrently, so only a single-worker service guarantees that
a valuation submitted after a mutation observes it; multi-worker
clients that need that ordering should wait on the mutation job's
``result()`` first.

Because the engine is fit-once and its backends and cache are
thread-safe for reads, all workers share one engine: the index is
built once, and a ranking cached by one job is a hit for every
subsequent job over the same queries.
"""

from __future__ import annotations

import itertools
import math
import queue
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Optional, Union

import numpy as np

from ..exceptions import (
    AdmissionRejectedError,
    DeadlineExceededError,
    ParameterError,
)
from ..monitor.telemetry import Histogram
from ..monitor.tracing import NOOP_TRACER, TraceContext
from ..stats import component_stats
from ..types import ValuationResult
from .engine import ValuationEngine

__all__ = [
    "ValuationRequest",
    "MutationRequest",
    "MutationResult",
    "ValuationJob",
    "ValuationService",
]


@dataclass(frozen=True)
class ValuationRequest:
    """One unit of serving work: value the training set for a test batch.

    Attributes
    ----------
    x_test, y_test:
        The query batch.
    method:
        ``"exact"``, ``"truncated"``, ``"lsh"``, ``"weighted"``, or
        any registered kernel name (see :mod:`repro.core.kernels`).
    epsilon:
        Truncation target for the approximate methods.
    weights:
        Weight-function name for ``method="weighted"``.
    mode:
        Execution-path selector for ``method="weighted"`` (``"auto"``
        picks the cheapest exact-equivalent path).
    store_per_test:
        Forwarded to :meth:`ValuationEngine.value`.
    tag:
        Free-form client identifier echoed in job stats.
    trace:
        Optional :class:`~repro.monitor.tracing.TraceContext` the
        served job should join.  Normally left ``None``:
        :meth:`ValuationService.submit` captures the submitting
        thread's current trace position automatically, which is how a
        job executed on a worker thread attaches to its caller's
        trace.
    deadline_ms:
        Optional end-to-end budget in milliseconds, measured from
        submission.  A job whose budget is spent on queue wait fails
        with :class:`~repro.exceptions.DeadlineExceededError` without
        touching the engine; otherwise the *remaining* budget
        propagates into the engine (and, through a sharded engine,
        shrinks per hop).
    priority:
        Higher runs first (0 default).  Ties drain in submission
        order.
    """

    x_test: np.ndarray
    y_test: np.ndarray
    method: str = "exact"
    epsilon: float = 0.1
    store_per_test: bool = False
    tag: str = ""
    # appended last: positional construction predating these fields
    # keeps its meaning
    weights: str = "inverse_distance"
    mode: str = "auto"
    trace: Optional[TraceContext] = None
    deadline_ms: Optional[float] = None
    priority: int = 0


@dataclass(frozen=True)
class MutationRequest:
    """One training-set mutation: sellers joining or leaving the market.

    Mutations ride the same queue as valuations; the engine's
    reader-writer lock keeps each one atomic with respect to
    concurrently running valuations.  (Submission order is the
    *execution* order only for a single-worker service — see the
    module docstring.)

    Attributes
    ----------
    kind:
        ``"add"`` (requires ``x``, ``y``) or ``"remove"`` (requires
        ``idx``, ``numpy.delete`` semantics).
    x, y:
        Points and labels to append.
    idx:
        Training indices to delete.
    tag:
        Free-form client identifier echoed in job stats.
    trace:
        Optional carried :class:`~repro.monitor.tracing.TraceContext`
        (see :class:`ValuationRequest`; captured automatically by
        :meth:`ValuationService.submit`).
    """

    kind: str
    x: Optional[np.ndarray] = None
    y: Optional[np.ndarray] = None
    idx: Optional[np.ndarray] = None
    tag: str = ""
    trace: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        if self.kind not in ("add", "remove"):
            raise ParameterError(
                f"kind must be 'add' or 'remove', got {self.kind!r}"
            )
        if self.kind == "add" and (self.x is None or self.y is None):
            raise ParameterError("an 'add' mutation requires x and y")
        if self.kind == "remove" and self.idx is None:
            raise ParameterError("a 'remove' mutation requires idx")


@dataclass(frozen=True)
class MutationResult:
    """Outcome of a served :class:`MutationRequest`.

    Attributes
    ----------
    kind:
        Echo of the request kind.
    indices:
        Indices the new points received (``"add"``) or the indices
        removed (``"remove"``).
    n_train:
        Training-set size after the mutation.
    extra:
        Free-form provenance.
    """

    kind: str
    indices: np.ndarray
    n_train: int
    extra: dict = field(default_factory=dict)


class ValuationJob:
    """Handle for a submitted request; thread-safe future-like object.

    A job moves ``queued -> running -> done | failed`` (or ``queued ->
    cancelled``).  :meth:`result` blocks until settled.
    """

    def __init__(
        self, job_id: int, request: Union[ValuationRequest, MutationRequest]
    ) -> None:
        self.job_id = job_id
        self.request = request
        self.status = "queued"
        self.error: BaseException | None = None
        self.submitted_at = time.perf_counter()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._result: ValuationResult | MutationResult | None = None
        self._done = threading.Event()

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the job has settled (done, failed, or cancelled)."""
        return self._done.is_set()

    @property
    def queue_seconds(self) -> Optional[float]:
        """Time spent waiting in the queue, once running."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def compute_seconds(self) -> Optional[float]:
        """Time spent inside the engine, once settled."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def result(
        self, timeout: Optional[float] = None
    ) -> Union[ValuationResult, MutationResult]:
        """Block until the job settles and return its result.

        Raises
        ------
        TimeoutError
            If the job does not settle within ``timeout`` seconds.
        Exception
            Re-raises whatever the engine raised when the job failed.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} not finished within {timeout}s"
            )
        if self.status == "failed":
            assert self.error is not None
            raise self.error
        if self.status == "cancelled":
            raise ParameterError(f"job {self.job_id} was cancelled")
        assert self._result is not None
        return self._result

    def stats(self) -> dict:
        """Per-job bookkeeping snapshot."""
        if isinstance(self.request, MutationRequest):
            method = f"mutate-{self.request.kind}"
            n_test = 0
        else:
            method = self.request.method
            n_test = int(np.atleast_2d(self.request.x_test).shape[0])
        return {
            "job_id": self.job_id,
            "tag": self.request.tag,
            "method": method,
            "n_test": n_test,
            "status": self.status,
            "queue_seconds": self.queue_seconds,
            "compute_seconds": self.compute_seconds,
        }


_SENTINEL = object()


class ValuationService:
    """Thread-pool runner multiplexing requests over one engine.

    Parameters
    ----------
    engine:
        The shared :class:`ValuationEngine` (or any object with its
        ``value`` surface, e.g. a
        :class:`~repro.engine.sharding.ShardRouter`).
    n_workers:
        Worker threads draining the queue.
    max_queue:
        Bound on queued jobs; 0 means unbounded.  What happens at the
        bound is the ``admission`` policy's call.
    admission:
        ``"block"`` (default): ``submit`` blocks while the queue is
        full — the pre-existing backpressure behavior.  ``"shed"``:
        a full queue rejects the submission immediately with
        :class:`~repro.exceptions.AdmissionRejectedError` (requires
        ``max_queue > 0``), which is the load-shedding half of the
        overload story — the precision ladder is the other half.
    degradation:
        Optional
        :class:`~repro.engine.degradation.DegradationController`.
        When attached, ``method="exact"`` valuation requests are
        re-planned per job onto the controller's precision rung —
        exact when idle, Theorem-2 truncation under pressure, Monte
        Carlo with a Theorem-5 certificate under overload — and
        non-exact servings record the rung, its parameters, and the
        certified error bound in ``result.extra["degraded"]``.
        Requests for any other method are served as asked.

    Use as a context manager, or call :meth:`shutdown` explicitly.
    """

    def __init__(
        self,
        engine: ValuationEngine,
        n_workers: int = 2,
        max_queue: int = 0,
        admission: str = "block",
        degradation=None,
    ) -> None:
        if n_workers <= 0:
            raise ParameterError(f"n_workers must be positive, got {n_workers}")
        if admission not in ("block", "shed"):
            raise ParameterError(
                f"admission must be 'block' or 'shed', got {admission!r}"
            )
        if admission == "shed" and max_queue <= 0:
            raise ParameterError(
                "admission='shed' needs a bounded queue (max_queue > 0)"
            )
        self.engine = engine
        self.n_workers = int(n_workers)
        self.max_queue = int(max_queue)
        self.admission = admission
        self.degradation = degradation
        # priority queue entries are (-priority, seq, job): higher
        # priority first, submission order within a priority band, and
        # the seq tiebreak means job objects are never compared
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue(
            maxsize=max_queue
        )
        self._seq = itertools.count()
        self._jobs: dict[int, ValuationJob] = {}
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._shutdown = False
        self._sheds = 0
        self._deadline_misses = 0
        self._last_shed: Optional[float] = None
        #: seconds after the last rejection during which
        #: :meth:`resilience` still reports ``shedding`` — keeps the
        #: readiness probe latched long enough for a poller to see it
        self.shed_window = 5.0
        # per-job latency distributions: bounded-memory histograms (the
        # stats()/export surface for p50/p95/p99), fed at job settle
        self._hist_lock = threading.Lock()
        self._queue_hist = Histogram()
        self._compute_hist = Histogram()
        self._workers = [
            threading.Thread(target=self._worker, daemon=True, name=f"valuation-{i}")
            for i in range(self.n_workers)
        ]
        for w in self._workers:
            w.start()

    # ------------------------------------------------------------------
    def _put_sentinel(self) -> None:
        """Enqueue a worker-retirement marker below every real job."""
        self._queue.put((math.inf, next(self._seq), _SENTINEL))

    def _worker(self) -> None:
        while True:
            _, _, item = self._queue.get()
            try:
                if item is _SENTINEL:
                    return
                job: ValuationJob = item
                job.started_at = time.perf_counter()
                job.status = "running"
                req = job.request
                tracer = getattr(self.engine, "tracer", None) or NOOP_TRACER
                # re-enter the submitter's trace: worker threads do not
                # inherit the caller's context, so the job carries its
                # TraceContext across the queue and re-activates it here
                with tracer.activate(req.trace):
                    with tracer.span(
                        "service.job", job_id=job.job_id, tag=req.tag
                    ) as span:
                        span.set("queue_seconds", job.queue_seconds)
                        try:
                            if isinstance(req, MutationRequest):
                                span.set("kind", f"mutate-{req.kind}")
                                job._result = self._apply_mutation(req)
                            else:
                                span.set("kind", req.method)
                                job._result = self._serve_valuation(job, span)
                            job.status = "done"
                        except BaseException as exc:  # surfaced via job.result()
                            job.error = exc
                            job.status = "failed"
                        finally:
                            span.set("status", job.status)
                            job.finished_at = time.perf_counter()
                            job._done.set()
                            self._publish_job(job)
            finally:
                self._queue.task_done()

    def _serve_valuation(self, job: ValuationJob, span) -> ValuationResult:
        """Run one valuation job: deadline gate, rung choice, engine call."""
        req = job.request
        hub = getattr(self.engine, "telemetry", None)
        remaining: Optional[float] = None
        if req.deadline_ms is not None:
            budget = req.deadline_ms / 1000.0
            waited = job.queue_seconds or 0.0
            remaining = budget - waited
            if remaining <= 0:
                with self._lock:
                    self._deadline_misses += 1
                if hub is not None:
                    hub.count("service.jobs_deadline_exceeded")
                raise DeadlineExceededError(
                    f"job {job.job_id} spent its {budget:.4f}s budget "
                    f"waiting in the queue ({waited:.4f}s)",
                    deadline_s=budget,
                    elapsed_s=waited,
                )
        kwargs: dict = {
            "method": req.method,
            "epsilon": req.epsilon,
            "weights": req.weights,
            "mode": req.mode,
            "store_per_test": req.store_per_test,
        }
        if remaining is not None:
            kwargs["deadline_s"] = remaining
        controller = self.degradation
        rung = None
        plan_info: dict = {}
        if (
            controller is not None
            and req.method == "exact"
            and getattr(self.engine, "task", "classification")
            == "classification"
        ):
            rung, plan_info = controller.plan(
                self._queue.qsize(), deadline_s=remaining
            )
            span.set("rung", rung.name)
            kwargs["method"] = rung.method
            if rung.method == "truncated":
                kwargs["epsilon"] = rung.epsilon
            elif rung.method == "mc":
                kwargs["epsilon"] = rung.epsilon
                kwargs["delta"] = rung.delta
                # deterministic but distinct per job
                kwargs["seed"] = job.job_id
            if hub is not None:
                hub.count(f"service.rung.{rung.name}")
        compute_start = time.perf_counter()
        result = self.engine.value(req.x_test, req.y_test, **kwargs)
        if rung is not None:
            controller.observe(
                rung.name, time.perf_counter() - compute_start
            )
            if rung.method != "exact":
                certificate = result.extra.get("certificate")
                if certificate is None:
                    # the truncated rung's Theorem 2 contract: the
                    # max-norm error is at most 1/K*, itself <= epsilon
                    certificate = {
                        "epsilon": float(rung.epsilon),
                        "delta": 0.0,
                        "k_star": result.extra.get("k_star"),
                        "bound": "truncation-theorem2",
                    }
                result.extra["degraded"] = {
                    "kind": "precision",
                    "rung": rung.name,
                    "method": rung.method,
                    "epsilon": float(rung.epsilon),
                    "certificate": certificate,
                    **plan_info,
                }
                if hub is not None:
                    hub.count("service.jobs_degraded")
        return result

    def _publish_job(self, job: ValuationJob) -> None:
        """Stream one settled job's latency split into telemetry.

        The service's own :class:`Histogram` s always update (they are
        the :meth:`stats` percentile source, hub or no hub); the
        attached hub additionally receives the per-job streams.
        """
        with self._hist_lock:
            if job.queue_seconds is not None:
                self._queue_hist.add(job.queue_seconds)
            if job.compute_seconds is not None:
                self._compute_hist.add(job.compute_seconds)
        hub = getattr(self.engine, "telemetry", None)
        if hub is None:
            return
        hub.count(f"service.jobs_{job.status}")
        if job.queue_seconds is not None:
            hub.record("service.queue_seconds", job.queue_seconds)
        if job.compute_seconds is not None:
            hub.record("service.compute_seconds", job.compute_seconds)

    def _apply_mutation(self, req: MutationRequest) -> MutationResult:
        if req.kind == "add":
            indices = self.engine.add_points(req.x, req.y)
        else:
            indices = np.atleast_1d(np.asarray(req.idx, dtype=np.intp))
            self.engine.remove_points(indices)
        return MutationResult(
            kind=req.kind, indices=indices, n_train=self.engine.n_train
        )

    # ------------------------------------------------------------------
    def submit(
        self, request: Union[ValuationRequest, MutationRequest]
    ) -> ValuationJob:
        """Enqueue a request; returns its :class:`ValuationJob` handle.

        Blocks while the queue is at ``max_queue``.  The enqueue happens
        under the shutdown lock so a concurrent :meth:`shutdown` cannot
        retire the workers between the accept check and the put (which
        would strand the job unserved); workers keep draining, so a
        blocked put always completes.

        If the submitting thread is inside a traced span and the
        request carries no explicit ``trace``, the current
        :class:`~repro.monitor.tracing.TraceContext` is captured onto
        the request, so the job joins the caller's trace when a worker
        thread serves it.

        Under ``admission="shed"`` a full queue raises
        :class:`~repro.exceptions.AdmissionRejectedError` instead of
        blocking; nothing is enqueued and no job handle exists.
        """
        if request.trace is None:
            tracer = getattr(self.engine, "tracer", None) or NOOP_TRACER
            ctx = tracer.current()
            if ctx is not None:
                request = replace(request, trace=ctx)
        priority = int(getattr(request, "priority", 0))
        with self._lock:
            if self._shutdown:
                raise ParameterError("service is shut down")
            job = ValuationJob(next(self._ids), request)
            self._jobs[job.job_id] = job
            entry = (-priority, next(self._seq), job)
            if self.admission == "shed":
                try:
                    self._queue.put_nowait(entry)
                except queue.Full:
                    del self._jobs[job.job_id]
                    self._sheds += 1
                    self._last_shed = time.monotonic()
                    hub = getattr(self.engine, "telemetry", None)
                    if hub is not None:
                        hub.count("service.jobs_shed")
                    raise AdmissionRejectedError(
                        f"queue full ({self.max_queue} jobs); request shed",
                        queue_depth=self._queue.qsize(),
                        max_queue=self.max_queue,
                    ) from None
            else:
                self._queue.put(entry)
        hub = getattr(self.engine, "telemetry", None)
        if hub is not None:
            hub.record("service.queue_depth", float(self._queue.qsize()))
        return job

    def submit_batch(
        self, x_test: np.ndarray, y_test: np.ndarray, **kwargs
    ) -> ValuationJob:
        """Convenience wrapper building the :class:`ValuationRequest`.

        Args:
            x_test: Test feature matrix, shape ``(n_test, d)``.
            y_test: Test labels/targets, shape ``(n_test,)``.
            **kwargs: Forwarded to :class:`ValuationRequest`
                (``method``, ``epsilon``, ``store_per_test``, ...).

        Returns:
            The queued job's :class:`ValuationJob` handle.

        Raises:
            ParameterError: When the service is shut down.
        """
        return self.submit(ValuationRequest(x_test, y_test, **kwargs))

    def submit_add(
        self, x_new: np.ndarray, y_new: np.ndarray, tag: str = ""
    ) -> ValuationJob:
        """Enqueue an ``"add"`` :class:`MutationRequest`.

        Args:
            x_new: Features of the points to add, shape ``(m, d)``.
            y_new: Their labels/targets, shape ``(m,)``.
            tag: Free-form marker echoed in the job's stats.

        Returns:
            The queued job's :class:`ValuationJob` handle; its result
            is the new training-set size.

        Raises:
            ParameterError: When the service is shut down.
        """
        return self.submit(MutationRequest(kind="add", x=x_new, y=y_new, tag=tag))

    def submit_remove(self, idx, tag: str = "") -> ValuationJob:
        """Enqueue a ``"remove"`` :class:`MutationRequest`.

        Args:
            idx: Training-point indices to delete (current numbering).
            tag: Free-form marker echoed in the job's stats.

        Returns:
            The queued job's :class:`ValuationJob` handle; its result
            is the new training-set size.

        Raises:
            ParameterError: When the service is shut down.
        """
        return self.submit(MutationRequest(kind="remove", idx=idx, tag=tag))

    def job(self, job_id: int) -> ValuationJob:
        """Look up a job handle by id.

        Raises:
            ParameterError: When ``job_id`` was never issued by this
                service.
        """
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ParameterError(f"unknown job id {job_id}") from None

    def wait_all(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted job has settled."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._lock:
            jobs = list(self._jobs.values())
        for j in jobs:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.perf_counter())
            if not j._done.wait(remaining):
                raise TimeoutError("jobs still pending at timeout")

    def stats(self) -> dict:
        """Aggregate serving statistics.

        Conforms to the unified component-stats schema
        (:mod:`repro.stats`).  Per-job latency is published through the
        service's bounded :class:`Histogram` s — ``timings`` carries
        p50/p95/p99 for the queue-wait and compute splits, and the full
        bucket snapshots ride along under ``"histograms"`` — while the
        pre-schema keys (``n_jobs``, ``by_status``,
        ``total_compute_seconds``, ``mean_queue_seconds``, ...) are
        kept as aliases at their historical positions for existing
        dashboards (now derived from the histograms' exact
        count/total moments).
        """
        with self._lock:
            jobs = list(self._jobs.values())
        by_status: dict[str, int] = {}
        for j in jobs:
            by_status[j.status] = by_status.get(j.status, 0) + 1
        with self._hist_lock:
            queue_snap = self._queue_hist.snapshot()
            compute_snap = self._compute_hist.snapshot()
        total_compute = float(compute_snap["total"])
        mean_queue = (
            float(queue_snap["mean"]) if queue_snap["count"] else 0.0
        )
        percentiles = {
            f"{split}_p{p}": float(snap[f"p{p}"]) if snap["count"] else 0.0
            for split, snap in (("queue", queue_snap), ("compute", compute_snap))
            for p in (50, 95, 99)
        }
        with self._lock:
            sheds = self._sheds
            deadline_misses = self._deadline_misses
        extras: dict = {}
        if self.degradation is not None:
            extras["degradation"] = self.degradation.snapshot()
        return component_stats(
            "valuation_service",
            counters={
                "jobs": len(jobs),
                "jobs_shed": sheds,
                "jobs_deadline_exceeded": deadline_misses,
                **{f"jobs_{s}": c for s, c in sorted(by_status.items())},
            },
            timings={
                "total_compute_seconds": total_compute,
                "mean_queue_seconds": mean_queue,
                **percentiles,
            },
            gauges={
                "queue_depth": self._queue.qsize(),
                "n_workers": self.n_workers,
                "max_queue": self.max_queue,
            },
            histograms={
                "queue_seconds": queue_snap,
                "compute_seconds": compute_snap,
            },
            # legacy keys
            n_jobs=len(jobs),
            by_status=by_status,
            queue_depth=self._queue.qsize(),
            n_workers=self.n_workers,
            total_compute_seconds=total_compute,
            mean_queue_seconds=mean_queue,
            admission=self.admission,
            **extras,
        )

    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Whether the service still accepts submissions.

        The readiness probe the observability server's ``/ready``
        endpoint answers with: ``True`` until :meth:`shutdown` flips
        it, at which point a load balancer should stop routing here
        while in-flight jobs drain.
        """
        return not self._shutdown

    def resilience(self) -> dict:
        """Overload and fault posture, for the readiness probe.

        ``shedding`` is true while the queue is at its bound (under
        ``admission="shed"``) or within :attr:`shed_window` seconds of
        the last rejection, so a polling probe cannot miss a burst.
        An engine exposing its own ``resilience()`` — the shard
        router's circuit-breaker states — rides along, with any open
        circuits bubbled to the top level.
        """
        depth = self._queue.qsize()
        with self._lock:
            recently_shed = (
                self._last_shed is not None
                and time.monotonic() - self._last_shed < self.shed_window
            )
            sheds = self._sheds
        full = self.max_queue > 0 and depth >= self.max_queue
        out = {
            "shedding": bool(
                recently_shed or (self.admission == "shed" and full)
            ),
            "queue_depth": depth,
            "max_queue": self.max_queue,
            "admission": self.admission,
            "sheds": sheds,
            "open_circuits": [],
        }
        sub = getattr(self.engine, "resilience", None)
        if callable(sub):
            engine_res = sub()
            out["engine"] = engine_res
            out["open_circuits"] = list(engine_res.get("open_circuits", []))
        return out

    def _fail_queued(self, reason: str) -> None:
        """Settle every still-queued job with a typed failure.

        The typed alternative to stranding callers: a job that will
        never run fails with
        :class:`~repro.exceptions.AdmissionRejectedError` so its
        ``result()`` raises instead of blocking forever.  Covers both
        jobs still sitting in the queue and jobs whose queue entry
        vanished (the dropped-job fault).
        """
        while True:
            try:
                _, _, item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SENTINEL and not item.done:
                item.error = AdmissionRejectedError(
                    f"job {item.job_id} abandoned: {reason}",
                    queue_depth=self._queue.qsize(),
                )
                item.status = "failed"
                item.finished_at = time.perf_counter()
                item._done.set()
                self._publish_job(item)
            self._queue.task_done()
        self._settle_orphans(reason)

    def _settle_orphans(self, reason: str) -> None:
        """Fail tracked jobs still ``queued`` though nothing holds them.

        After the queue has drained (or been failed wholesale), any
        job whose queue entry vanished without a worker serving it —
        the dropped-job fault — would otherwise strand its caller on
        ``result()``; it gets the same typed failure instead.
        """
        with self._lock:
            orphans = [
                j for j in self._jobs.values()
                if j.status == "queued" and not j.done
            ]
        for job in orphans:
            job.error = AdmissionRejectedError(
                f"job {job.job_id} abandoned: {reason}"
            )
            job.status = "failed"
            job.finished_at = time.perf_counter()
            job._done.set()
            self._publish_job(job)

    def _alive_workers(self) -> int:
        return sum(1 for w in self._workers if w.is_alive())

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work, then drain, cancel, or fail the queue.

        With ``wait`` (default) every already-submitted job is served
        before the workers retire — unless the workers have already
        exited (crash, fault injection), in which case the queued jobs
        are failed with a typed
        :class:`~repro.exceptions.AdmissionRejectedError` instead of
        leaving their callers blocked on ``result()`` forever.
        Without ``wait``, jobs still sitting in the queue are marked
        ``cancelled`` and their waiters released; jobs already running
        finish either way.
        """
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        if wait:
            # drain, but never behind a dead worker pool: re-check
            # liveness while waiting so a crashed pool converts the
            # backlog into typed failures instead of a hang
            with self._queue.all_tasks_done:
                while self._queue.unfinished_tasks:
                    if self._alive_workers() == 0:
                        break
                    self._queue.all_tasks_done.wait(timeout=0.05)
            if self._queue.unfinished_tasks and self._alive_workers() == 0:
                self._fail_queued("the worker pool exited before it ran")
        else:
            while True:
                try:
                    _, _, item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _SENTINEL:
                    item.status = "cancelled"
                    item.finished_at = time.perf_counter()
                    item._done.set()
                self._queue.task_done()
        for _ in self._workers:
            self._put_sentinel()
        for w in self._workers:
            w.join()
        # a job whose queue entry vanished (dropped-job fault) is now
        # provably unreachable: no worker remains to serve it
        self._settle_orphans("its queue entry was lost before a worker ran it")

    def __enter__(self) -> "ValuationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)
