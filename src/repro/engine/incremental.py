"""Incremental valuation of a dynamic training set.

The data-market workload the paper motivates (Sections 3-4) is not
static: sellers join and leave, and every membership change shifts the
Shapley value of *every* remaining point.  Re-running the full
valuation per event costs an O(n d) distance pass plus an O(n log n)
sort per test point.  But the Theorem 1 recursion is rank-local (see
:mod:`repro.core.delta`): a single insertion or deletion moves exactly
one rank per test point, so the fitted state can be *repaired* —
binary-search the new position, splice one entry, re-run the recursion
over the affected suffix, shift the prefix by a constant — in O(n)
array work per test point with no distances against incumbents and no
sort at all.

:class:`IncrementalValuator` owns that fitted state: per test point,
the ascending distance ranking, the sorted distances, the label-match
vector, and the rank-space Shapley values.  ``add_points`` /
``remove_points`` apply exact delta updates; ``values()`` aggregates by
additivity (eq 8); ``recompute()`` re-derives the rank-space values
from the (exactly maintained) rankings in one vectorized pass — still
no distance computation or sort — producing output bit-identical to a
from-scratch :func:`~repro.core.exact.exact_knn_shapley_from_order`
run on the current dataset.

Floating-point contract
-----------------------
The maintained rankings, distances, and match vectors round-trip
mutations *bit-for-bit* (an add followed by the matching remove
restores them exactly), so ``recompute()`` after a round trip equals
the original valuation bit-for-bit.  The incrementally repaired value
vector itself carries one rounding per prefix shift (see
:mod:`repro.core.delta`), keeping ``values()`` within ~1e-15 — and
always within the 1e-12 acceptance bound — of a full recompute.

Which valuations can be maintained this way is a property of the
*kernel*, not of this class: the valuator asks the registered kernel's
:class:`~repro.core.kernels.KernelCapabilities` for
``supports_incremental`` instead of hard-coding a task.  Today only the
``exact`` classification kernel is rank-local — the Theorem 6
regression recursion needs global rank-weighted label sums and the
weighted game is coalition-dependent — but a third-party kernel that
advertises the capability plugs straight in.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..core.delta import rank_factor, suffix_rank_values_rows
from ..core.kernels import RankPlan, get_kernel
from ..exceptions import NotFittedError, ParameterError
from ..knn.distance import get_metric
from ..stats import component_stats
from ..types import (
    ValuationResult,
    as_float_matrix,
    as_label_vector,
    as_new_points,
)
from .backends import NeighborBackend, make_backend

__all__ = ["IncrementalValuator"]


class IncrementalValuator:
    """Exact KNN Shapley values under training-set churn.

    Parameters
    ----------
    x_train, y_train:
        The initial training set (class labels).
    k:
        The K of KNN.
    metric:
        Distance metric name (forwarded to the backend and used to
        score incoming points against the fitted test batch).  Default
        ``None`` adopts the backend's metric — the two must agree, or
        inserted points would be ranked in a different geometry than
        the incumbents; an explicit conflicting value raises.
    backend:
        Registered backend name or instance.  Must support full
        rankings (``"brute"`` or ``"blocked"``; the LSH backend cannot
        place points into a total order, so dynamic LSH deployments
        refit instead — see the engine-level mutation path).
    backend_options:
        Keyword arguments for the backend factory.
    kernel:
        Name of the valuation kernel whose state is maintained.  The
        kernel must advertise ``supports_incremental`` in its
        capabilities (the delta repair assumes a rank-local
        recursion); today that is the ``exact`` classification
        kernel.

    Not thread-safe: one mutator at a time (the engine/service layers
    add locking when serving concurrently).
    """

    def __init__(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        k: int,
        metric: Optional[str] = None,
        backend="brute",
        backend_options: Optional[dict] = None,
        kernel: str = "exact",
    ) -> None:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        self.valuation_kernel = get_kernel(kernel)
        caps = self.valuation_kernel.capabilities
        if not caps.supports_incremental:
            raise ParameterError(
                f"kernel {kernel!r} does not support incremental repair "
                "(capabilities: supports_incremental=False); its "
                "recursion is not rank-local, so mutations must re-value "
                "through ValuationEngine instead"
            )
        self.x_train = as_float_matrix(x_train, "x_train")
        self.y_train = as_label_vector(y_train, self.x_train.shape[0], "y_train")
        self.k = int(k)
        options = dict(backend_options or {})
        if isinstance(backend, str) and backend in ("brute", "blocked"):
            options.setdefault("metric", metric or "euclidean")
        self.backend: NeighborBackend = make_backend(backend, **options)
        if not self.backend.supports_full_ranking:
            raise ParameterError(
                f"backend {self.backend.name!r} cannot produce the full "
                "rankings incremental valuation maintains; use 'brute' or "
                "'blocked'"
            )
        # incoming points are scored with the same metric the fitted
        # rankings were built in, or their insertion ranks would be
        # meaningless — adopt the backend's metric, refuse a conflict
        backend_metric = getattr(self.backend, "metric", None)
        if metric is not None and backend_metric not in (None, metric):
            raise ParameterError(
                f"metric {metric!r} conflicts with the backend's "
                f"{backend_metric!r}; incremental state must rank and "
                "score in one geometry"
            )
        self.metric = metric or backend_metric or "euclidean"
        self._kernel = get_metric(self.metric)
        self.backend.fit(self.x_train)
        self.x_test: np.ndarray | None = None
        self.y_test: np.ndarray | None = None
        self._order: np.ndarray | None = None  # (q, n) ascending ranks
        self._dist: np.ndarray | None = None  # (q, n) sorted distances
        self._match: np.ndarray | None = None  # (q, n) 0/1 label matches
        self._s: np.ndarray | None = None  # (q, n) rank-space values
        self._values: np.ndarray | None = None  # aggregate, None = dirty
        self.n_mutations = 0
        self.last_mutation_seconds = 0.0
        self.total_mutation_seconds = 0.0
        #: optional :class:`repro.monitor.TelemetryHub`
        self.telemetry = None

    # ------------------------------------------------------------------
    @property
    def n_train(self) -> int:
        """Current number of training points."""
        return int(self.x_train.shape[0])

    @property
    def n_test(self) -> int:
        """Number of fitted test points (0 before :meth:`fit`)."""
        return 0 if self.x_test is None else int(self.x_test.shape[0])

    def _require_fitted(self) -> None:
        if self._order is None:
            raise NotFittedError(
                "IncrementalValuator.fit must be called with a test batch first"
            )

    def attach_telemetry(self, hub) -> "IncrementalValuator":
        """Publish mutation latency into ``hub`` (and the backend's
        retrieval streams alongside); returns ``self`` for chaining."""
        self.telemetry = hub
        self.backend.telemetry = hub
        return self

    def _record_mutation(self, kind: str, n_points: int, seconds: float) -> None:
        self.last_mutation_seconds = seconds
        self.total_mutation_seconds += seconds
        hub = self.telemetry
        if hub is not None:
            hub.record("incremental.mutation_seconds", seconds)
            hub.count(f"incremental.{kind}", n_points)

    def stats(self) -> dict:
        """Unified-schema snapshot (see :mod:`repro.stats`)."""
        return component_stats(
            "incremental_valuator",
            counters={"mutations": self.n_mutations},
            timings={
                "last_mutation_seconds": self.last_mutation_seconds,
                "total_mutation_seconds": self.total_mutation_seconds,
            },
            gauges={"n_train": self.n_train, "n_test": self.n_test},
            backend=self.backend.stats(),
        )

    # ------------------------------------------------------------------
    def fit(self, x_test: np.ndarray, y_test: np.ndarray) -> "IncrementalValuator":
        """Rank the current training set for ``(x_test, y_test)``.

        This is the one full-cost step — everything after it is delta
        work.  Refitting with a new test batch replaces the state.
        """
        x_test = as_float_matrix(x_test, "x_test")
        y_test = as_label_vector(y_test, x_test.shape[0], "y_test")
        if x_test.shape[1] != self.x_train.shape[1]:
            raise ParameterError(
                f"x_test has {x_test.shape[1]} features, expected "
                f"{self.x_train.shape[1]}"
            )
        self.x_test = x_test
        self.y_test = y_test
        order, dist = self.backend.rank_with_distances(x_test)
        # int32 halves the splice bandwidth of the widest integer state
        self._order = np.ascontiguousarray(order, dtype=np.int32)
        self._dist = np.ascontiguousarray(dist)
        # int8: 0/1 matches enter the recursion bit-identically to the
        # float form while costing an eighth of the splice bandwidth
        self._match = (self.y_train[order] == y_test[:, None]).astype(np.int8)
        self._resync()
        return self

    def _resync(self) -> ValuationResult:
        """Re-derive rank-space values from the rankings (no sort)."""
        plan = RankPlan.from_order(self._order, self.y_train, self.y_test)
        per_test = self.valuation_kernel.values_from_plan(plan, self.k)
        values = per_test.mean(axis=0)
        self._s = np.take_along_axis(per_test, self._order, axis=1)
        self._values = values
        return self._result(values, resynced=True)

    # ------------------------------------------------------------------
    def add_points(self, x_new: np.ndarray, y_new: np.ndarray) -> np.ndarray:
        """Insert training points; returns the indices they received.

        Each point costs one distance per test point, a binary search
        into each sorted distance row, and a suffix repair of the
        recursion — no ranking of incumbents is ever redone.
        """
        start = time.perf_counter()
        x_new, y_new = as_new_points(x_new, y_new, self.x_train.shape[1])
        first = self.n_train
        for i in range(x_new.shape[0]):
            if self._order is not None:
                self._insert_one(x_new[i], y_new[i])
            self.y_train = np.concatenate((self.y_train, y_new[i : i + 1]))
            self.n_mutations += 1
        self.backend.partial_fit(x_new)
        # alias the backend's index — one copy of the training set, not two
        self.x_train = self.backend.data
        self._values = None
        self._record_mutation(
            "adds", x_new.shape[0], time.perf_counter() - start
        )
        return np.arange(first, first + x_new.shape[0], dtype=np.intp)

    def remove_points(self, idx) -> None:
        """Delete training points by index (``numpy.delete`` semantics).

        All indices refer to the training set *before* the call; the
        surviving points are renumbered compactly, exactly as
        ``np.delete(x_train, idx, axis=0)`` would.
        """
        start = time.perf_counter()
        idx = np.atleast_1d(np.asarray(idx, dtype=np.intp))
        if idx.size == 0:
            return
        # validate up front even though backend.forget re-checks: the
        # per-test rank state mutates point by point below, so a bad
        # index surfacing mid-way would leave the state corrupted
        n = self.n_train
        if np.any(idx < 0) or np.any(idx >= n):
            raise ParameterError(
                f"remove indices must lie in [0, {n}), got {idx.tolist()}"
            )
        if np.unique(idx).size != idx.size:
            raise ParameterError(
                f"remove indices must be unique, got {idx.tolist()}"
            )
        if idx.size >= n:
            raise ParameterError("cannot remove every training point")
        # descending order keeps the not-yet-removed indices stable
        for t in np.sort(idx)[::-1]:
            if self._order is not None:
                self._remove_one(int(t))
            self.n_mutations += 1
        self.y_train = np.delete(self.y_train, idx)
        self.backend.forget(idx)
        # alias the backend's index — one copy of the training set, not two
        self.x_train = self.backend.data
        self._values = None
        self._record_mutation("removes", idx.size, time.perf_counter() - start)

    # ------------------------------------------------------------------
    def _insert_one(self, x_row: np.ndarray, y_val) -> None:
        q, n = self._order.shape
        d_new = self._kernel(self.x_test, x_row[None, :])[:, 0]
        dist, order, match = self._dist, self._order, self._match
        new_dist = np.empty((q, n + 1), dtype=np.float64)
        new_order = np.empty((q, n + 1), dtype=np.int32)
        new_match = np.empty((q, n + 1), dtype=np.int8)
        m_new = (self.y_test == y_val).astype(np.int8)
        pos = np.empty(q, dtype=np.intp)
        # flat 1-D views: plain-slice splices parse ~an order of
        # magnitude faster than 2-D indexing in this per-row loop
        df, of, mf = dist.reshape(-1), order.reshape(-1), match.reshape(-1)
        ndf = new_dist.reshape(-1)
        nof = new_order.reshape(-1)
        nmf = new_match.reshape(-1)
        for j in range(q):
            # the new point takes the largest training index, so among
            # tied distances it ranks last — side="right"; the splice
            # is two contiguous block copies per row, no index gathers
            p = int(np.searchsorted(dist[j], d_new[j], side="right"))
            pos[j] = p
            a, b = j * n, j * (n + 1)
            ndf[b : b + p] = df[a : a + p]
            ndf[b + p] = d_new[j]
            ndf[b + p + 1 : b + n + 1] = df[a + p : a + n]
            nof[b : b + p] = of[a : a + p]
            nof[b + p] = n
            nof[b + p + 1 : b + n + 1] = of[a + p : a + n]
            nmf[b : b + p] = mf[a : a + p]
            nmf[b + p] = m_new[j]
            nmf[b + p + 1 : b + n + 1] = mf[a + p : a + n]
        self._s = self._repair(new_match, int(pos.min()))
        self._dist, self._order, self._match = new_dist, new_order, new_match

    def _remove_one(self, t: int) -> None:
        q, n = self._order.shape
        dist, order, match = self._dist, self._order, self._match
        pos = np.argmax(order == t, axis=1)
        new_dist = np.empty((q, n - 1), dtype=np.float64)
        new_order = np.empty((q, n - 1), dtype=np.int32)
        new_match = np.empty((q, n - 1), dtype=np.int8)
        df, of, mf = dist.reshape(-1), order.reshape(-1), match.reshape(-1)
        ndf = new_dist.reshape(-1)
        nof = new_order.reshape(-1)
        nmf = new_match.reshape(-1)
        for j in range(q):
            p = int(pos[j])
            a, b = j * n, j * (n - 1)
            ndf[b : b + p] = df[a : a + p]
            ndf[b + p : b + n - 1] = df[a + p + 1 : a + n]
            nof[b : b + p] = of[a : a + p]
            nof[b + p : b + n - 1] = of[a + p + 1 : a + n]
            nmf[b : b + p] = mf[a : a + p]
            nmf[b + p : b + n - 1] = mf[a + p + 1 : a + n]
        if t != n - 1:  # removing the top index shifts nobody
            new_order[new_order > t] -= 1
        self._s = self._repair(new_match, int(pos.min()))
        self._dist, self._order, self._match = new_dist, new_order, new_match

    def _repair(self, match_new: np.ndarray, start: int) -> np.ndarray:
        """Repair the rank-space values after a one-position splice.

        Re-runs the recursion only over the affected suffix — from the
        minimum mutated position across the test batch, vectorized over
        all test points — and shifts each untouched prefix by the
        constant the recursion propagates across its boundary (see
        :mod:`repro.core.delta`).
        """
        q, n1 = match_new.shape
        start = min(start, n1 - 1)
        s_new = np.empty((q, n1), dtype=np.float64)
        s_new[:, start:] = suffix_rank_values_rows(match_new, start, self.k)
        if start > 0:
            boundary = s_new[:, start] + (
                match_new[:, start - 1] - match_new[:, start]
            ) * rank_factor(start, self.k)
            s_new[:, : start - 1] = (
                self._s[:, : start - 1]
                + (boundary - self._s[:, start - 1])[:, None]
            )
            s_new[:, start - 1] = boundary
        return s_new

    # ------------------------------------------------------------------
    def values(self) -> ValuationResult:
        """Current Shapley values from the incrementally repaired state."""
        self._require_fitted()
        if self._values is None:
            # each order row is a permutation, so bincount-by-training-
            # index sums every test point's value for each player —
            # additivity (eq 8) after division by n_test
            totals = np.bincount(
                self._order.ravel(),
                weights=self._s.ravel(),
                minlength=self._order.shape[1],
            )
            self._values = totals / self._order.shape[0]
        return self._result(self._values, resynced=False)

    def recompute(self) -> ValuationResult:
        """Re-derive values from the maintained rankings (canonical).

        Still no distance computation and no sort — the rankings are
        exact at all times — but the recursion is re-run from scratch,
        so the output is bit-identical to
        :func:`~repro.core.exact.exact_knn_shapley_from_order` on the
        current dataset, and the internal value state is resynced to
        it.
        """
        self._require_fitted()
        return self._resync()

    def _result(self, values: np.ndarray, resynced: bool) -> ValuationResult:
        return ValuationResult(
            values=values,
            method="incremental",
            extra={
                "k": self.k,
                "metric": self.metric,
                "backend": self.backend.name,
                "n_train": self.n_train,
                "n_test": self.n_test,
                "n_mutations": self.n_mutations,
                "resynced": resynced,
            },
        )
