"""Sharded multi-engine valuation: scale *out*, not just up.

:class:`ShardRouter` puts a coordinator in front of N
:class:`~repro.engine.engine.ValuationEngine` instances and serves the
same surface as one engine, so an unmodified
:class:`~repro.engine.service.ValuationService` (or any caller of
``value``/``add_points``/``remove_points``) can front a fleet.

Two sharding layouts, chosen by the additivity structure of the math:

* ``sharding="data"`` — the training set is partitioned across shards.
  Shapley values themselves are **not** additive across training-set
  partitions (valuing a slice is a different game), so the router
  shards *retrieval* instead: each shard ranks (or top-k queries) its
  slice, the coordinator merges the per-shard sorted results exactly —
  the merge key is ``(test row, distance, global index)``, matching
  the single engine's distance-then-index tie-break bit for bit — and
  runs the valuation kernel once over the merged
  :class:`~repro.core.kernels.RankPlan`.  The result is identical to a
  single engine holding the full set (<= 1e-12), while the O(n log n)
  retrieval work fans out across shards.
* ``sharding="test"`` — every shard holds the full training set and
  the *test batch* is partitioned.  By eq 8 of the paper the
  multi-test value is the mean of single-test values, so per-shard
  partial sums merge exactly: ``sum_i values_i * n_test_i / n_test``.

Robustness is part of the contract: each fan-out leg has a configurable
timeout, transient shard errors are retried once, and a failed shard
either fails the request (``on_shard_error="fail"``) or degrades it
(``"partial"``) — the surviving shards' exact answer is returned with
the missing contribution bounded and recorded in
``ValuationResult.extra["degraded"]``.

Observability threads through the existing layers: one
:class:`~repro.monitor.telemetry.TelemetryHub` aggregates every shard
via ``hub.labeled("shard<i>")`` views, and a traced request produces a
single trace tree — ``router.request`` at the root with one
``shard.request`` child per fan-out leg (each nesting its shard
engine's own spans).  Mutations route to the owning shard under the
router's reader-writer lock, keeping the placement map and the global
index space (``numpy.delete`` semantics) consistent with a single
engine's.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.kernels import RankPlan, ValuationKernel
from ..core.truncated import truncation_rank
from ..exceptions import ParameterError, ShardError
from ..monitor.tracing import NOOP_TRACER
from ..stats import component_stats
from ..types import (
    ValuationResult,
    as_float_matrix,
    as_label_vector,
    as_new_points,
)
from .engine import ValuationEngine, _RWLock, resolve_method_kernel

__all__ = ["Shard", "ShardRouter"]


@dataclass
class Shard:
    """One member of the fleet: a label and the engine behind it."""

    label: str
    engine: ValuationEngine


class ShardRouter:
    """Fan a valuation request across shard engines and merge exactly.

    Serves the same duck-typed surface as a
    :class:`~repro.engine.engine.ValuationEngine` (``value``, ``run``,
    ``add_points``, ``remove_points``, ``n_train``, ``stats``), so a
    :class:`~repro.engine.service.ValuationService` can front a router
    unchanged.

    Args:
        x_train, y_train: The full training set being valued.
        k: The K of KNN.
        n_shards: Fleet size (>= 1).
        sharding: ``"data"`` (partition the training set; exact merged
            retrieval) or ``"test"`` (replicate the training set;
            partition each test batch, eq-8 partial-sum merge).
        task: ``"classification"`` or ``"regression"``.
        metric: Distance metric, forwarded to every shard engine.
        backend: Backend name forwarded to every shard engine
            (``"brute"``, ``"blocked"``, ``"lsh"``).
        backend_options: Keyword arguments for each shard's backend
            factory.
        hub: Optional :class:`~repro.monitor.telemetry.TelemetryHub`;
            shard ``i`` publishes through ``hub.labeled("shard<i>")``
            and the router's own streams go in unprefixed, so one hub
            describes the whole fleet.
        tracer: Optional tracer shared by the router and every shard.
        shard_timeout: Seconds one fan-out leg may take before the
            shard is declared failed for this request (``None`` waits
            forever).  Timed-out legs are not retried — a stalled
            shard would stall the retry too.
        on_shard_error: ``"fail"`` (default) raises
            :class:`~repro.exceptions.ShardError` when a shard is
            still failed after the retry; ``"partial"`` serves the
            surviving shards' result with the loss bounded and
            recorded in ``extra["degraded"]``.
        cache: Forwarded to every shard engine (see
            :class:`~repro.engine.engine.ValuationEngine`).
        engine_options: Extra keyword arguments for every shard
            engine (``n_workers``, ``chunk_size``, ...).

    Raises:
        ParameterError: On an invalid fleet shape, sharding mode, or
            error policy, or when ``n_shards`` exceeds the training
            set size in data-sharded mode.
    """

    def __init__(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        k: int,
        n_shards: int = 2,
        sharding: str = "data",
        task: str = "classification",
        metric: str = "euclidean",
        backend: str = "brute",
        backend_options: Optional[dict] = None,
        hub=None,
        tracer=None,
        shard_timeout: Optional[float] = None,
        on_shard_error: str = "fail",
        cache=True,
        engine_options: Optional[dict] = None,
    ) -> None:
        if n_shards <= 0:
            raise ParameterError(f"n_shards must be positive, got {n_shards}")
        if sharding not in ("data", "test"):
            raise ParameterError(
                f"sharding must be 'data' or 'test', got {sharding!r}"
            )
        if on_shard_error not in ("fail", "partial"):
            raise ParameterError(
                f"on_shard_error must be 'fail' or 'partial', got "
                f"{on_shard_error!r}"
            )
        if shard_timeout is not None and shard_timeout <= 0:
            raise ParameterError(
                f"shard_timeout must be positive, got {shard_timeout}"
            )
        x_train = as_float_matrix(x_train, "x_train")
        y_train = as_label_vector(y_train, x_train.shape[0], "y_train")
        n = x_train.shape[0]
        if sharding == "data" and n_shards > n:
            raise ParameterError(
                f"cannot data-shard {n} training points across "
                f"{n_shards} shards"
            )
        self.k = int(k)
        self.task = task
        self.metric = metric
        self.sharding = sharding
        self.n_shards = int(n_shards)
        self.shard_timeout = shard_timeout
        self.on_shard_error = on_shard_error
        self.telemetry = None
        self.tracer = NOOP_TRACER
        options = dict(engine_options or {})
        options.setdefault("cache", cache)

        def build(x, y) -> ValuationEngine:
            return ValuationEngine(
                x,
                y,
                k,
                task=task,
                metric=metric,
                backend=backend,
                backend_options=dict(backend_options or {}),
                **options,
            )

        self.shards: list[Shard] = []
        #: per-shard arrays of *global* training positions; strictly
        #: ascending (initial split is contiguous, appends receive new
        #: max positions, deletes preserve order), so a shard's local
        #: index order equals the global order within the shard
        self._placement: list[np.ndarray] = []
        if sharding == "data":
            splits = np.array_split(np.arange(n, dtype=np.intp), n_shards)
            for i, part in enumerate(splits):
                self.shards.append(
                    Shard(f"shard{i}", build(x_train[part], y_train[part]))
                )
                self._placement.append(part.copy())
        else:
            for i in range(n_shards):
                self.shards.append(Shard(f"shard{i}", build(x_train, y_train)))
                self._placement.append(np.arange(n, dtype=np.intp))
        self._y = y_train.copy()
        self._n_total = n
        self._n_features = int(x_train.shape[1])
        self._lock = _RWLock()
        self._ops_lock = threading.Lock()
        self._ops = {
            "requests": 0,
            "degraded_requests": 0,
            "shard_errors": 0,
            "shard_timeouts": 0,
            "retries": 0,
            "mutations": 0,
        }
        self._timings = {
            "request_seconds": 0.0,
            "merge_seconds": 0.0,
            "last_request_seconds": 0.0,
        }
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_shards, thread_name_prefix="shard-router"
        )
        self._closed = False
        if hub is not None:
            self.attach_telemetry(hub)
        if tracer is not None:
            self.attach_tracer(tracer)

    # ------------------------------------------------------------------
    @property
    def n_train(self) -> int:
        """Global number of training points across the fleet."""
        return self._n_total

    @property
    def n_features(self) -> int:
        """Feature width of the training set."""
        return self._n_features

    @property
    def ready(self) -> bool:
        """Whether the router still serves (``False`` after :meth:`close`).

        The readiness probe behind the observability server's
        ``/ready`` endpoint.
        """
        return not self._closed

    def attach_telemetry(self, hub) -> "ShardRouter":
        """Aggregate the whole fleet into one hub; returns ``self``.

        Shard ``i`` gets the ``hub.labeled("shard<i>")`` view (its
        streams arrive as ``shard<i>.engine.*``, ``shard<i>.backend.*``
        etc.), the router publishes its own ``router.*`` streams
        unprefixed.
        """
        self.telemetry = hub
        for shard in self.shards:
            shard.engine.attach_telemetry(hub.labeled(shard.label))
        return self

    def attach_tracer(self, tracer) -> "ShardRouter":
        """Trace router and shard engines through ``tracer``; returns ``self``.

        A traced request then yields one tree: ``router.request`` at
        the root, one ``shard.request`` child per fan-out leg, each
        nesting the shard engine's own retrieval/valuation spans.  The
        finished tree lands in ``ValuationResult.extra["trace"]``.
        """
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        for shard in self.shards:
            shard.engine.attach_tracer(self.tracer)
        return self

    # ------------------------------------------------------------------
    def value(
        self,
        x_test: np.ndarray,
        y_test: np.ndarray,
        method: str = "exact",
        epsilon: float = 0.1,
        store_per_test: bool = False,
        weights: str = "inverse_distance",
        mode: str = "auto",
    ) -> ValuationResult:
        """Shapley values for one test batch, served by the fleet.

        Same contract (and, for exact-search backends, bit-matched
        values <= 1e-12) as
        :meth:`repro.engine.engine.ValuationEngine.value` over the
        same training set.

        Args:
            x_test, y_test: The query batch.
            method: ``"exact"``, ``"truncated"``, ``"lsh"``,
                ``"weighted"``, or any registered kernel name.
            epsilon: Truncation target for the approximate methods.
            store_per_test: Keep the full per-test value matrix in
                ``extra["per_test"]``.
            weights: Weight-function name for ``method="weighted"``.
            mode: Execution-path selector for ``method="weighted"``.

        Returns:
            A :class:`~repro.types.ValuationResult`; when shards were
            lost under the ``"partial"`` policy,
            ``extra["degraded"]`` records which, why, and the bound on
            the missing contribution.

        Raises:
            ParameterError: On an unknown method, mismatched feature
                count, or a capability violation (e.g. regression via
                a classification-only kernel).
            ShardError: When a shard stays failed under the ``"fail"``
                policy, or no shard survives under ``"partial"``.
        """
        x_test = as_float_matrix(x_test, "x_test")
        y_test = as_label_vector(y_test, x_test.shape[0], "y_test")
        kernel = resolve_method_kernel(method, self.task)
        caps = kernel.capabilities
        if x_test.shape[1] != self._n_features:
            raise ParameterError(
                f"x_test has {x_test.shape[1]} features, expected "
                f"{self._n_features}"
            )
        if self.task != "classification" and not caps.supports_regression:
            raise ParameterError(
                "the truncated/LSH approximations are defined for "
                "classification"
            )
        start = time.perf_counter()
        with self._lock.read():
            with self.tracer.span(
                "router.request",
                method=method,
                kernel=kernel.name,
                sharding=self.sharding,
                n_shards=self.n_shards,
                n_test=int(x_test.shape[0]),
                n_train=self.n_train,
            ) as root:
                if self.sharding == "test":
                    result = self._value_test_sharded(
                        x_test, y_test, method, epsilon, store_per_test,
                        weights, mode, root,
                    )
                elif caps.needs_full_ranking:
                    result = self._value_data_ranked(
                        kernel, method, x_test, y_test, store_per_test,
                        weights, mode, root,
                    )
                else:
                    result = self._value_data_topk(
                        kernel, method, x_test, y_test, epsilon,
                        store_per_test, root,
                    )
            if root:
                result.extra["trace"] = root.summary()
        elapsed = time.perf_counter() - start
        degraded = "degraded" in result.extra
        with self._ops_lock:
            self._ops["requests"] += 1
            if degraded:
                self._ops["degraded_requests"] += 1
            self._timings["request_seconds"] += elapsed
            self._timings["last_request_seconds"] = elapsed
        hub = self.telemetry
        if hub is not None:
            hub.record("router.request_seconds", elapsed)
            if degraded:
                hub.count("router.degraded_requests")
        return result

    def run(self, *args, **kwargs) -> ValuationResult:
        """Alias of :meth:`value` (the serving-layer verb)."""
        return self.value(*args, **kwargs)

    # ------------------------------------------------------------------
    # fan-out machinery
    def _shard_call(self, idx: int, fn, root, **attrs):
        shard = self.shards[idx]
        with self.tracer.span(
            "shard.request", parent=root, shard=shard.label, **attrs
        ):
            return fn(idx, shard)

    def _fan_out(self, fn, failed: dict, root, **attrs) -> dict:
        """Run ``fn(i, shard)`` on every live shard; returns ``{i: result}``.

        Legs that raise are retried once; legs that time out are not
        (a stalled shard would stall the retry too).  Failures land in
        ``failed`` as ``{shard index: reason}`` and the shard is
        skipped by later rounds of the same request.  Under the
        ``"fail"`` policy any failure raises; under ``"partial"`` the
        surviving results are returned (raising only when none survive
        is the caller's job — it knows whether an empty round is
        fatal).
        """
        hub = self.telemetry
        live = [i for i in range(self.n_shards) if i not in failed]
        futures = {
            i: self._pool.submit(self._shard_call, i, fn, root, **attrs)
            for i in live
        }
        newly_failed = 0
        timeouts = 0
        retries = 0
        out: dict = {}
        for i, future in futures.items():
            try:
                out[i] = future.result(timeout=self.shard_timeout)
                continue
            except FutureTimeoutError:
                failed[i] = f"timeout after {self.shard_timeout}s"
                future.cancel()
                newly_failed += 1
                timeouts += 1
                continue
            except Exception as exc:  # noqa: BLE001 - transient shard
                # faults are retried once before the shard is failed
                reason = repr(exc)
            retries += 1
            retry = self._pool.submit(
                self._shard_call, i, fn, root, retry=1, **attrs
            )
            try:
                out[i] = retry.result(timeout=self.shard_timeout)
            except FutureTimeoutError:
                failed[i] = f"timeout after {self.shard_timeout}s (retry)"
                retry.cancel()
                newly_failed += 1
                timeouts += 1
            except Exception as exc:  # noqa: BLE001 - second failure
                # fails the shard for this request
                failed[i] = f"{reason}; retry: {exc!r}"
                newly_failed += 1
        if newly_failed or retries:
            with self._ops_lock:
                self._ops["shard_errors"] += newly_failed
                self._ops["shard_timeouts"] += timeouts
                self._ops["retries"] += retries
            if hub is not None:
                for _ in range(newly_failed):
                    hub.count("router.shard_errors")
                for _ in range(timeouts):
                    hub.count("router.shard_timeouts")
                for _ in range(retries):
                    hub.count("router.retries")
        if newly_failed and self.on_shard_error == "fail":
            reasons = {self.shards[i].label: r for i, r in failed.items()}
            raise ShardError(
                f"{len(failed)} shard(s) failed: {reasons}", reasons=reasons
            )
        return out

    def _chunk_spans(self, n_test: int) -> list[tuple[int, int]]:
        # the engine's working-set heuristic, against the *global* n:
        # the merged (q, n) rank matrix lives at the coordinator
        size = int(max(1, min(256, 2**21 // max(1, self.n_train))))
        return [(s, min(n_test, s + size)) for s in range(0, n_test, size)]

    def _survivors(self, failed: dict) -> tuple[np.ndarray, bool]:
        """Global positions still served, and whether that is everything."""
        if not failed:
            return np.arange(self.n_train, dtype=np.intp), True
        alive = [
            self._placement[i]
            for i in range(self.n_shards)
            if i not in failed
        ]
        if not alive:
            return np.empty(0, dtype=np.intp), False
        positions = np.sort(np.concatenate(alive))
        return positions, positions.shape[0] == self.n_train

    def _degraded_extra(self, failed: dict, bound, semantics: str) -> dict:
        reasons = {self.shards[i].label: r for i, r in failed.items()}
        return {
            "policy": self.on_shard_error,
            "shards": sorted(reasons),
            "reasons": reasons,
            "bound": bound,
            "semantics": semantics,
        }

    # ------------------------------------------------------------------
    def _value_data_ranked(
        self,
        kernel: ValuationKernel,
        method: str,
        x_test: np.ndarray,
        y_test: np.ndarray,
        store_per_test: bool,
        weights: str,
        mode: str,
        root,
    ) -> ValuationResult:
        """Data-sharded execution of a full-ranking kernel.

        Each chunk fans ``engine.retrieve`` out, the per-shard sorted
        rankings merge exactly (lexsort on ``(row, distance, global
        index)`` — the single engine's distance-then-index tie-break),
        and the kernel runs once over the merged plan.
        """
        for shard in self.shards:
            if not shard.engine.backend.supports_full_ranking:
                raise ParameterError(
                    f"backend {shard.engine.backend.name!r} cannot produce "
                    f"the full rankings the {method!r} method needs; use "
                    "method='truncated' or 'lsh'"
                )
        params: dict = {}
        weighted_path = None
        if kernel.name == "weighted":
            params = {"weights": weights, "task": self.task, "mode": mode}
            if hasattr(kernel, "select_path"):
                weighted_path = kernel.select_path(
                    self.k,
                    weights,
                    task=self.task,
                    mode=mode,
                    n_train=self.n_train,
                )
                root.set("weighted_path", weighted_path)
        n, n_test = self.n_train, x_test.shape[0]
        if kernel.name == "weighted" and weighted_path is not None:
            hub = self.telemetry
            if hub is not None:
                hub.count(f"router.weighted_path.{weighted_path}")
        failed: dict = {}
        spans = self._chunk_spans(n_test)
        total = np.zeros(n, dtype=np.float64)
        per_test_chunks: list[np.ndarray] = []
        merge_seconds = 0.0
        for s, e in spans:
            chunk = x_test[s:e]
            per_shard = self._fan_out(
                lambda _i, sh: sh.engine.retrieve(chunk),  # noqa: B023 -
                # consumed synchronously by _fan_out before `chunk` rebinds
                failed,
                root,
                start=s,
                stop=e,
            )
            positions, complete = self._survivors(failed)
            if positions.shape[0] == 0:
                raise ShardError(
                    "no shard survived the request",
                    reasons={
                        self.shards[i].label: r for i, r in failed.items()
                    },
                )
            with self.tracer.span(
                "router.merge", parent=root, start=s, stop=e
            ):
                merge_start = time.perf_counter()
                order, dist = self._merge_rankings(per_shard)
                if not complete:
                    # compact surviving global positions to [0, n_sub)
                    order = np.searchsorted(positions, order)
                plan = RankPlan.from_order(
                    order, self._y[positions], y_test[s:e], distances=dist
                )
                merge_seconds += time.perf_counter() - merge_start
            with self.tracer.span(f"kernel.{kernel.name}", parent=root):
                per_test = kernel.values_from_plan(plan, self.k, **params)
            total[positions] += per_test.sum(axis=0)
            if store_per_test:
                if complete:
                    per_test_chunks.append(per_test)
                else:
                    full = np.zeros((per_test.shape[0], n), dtype=np.float64)
                    full[:, positions] = per_test
                    per_test_chunks.append(full)
        values = total / n_test
        self._record_merge(merge_seconds, len(spans))
        extra = self._result_extra(
            kernel, method, len(spans), failed, per_test_chunks
        )
        if kernel.name == "weighted":
            extra["weights"] = weights
            extra["task"] = self.task
            extra["mode"] = mode
            extra["weighted_path"] = weighted_path
        if method == "exact":
            out_method = (
                "exact" if self.task == "classification" else "exact-regression"
            )
        elif method == "weighted":
            out_method = "exact-weighted"
        else:
            out_method = method
        return ValuationResult(values=values, method=out_method, extra=extra)

    def _value_data_topk(
        self,
        kernel: ValuationKernel,
        method: str,
        x_test: np.ndarray,
        y_test: np.ndarray,
        epsilon: float,
        store_per_test: bool,
        root,
    ) -> ValuationResult:
        """Data-sharded execution of a top-``K*`` (prefix) kernel.

        Every member of the global top ``K*`` is inside its own
        shard's top ``K*``, so merging the per-shard neighbor rows by
        ``(distance, global index)`` and truncating reproduces the
        single engine's rows exactly (for exact-search backends).
        """
        if method == "lsh":
            from .backends import LSHNeighborBackend

            if not all(
                isinstance(s.engine.backend, LSHNeighborBackend)
                for s in self.shards
            ):
                raise ParameterError(
                    "method='lsh' requires the 'lsh' backend; this router "
                    f"runs {self.shards[0].engine.backend.name!r}"
                )
        n, n_test = self.n_train, x_test.shape[0]
        k_star = truncation_rank(self.k, epsilon)
        k_eff = min(k_star, n)
        root.set("k_star", k_star)
        failed: dict = {}
        spans = self._chunk_spans(n_test)
        total = np.zeros(n, dtype=np.float64)
        per_test_chunks: list[np.ndarray] = []
        merge_seconds = 0.0
        for s, e in spans:
            chunk = x_test[s:e]
            per_shard = self._fan_out(
                lambda _i, sh: sh.engine.retrieve(chunk, k=k_eff),  # noqa: B023
                failed,
                root,
                start=s,
                stop=e,
            )
            positions, complete = self._survivors(failed)
            if positions.shape[0] == 0:
                raise ShardError(
                    "no shard survived the request",
                    reasons={
                        self.shards[i].label: r for i, r in failed.items()
                    },
                )
            with self.tracer.span(
                "router.merge", parent=root, start=s, stop=e
            ):
                merge_start = time.perf_counter()
                rows = self._merge_topk(per_shard, e - s, k_eff)
                if not complete:
                    rows = [np.searchsorted(positions, r) for r in rows]
                plan = RankPlan.from_neighbor_rows(
                    rows, self._y[positions], y_test[s:e]
                )
                merge_seconds += time.perf_counter() - merge_start
            with self.tracer.span(f"kernel.{kernel.name}", parent=root):
                per_test = kernel.values_from_plan(
                    plan, self.k, k_star=k_star, exact_anchor=True
                )
            total[positions] += per_test.sum(axis=0)
            if store_per_test:
                if complete:
                    per_test_chunks.append(per_test)
                else:
                    full = np.zeros((per_test.shape[0], n), dtype=np.float64)
                    full[:, positions] = per_test
                    per_test_chunks.append(full)
        values = total / n_test
        self._record_merge(merge_seconds, len(spans))
        extra = self._result_extra(
            kernel, method, len(spans), failed, per_test_chunks
        )
        extra["epsilon"] = epsilon
        extra["k_star"] = k_star
        return ValuationResult(values=values, method=method, extra=extra)

    def _value_test_sharded(
        self,
        x_test: np.ndarray,
        y_test: np.ndarray,
        method: str,
        epsilon: float,
        store_per_test: bool,
        weights: str,
        mode: str,
        root,
    ) -> ValuationResult:
        """Test-stream sharding: eq-8 partial-sum merge of full engines.

        Shard ``i`` values its slice of the test batch against the
        full training set; partial sums ``values_i * n_test_i`` merge
        exactly into the batch mean.  A lost shard under the
        ``"partial"`` policy yields the mean over the *served* tests;
        for classification (per-test values in ``[-1, 1]``) the
        recorded bound ``2 * missing_fraction`` caps the deviation
        from the full-batch mean.
        """
        n, n_test = self.n_train, x_test.shape[0]
        slices = np.array_split(np.arange(n_test), self.n_shards)
        failed: dict = {}

        def call(i: int, shard: Shard):
            rows = slices[i]
            if rows.shape[0] == 0:
                return None
            return shard.engine.value(
                x_test[rows],
                y_test[rows],
                method=method,
                epsilon=epsilon,
                weights=weights,
                mode=mode,
                store_per_test=store_per_test,
            )

        results = self._fan_out(call, failed, root, n_test=n_test)
        alive = {i: r for i, r in results.items() if r is not None}
        if not alive and n_test:
            raise ShardError(
                "no shard survived the request",
                reasons={self.shards[i].label: r for i, r in failed.items()},
            )
        merge_start = time.perf_counter()
        total = np.zeros(n, dtype=np.float64)
        served = 0
        for i in sorted(alive):
            total += alive[i].values * slices[i].shape[0]
            served += slices[i].shape[0]
        values = total / max(served, 1)
        merge_seconds = time.perf_counter() - merge_start
        self._record_merge(merge_seconds, len(alive))
        first = alive[min(alive)] if alive else None
        extra = self._result_extra(
            None, method, len(alive), {}, []
        )
        if first is not None:
            # method-specific context (identical on every replica)
            for key in (
                "epsilon", "k_star", "kernel", "weights", "mode",
                "weighted_path",
            ):
                if key in first.extra:
                    extra[key] = first.extra[key]
        if store_per_test and alive:
            per = np.zeros((n_test, n), dtype=np.float64)
            for i in sorted(alive):
                per[slices[i]] = alive[i].extra["per_test"]
            extra["per_test"] = per
        if failed:
            missing = n_test - served
            fraction = missing / n_test if n_test else 0.0
            bound = (
                2.0 * fraction if self.task == "classification" else None
            )
            extra["degraded"] = self._degraded_extra(
                failed, bound, "mean-over-served-tests"
            )
            extra["degraded"]["missing_tests"] = int(missing)
            extra["degraded"]["missing_fraction"] = fraction
        return ValuationResult(
            values=values,
            method=first.method if first is not None else method,
            extra=extra,
        )

    # ------------------------------------------------------------------
    # exact cross-shard merges
    def _merge_rankings(self, per_shard: dict) -> tuple[np.ndarray, np.ndarray]:
        """Merge per-shard full rankings into the global ranking.

        ``per_shard[i]`` is ``(order_local, dist)`` from shard ``i``;
        local orders map to global positions via the placement map,
        then one flattened ``lexsort`` on ``(row, distance, global
        index)`` reproduces the single engine's stable
        distance-then-index order — robust to non-contiguous
        placements after mutations, where a plain stable concatenation
        sort would mis-break cross-shard ties.
        """
        gidx = np.concatenate(
            [self._placement[i][res[0]] for i, res in sorted(per_shard.items())],
            axis=1,
        )
        dist = np.concatenate(
            [res[1] for _, res in sorted(per_shard.items())], axis=1
        )
        q, m = dist.shape
        rows = np.repeat(np.arange(q), m)
        flat = np.lexsort((gidx.ravel(), dist.ravel(), rows))
        return (
            gidx.ravel()[flat].reshape(q, m),
            dist.ravel()[flat].reshape(q, m),
        )

    def _merge_topk(
        self, per_shard: dict, q: int, k_eff: int
    ) -> list[np.ndarray]:
        """Merge per-shard top-k rows into global top-``k_eff`` rows.

        Rectangular per-shard results take the vectorized lexsort path;
        ragged rows (candidate-set backends) fall back to a per-row
        merge.  Rows shorter than ``k_eff`` stay short — exactly like
        a single engine whose backend found fewer neighbors.
        """
        items = sorted(per_shard.items())
        rect = all(
            isinstance(res[0], np.ndarray) and res[0].ndim == 2
            for _, res in items
        )
        if rect:
            gidx = np.concatenate(
                [self._placement[i][res[0]] for i, res in items], axis=1
            )
            dist = np.concatenate([res[1] for _, res in items], axis=1)
            m = dist.shape[1]
            rows = np.repeat(np.arange(q), m)
            flat = np.lexsort((gidx.ravel(), dist.ravel(), rows))
            merged = gidx.ravel()[flat].reshape(q, m)
            take = min(k_eff, m)
            return list(merged[:, :take])
        out: list[np.ndarray] = []
        for row in range(q):
            gs = [
                self._placement[i][np.asarray(res[0][row], dtype=np.intp)]
                for i, res in items
            ]
            ds = [np.asarray(res[1][row], dtype=np.float64) for _, res in items]
            g = np.concatenate(gs)
            d = np.concatenate(ds)
            order = np.lexsort((g, d))[:k_eff]
            out.append(g[order])
        return out

    # ------------------------------------------------------------------
    def _record_merge(self, merge_seconds: float, n_chunks: int) -> None:
        with self._ops_lock:
            self._timings["merge_seconds"] += merge_seconds
        hub = self.telemetry
        if hub is not None:
            hub.record("router.merge_seconds", merge_seconds)
            hub.record("router.chunks", n_chunks)

    def _result_extra(
        self, kernel, method: str, n_chunks: int, failed: dict,
        per_test_chunks: list,
    ) -> dict:
        extra = {
            "k": self.k,
            "metric": self.metric,
            "backend": self.shards[0].engine.backend.name,
            "kernel": kernel.name if kernel is not None else method,
            "sharding": self.sharding,
            "n_shards": self.n_shards,
            "n_chunks": n_chunks,
            "shards": [s.label for s in self.shards],
        }
        if per_test_chunks:
            extra["per_test"] = np.concatenate(per_test_chunks, axis=0)
        if failed:
            positions, _ = self._survivors(failed)
            missing = self.n_train - positions.shape[0]
            extra["degraded"] = self._degraded_extra(
                failed, None, "exact-subgame-over-surviving-shards"
            )
            extra["degraded"]["missing_points"] = int(missing)
            extra["degraded"]["missing_fraction"] = (
                missing / self.n_train if self.n_train else 0.0
            )
        return extra

    # ------------------------------------------------------------------
    # dynamic datasets: global-index mutations routed to owning shards
    def add_points(
        self, x_new: np.ndarray, y_new: np.ndarray, shard: Optional[int] = None
    ) -> np.ndarray:
        """Append training points; returns the global indices they received.

        Data-sharded routers place the batch on one shard (``shard``,
        or the currently smallest); test-sharded routers broadcast it
        to every replica.  Runs under the router's writer lock — and
        each engine's own writer lock — so no in-flight valuation
        observes a half-applied placement.

        Args:
            x_new, y_new: Points and labels joining the training set.
            shard: Optional explicit owning shard index (data mode).

        Returns:
            The global indices assigned, ``arange(n_before, n_after)``
            — identical to a single engine's.

        Raises:
            ParameterError: On shape mismatch or a shard index out of
                range.
        """
        with self._lock.write():
            x_new, y_new = as_new_points(x_new, y_new, self._n_features)
            m = x_new.shape[0]
            first = self._n_total
            with self.tracer.span(
                "router.mutate", kind="add", n_points=m
            ):
                if self.sharding == "test":
                    for s in self.shards:
                        s.engine.add_points(x_new, y_new)
                    for i in range(self.n_shards):
                        self._placement[i] = np.arange(
                            first + m, dtype=np.intp
                        )
                else:
                    if shard is None:
                        sizes = [p.shape[0] for p in self._placement]
                        shard = int(np.argmin(sizes))
                    elif not 0 <= shard < self.n_shards:
                        raise ParameterError(
                            f"shard index {shard} out of range "
                            f"[0, {self.n_shards})"
                        )
                    self.shards[shard].engine.add_points(x_new, y_new)
                    self._placement[shard] = np.concatenate(
                        (
                            self._placement[shard],
                            np.arange(first, first + m, dtype=np.intp),
                        )
                    )
                self._y = np.concatenate((self._y, y_new))
                self._n_total += m
            self._count_mutation()
            return np.arange(first, first + m, dtype=np.intp)

    def remove_points(self, idx) -> None:
        """Delete training points by global index (``numpy.delete`` semantics).

        Each index is routed to its owning shard; the placement map is
        renumbered exactly as ``numpy.delete`` renumbers a single
        engine's index space, so subsequent requests and mutations see
        identical global indices either way.

        Args:
            idx: Global indices to delete (scalar or array-like).

        Raises:
            ParameterError: On out-of-range or duplicate indices, or
                when a data shard would be emptied (each shard engine
                must keep at least one point).
        """
        idx = np.atleast_1d(np.asarray(idx, dtype=np.intp))
        if idx.size == 0:
            return
        with self._lock.write():
            n = self._n_total
            if np.any((idx < 0) | (idx >= n)):
                raise ParameterError(
                    f"indices must be in [0, {n}), got {idx}"
                )
            if np.unique(idx).shape[0] != idx.shape[0]:
                raise ParameterError(f"duplicate indices in {idx}")
            removed = np.sort(idx)
            with self.tracer.span(
                "router.mutate", kind="remove", n_points=int(idx.size)
            ):
                if self.sharding == "test":
                    for s in self.shards:
                        s.engine.remove_points(idx)
                    for i in range(self.n_shards):
                        self._placement[i] = np.arange(
                            n - idx.size, dtype=np.intp
                        )
                else:
                    for i, shard_obj in enumerate(self.shards):
                        local = np.flatnonzero(
                            np.isin(self._placement[i], removed)
                        )
                        if local.size == 0:
                            continue
                        shard_obj.engine.remove_points(local)
                        self._placement[i] = np.delete(
                            self._placement[i], local
                        )
                    # renumber survivors: global position p drops by the
                    # number of removed positions below it (numpy.delete)
                    for i in range(self.n_shards):
                        self._placement[i] = self._placement[
                            i
                        ] - np.searchsorted(removed, self._placement[i])
                self._y = np.delete(self._y, removed)
                self._n_total -= idx.size
            self._count_mutation()

    def _count_mutation(self) -> None:
        with self._ops_lock:
            self._ops["mutations"] += 1
        hub = self.telemetry
        if hub is not None:
            hub.count("router.mutations")

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Unified-schema snapshot of the router and its fleet.

        Returns:
            A :func:`repro.stats.component_stats` dict; each shard
            engine's own snapshot rides along under ``"shards"``.
        """
        with self._ops_lock:
            counters = dict(self._ops)
            timings = dict(self._timings)
        return component_stats(
            "shard_router",
            counters=counters,
            timings=timings,
            gauges={
                "n_shards": self.n_shards,
                "n_train": self.n_train,
                "k": self.k,
            },
            sharding=self.sharding,
            shards={s.label: s.engine.stats() for s in self.shards},
        )

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=False)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
