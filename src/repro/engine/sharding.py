"""Sharded multi-engine valuation: scale *out*, not just up.

:class:`ShardRouter` puts a coordinator in front of N
:class:`~repro.engine.engine.ValuationEngine` instances and serves the
same surface as one engine, so an unmodified
:class:`~repro.engine.service.ValuationService` (or any caller of
``value``/``add_points``/``remove_points``) can front a fleet.

Two sharding layouts, chosen by the additivity structure of the math:

* ``sharding="data"`` — the training set is partitioned across shards.
  Shapley values themselves are **not** additive across training-set
  partitions (valuing a slice is a different game), so the router
  shards *retrieval* instead: each shard ranks (or top-k queries) its
  slice, the coordinator merges the per-shard sorted results exactly —
  the merge key is ``(test row, distance, global index)``, matching
  the single engine's distance-then-index tie-break bit for bit — and
  runs the valuation kernel once over the merged
  :class:`~repro.core.kernels.RankPlan`.  The result is identical to a
  single engine holding the full set (<= 1e-12), while the O(n log n)
  retrieval work fans out across shards.
* ``sharding="test"`` — every shard holds the full training set and
  the *test batch* is partitioned.  By eq 8 of the paper the
  multi-test value is the mean of single-test values, so per-shard
  partial sums merge exactly: ``sum_i values_i * n_test_i / n_test``.

Robustness is part of the contract: each fan-out leg has a configurable
timeout, transient shard errors are retried once, and a failed shard
either fails the request (``on_shard_error="fail"``) or degrades it
(``"partial"``) — the surviving shards' exact answer is returned with
the missing contribution bounded and recorded in
``ValuationResult.extra["degraded"]``.

Observability threads through the existing layers: one
:class:`~repro.monitor.telemetry.TelemetryHub` aggregates every shard
via ``hub.labeled("shard<i>")`` views, and a traced request produces a
single trace tree — ``router.request`` at the root with one
``shard.request`` child per fan-out leg (each nesting its shard
engine's own spans).  Mutations route to the owning shard under the
router's reader-writer lock, keeping the placement map and the global
index space (``numpy.delete`` semantics) consistent with a single
engine's.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.bounds import bennett_permutations, certified_epsilon
from ..core.kernels import RankPlan, ValuationKernel
from ..core.mcserve import mc_values_from_distances
from ..core.truncated import truncation_rank
from ..exceptions import DeadlineExceededError, ParameterError, ShardError
from ..monitor.tracing import NOOP_TRACER
from ..stats import component_stats
from ..types import (
    ValuationResult,
    as_float_matrix,
    as_label_vector,
    as_new_points,
)
from .engine import ValuationEngine, _RWLock, resolve_method_kernel

__all__ = ["Shard", "ShardRouter"]


@dataclass
class Shard:
    """One member of the fleet: a label and the engine behind it."""

    label: str
    engine: ValuationEngine


class _Breaker:
    """Per-shard circuit breaker: closed → open → half-open → closed.

    ``threshold`` consecutive failed requests open the circuit; while
    open, :meth:`allow` rejects without touching the shard.  After
    ``cooldown`` seconds the breaker goes half-open and admits exactly
    one probe; the probe's outcome closes the circuit (success) or
    re-opens it for another cooldown (failure).  The clock is
    injectable so tests and the fault harness can drive the lifecycle
    without sleeping.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold <= 0:
            raise ParameterError(
                f"breaker threshold must be positive, got {threshold}"
            )
        if cooldown <= 0:
            raise ParameterError(
                f"breaker cooldown must be positive, got {cooldown}"
            )
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self.clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self.clock() - self._opened_at >= self.cooldown:
            return "half-open"
        return "open"

    @property
    def state(self) -> str:
        """``"closed"`` | ``"open"`` | ``"half-open"``."""
        with self._lock:
            return self._state_locked()

    def allow(self) -> bool:
        """Whether a request may reach the shard right now."""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._probing:  # half-open admits one probe at a time
                return False
            self._probing = True
            return True

    def record(self, ok: bool) -> None:
        """Feed one request outcome into the breaker."""
        with self._lock:
            self._probing = False
            if ok:
                self._failures = 0
                self._opened_at = None
                return
            self._failures += 1
            if self._failures >= self.threshold or self._opened_at is not None:
                self._opened_at = self.clock()


class _Budget:
    """A request's remaining deadline, shrinking as hops spend it."""

    def __init__(self, deadline_s: float) -> None:
        self.deadline_s = float(deadline_s)
        self._t0 = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._t0

    def remaining(self) -> float:
        return self.deadline_s - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str) -> None:
        elapsed = self.elapsed()
        if elapsed >= self.deadline_s:
            raise DeadlineExceededError(
                f"deadline of {self.deadline_s:.4f}s exceeded after "
                f"{elapsed:.4f}s ({what})",
                deadline_s=self.deadline_s,
                elapsed_s=elapsed,
            )


class ShardRouter:
    """Fan a valuation request across shard engines and merge exactly.

    Serves the same duck-typed surface as a
    :class:`~repro.engine.engine.ValuationEngine` (``value``, ``run``,
    ``add_points``, ``remove_points``, ``n_train``, ``stats``), so a
    :class:`~repro.engine.service.ValuationService` can front a router
    unchanged.

    Args:
        x_train, y_train: The full training set being valued.
        k: The K of KNN.
        n_shards: Fleet size (>= 1).
        sharding: ``"data"`` (partition the training set; exact merged
            retrieval) or ``"test"`` (replicate the training set;
            partition each test batch, eq-8 partial-sum merge).
        task: ``"classification"`` or ``"regression"``.
        metric: Distance metric, forwarded to every shard engine.
        backend: Backend name forwarded to every shard engine
            (``"brute"``, ``"blocked"``, ``"lsh"``).
        backend_options: Keyword arguments for each shard's backend
            factory.
        hub: Optional :class:`~repro.monitor.telemetry.TelemetryHub`;
            shard ``i`` publishes through ``hub.labeled("shard<i>")``
            and the router's own streams go in unprefixed, so one hub
            describes the whole fleet.
        tracer: Optional tracer shared by the router and every shard.
        shard_timeout: Seconds one fan-out leg may take before the
            shard is declared failed for this request (``None`` waits
            forever).  A timed-out leg is *hedged* once (see
            ``hedge``) rather than retried in place — a stalled shard
            would stall an in-place retry too.
        on_shard_error: ``"fail"`` (default) raises
            :class:`~repro.exceptions.ShardError` when a shard is
            still failed after the retry; ``"partial"`` serves the
            surviving shards' result with the loss bounded and
            recorded in ``extra["degraded"]``.
        cache: Forwarded to every shard engine (see
            :class:`~repro.engine.engine.ValuationEngine`).
        engine_options: Extra keyword arguments for every shard
            engine (``n_workers``, ``chunk_size``, ...).
        max_retries: Retries per fan-out leg for *raised* shard
            errors, with exponential backoff and jitter between
            attempts.
        backoff_base: First-retry backoff in seconds; attempt ``a``
            waits ``backoff_base * 2**(a-1)``, jittered.
        backoff_jitter: Uniform jitter fraction added to each backoff
            (0 disables; 0.5 means up to +50%), decorrelating retry
            storms across concurrent requests.
        hedge: Whether a timed-out leg submits a duplicate (hedged)
            leg and races both — the classic tail-latency cure for a
            transiently slow shard.  The pool is sized ``2 *
            n_shards`` so hedges never queue behind primaries.
        breaker_threshold: Consecutive leg failures that open a
            shard's circuit breaker.
        breaker_cooldown: Seconds an open circuit rejects instantly
            before going half-open (single probe).
        breaker_clock: Injectable monotonic clock for the breakers
            (tests / fault harness).

    Raises:
        ParameterError: On an invalid fleet shape, sharding mode, or
            error policy, or when ``n_shards`` exceeds the training
            set size in data-sharded mode.
    """

    def __init__(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        k: int,
        n_shards: int = 2,
        sharding: str = "data",
        task: str = "classification",
        metric: str = "euclidean",
        backend: str = "brute",
        backend_options: Optional[dict] = None,
        hub=None,
        tracer=None,
        shard_timeout: Optional[float] = None,
        on_shard_error: str = "fail",
        cache=True,
        engine_options: Optional[dict] = None,
        max_retries: int = 1,
        backoff_base: float = 0.05,
        backoff_jitter: float = 0.5,
        hedge: bool = True,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        breaker_clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if n_shards <= 0:
            raise ParameterError(f"n_shards must be positive, got {n_shards}")
        if max_retries < 0:
            raise ParameterError(
                f"max_retries must be non-negative, got {max_retries}"
            )
        if backoff_base < 0 or backoff_jitter < 0:
            raise ParameterError(
                "backoff_base and backoff_jitter must be non-negative"
            )
        if sharding not in ("data", "test"):
            raise ParameterError(
                f"sharding must be 'data' or 'test', got {sharding!r}"
            )
        if on_shard_error not in ("fail", "partial"):
            raise ParameterError(
                f"on_shard_error must be 'fail' or 'partial', got "
                f"{on_shard_error!r}"
            )
        if shard_timeout is not None and shard_timeout <= 0:
            raise ParameterError(
                f"shard_timeout must be positive, got {shard_timeout}"
            )
        x_train = as_float_matrix(x_train, "x_train")
        y_train = as_label_vector(y_train, x_train.shape[0], "y_train")
        n = x_train.shape[0]
        if sharding == "data" and n_shards > n:
            raise ParameterError(
                f"cannot data-shard {n} training points across "
                f"{n_shards} shards"
            )
        self.k = int(k)
        self.task = task
        self.metric = metric
        self.sharding = sharding
        self.n_shards = int(n_shards)
        self.shard_timeout = shard_timeout
        self.on_shard_error = on_shard_error
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_jitter = float(backoff_jitter)
        self.hedge = bool(hedge)
        self.telemetry = None
        self.tracer = NOOP_TRACER
        self._breakers = [
            _Breaker(
                threshold=breaker_threshold,
                cooldown=breaker_cooldown,
                clock=breaker_clock,
            )
            for _ in range(self.n_shards)
        ]
        options = dict(engine_options or {})
        options.setdefault("cache", cache)

        def build(x, y) -> ValuationEngine:
            return ValuationEngine(
                x,
                y,
                k,
                task=task,
                metric=metric,
                backend=backend,
                backend_options=dict(backend_options or {}),
                **options,
            )

        self.shards: list[Shard] = []
        #: per-shard arrays of *global* training positions; strictly
        #: ascending (initial split is contiguous, appends receive new
        #: max positions, deletes preserve order), so a shard's local
        #: index order equals the global order within the shard
        self._placement: list[np.ndarray] = []
        if sharding == "data":
            splits = np.array_split(np.arange(n, dtype=np.intp), n_shards)
            for i, part in enumerate(splits):
                self.shards.append(
                    Shard(f"shard{i}", build(x_train[part], y_train[part]))
                )
                self._placement.append(part.copy())
        else:
            for i in range(n_shards):
                self.shards.append(Shard(f"shard{i}", build(x_train, y_train)))
                self._placement.append(np.arange(n, dtype=np.intp))
        self._y = y_train.copy()
        self._n_total = n
        self._n_features = int(x_train.shape[1])
        self._lock = _RWLock()
        self._ops_lock = threading.Lock()
        self._ops = {
            "requests": 0,
            "degraded_requests": 0,
            "shard_errors": 0,
            "shard_timeouts": 0,
            "retries": 0,
            "mutations": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "circuit_open_rejections": 0,
            "deadline_exceeded": 0,
        }
        self._timings = {
            "request_seconds": 0.0,
            "merge_seconds": 0.0,
            "last_request_seconds": 0.0,
        }
        # 2x so hedged legs never queue behind the primaries
        self._pool = ThreadPoolExecutor(
            max_workers=2 * self.n_shards, thread_name_prefix="shard-router"
        )
        self._closed = False
        if hub is not None:
            self.attach_telemetry(hub)
        if tracer is not None:
            self.attach_tracer(tracer)

    # ------------------------------------------------------------------
    @property
    def n_train(self) -> int:
        """Global number of training points across the fleet."""
        return self._n_total

    @property
    def n_features(self) -> int:
        """Feature width of the training set."""
        return self._n_features

    @property
    def ready(self) -> bool:
        """Whether the router still serves (``False`` after :meth:`close`).

        The readiness probe behind the observability server's
        ``/ready`` endpoint.
        """
        return not self._closed

    def resilience(self) -> dict:
        """Circuit-breaker posture, for the readiness probe.

        Returns ``{"breakers": {label: state}, "open_circuits":
        [labels], "any_open": bool}``; a half-open breaker is not
        listed as open — it is already probing its way back.
        """
        states = {
            shard.label: breaker.state
            for shard, breaker in zip(self.shards, self._breakers)
        }
        open_circuits = [
            label for label, state in states.items() if state == "open"
        ]
        return {
            "breakers": states,
            "open_circuits": open_circuits,
            "any_open": bool(open_circuits),
        }

    def attach_telemetry(self, hub) -> "ShardRouter":
        """Aggregate the whole fleet into one hub; returns ``self``.

        Shard ``i`` gets the ``hub.labeled("shard<i>")`` view (its
        streams arrive as ``shard<i>.engine.*``, ``shard<i>.backend.*``
        etc.), the router publishes its own ``router.*`` streams
        unprefixed.
        """
        self.telemetry = hub
        for shard in self.shards:
            shard.engine.attach_telemetry(hub.labeled(shard.label))
        return self

    def attach_tracer(self, tracer) -> "ShardRouter":
        """Trace router and shard engines through ``tracer``; returns ``self``.

        A traced request then yields one tree: ``router.request`` at
        the root, one ``shard.request`` child per fan-out leg, each
        nesting the shard engine's own retrieval/valuation spans.  The
        finished tree lands in ``ValuationResult.extra["trace"]``.
        """
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        for shard in self.shards:
            shard.engine.attach_tracer(self.tracer)
        return self

    # ------------------------------------------------------------------
    def value(
        self,
        x_test: np.ndarray,
        y_test: np.ndarray,
        method: str = "exact",
        epsilon: float = 0.1,
        store_per_test: bool = False,
        weights: str = "inverse_distance",
        mode: str = "auto",
        deadline_s: Optional[float] = None,
        delta: float = 0.05,
        n_permutations: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> ValuationResult:
        """Shapley values for one test batch, served by the fleet.

        Same contract (and, for exact-search backends, bit-matched
        values <= 1e-12) as
        :meth:`repro.engine.engine.ValuationEngine.value` over the
        same training set.

        Args:
            x_test, y_test: The query batch.
            method: ``"exact"``, ``"truncated"``, ``"lsh"``,
                ``"weighted"``, ``"mc"`` (Monte Carlo over fanned-out
                raw distances, Theorem 5 certificate), or any
                registered kernel name.
            epsilon: Truncation target for the approximate methods.
            store_per_test: Keep the full per-test value matrix in
                ``extra["per_test"]``.
            weights: Weight-function name for ``method="weighted"``.
            mode: Execution-path selector for ``method="weighted"``.
            deadline_s: Optional total budget in seconds.  The
                remaining budget shrinks per hop: each fan-out leg's
                timeout is capped by what is left, test-sharded legs
                carry the residue into their shard engines, and the
                chunk loop raises
                :class:`~repro.exceptions.DeadlineExceededError`
                when the budget is spent.
            delta: Failure probability for ``method="mc"``.
            n_permutations: Explicit Monte Carlo budget (``None``
                sizes it from ``(epsilon, delta)``).
            seed: Seed for the ``method="mc"`` permutation stream.

        Returns:
            A :class:`~repro.types.ValuationResult`; when shards were
            lost under the ``"partial"`` policy,
            ``extra["degraded"]`` records which, why, and the bound on
            the missing contribution.

        Raises:
            ParameterError: On an unknown method, mismatched feature
                count, or a capability violation (e.g. regression via
                a classification-only kernel).
            ShardError: When a shard stays failed under the ``"fail"``
                policy, or no shard survives under ``"partial"``.
            DeadlineExceededError: When ``deadline_s`` runs out
                mid-request.
        """
        x_test = as_float_matrix(x_test, "x_test")
        y_test = as_label_vector(y_test, x_test.shape[0], "y_test")
        if method == "mc":
            kernel = None
            if self.task != "classification":
                raise ParameterError(
                    "method='mc' replays the unweighted KNN classification "
                    "utility and is defined for classification only"
                )
        else:
            kernel = resolve_method_kernel(method, self.task)
        if x_test.shape[1] != self._n_features:
            raise ParameterError(
                f"x_test has {x_test.shape[1]} features, expected "
                f"{self._n_features}"
            )
        if (
            kernel is not None
            and self.task != "classification"
            and not kernel.capabilities.supports_regression
        ):
            raise ParameterError(
                "the truncated/LSH approximations are defined for "
                "classification"
            )
        budget = None
        if deadline_s is not None:
            budget = _Budget(deadline_s)
            budget.check("request admission")
        start = time.perf_counter()
        with self._lock.read():
            with self.tracer.span(
                "router.request",
                method=method,
                kernel=kernel.name if kernel is not None else "mcserve",
                sharding=self.sharding,
                n_shards=self.n_shards,
                n_test=int(x_test.shape[0]),
                n_train=self.n_train,
            ) as root:
                if self.sharding == "test":
                    result = self._value_test_sharded(
                        x_test, y_test, method, epsilon, store_per_test,
                        weights, mode, root, budget,
                        delta, n_permutations, seed,
                    )
                elif method == "mc":
                    result = self._value_data_mc(
                        x_test, y_test, epsilon, delta, n_permutations,
                        seed, store_per_test, root, budget,
                    )
                elif kernel.capabilities.needs_full_ranking:
                    result = self._value_data_ranked(
                        kernel, method, x_test, y_test, store_per_test,
                        weights, mode, root, budget,
                    )
                else:
                    result = self._value_data_topk(
                        kernel, method, x_test, y_test, epsilon,
                        store_per_test, root, budget,
                    )
            if root:
                result.extra["trace"] = root.summary()
        elapsed = time.perf_counter() - start
        degraded = "degraded" in result.extra
        with self._ops_lock:
            self._ops["requests"] += 1
            if degraded:
                self._ops["degraded_requests"] += 1
            self._timings["request_seconds"] += elapsed
            self._timings["last_request_seconds"] = elapsed
        hub = self.telemetry
        if hub is not None:
            hub.record("router.request_seconds", elapsed)
            if degraded:
                hub.count("router.degraded_requests")
        return result

    def run(self, *args, **kwargs) -> ValuationResult:
        """Alias of :meth:`value` (the serving-layer verb)."""
        return self.value(*args, **kwargs)

    # ------------------------------------------------------------------
    # fan-out machinery
    def _shard_call(self, idx: int, fn, root, **attrs):
        shard = self.shards[idx]
        with self.tracer.span(
            "shard.request", parent=root, shard=shard.label, **attrs
        ):
            return fn(idx, shard)

    def _leg_timeout(self, budget) -> Optional[float]:
        """One leg's wait: the shard timeout capped by the budget residue."""
        if budget is None:
            return self.shard_timeout
        remaining = budget.remaining()
        if self.shard_timeout is None:
            return remaining
        return min(self.shard_timeout, remaining)

    def _finish_leg(
        self, i: int, fn, primary, root, budget, attrs: dict, counts: dict
    ) -> tuple[str, object]:
        """Drive one fan-out leg to an outcome.

        ``primary`` is the already-submitted future.  Timeouts hedge
        (submit a duplicate leg and race both); raised errors retry
        with exponential backoff + jitter up to ``max_retries``.
        Returns ``("ok", result)``, ``("fail", reason)``, or
        ``("deadline", reason)`` — deadline exhaustion is the
        *request's* fault, so it must not trip the shard's breaker.
        """
        pending = {primary}
        hedged = False
        attempts = 0
        reasons: list[str] = []
        while True:
            timeout = self._leg_timeout(budget)
            if timeout is not None and timeout <= 0:
                if budget is not None and budget.expired():
                    return "deadline", "deadline exhausted mid fan-out"
                timeout = 0.0
            done, pending = wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # every outstanding leg is past its window
                if (
                    self.hedge
                    and not hedged
                    and (budget is None or not budget.expired())
                ):
                    hedged = True
                    counts["hedges"] += 1
                    pending = set(pending)
                    pending.add(
                        self._pool.submit(
                            self._shard_call, i, fn, root, hedge=1, **attrs
                        )
                    )
                    continue
                counts["timeouts"] += 1
                label = " (hedged)" if hedged else ""
                return "fail", f"timeout after {self.shard_timeout}s{label}"
            exc: Optional[BaseException] = None
            for f in done:
                if f.exception() is None:
                    if hedged and f is not primary:
                        counts["hedge_wins"] += 1
                    return "ok", f.result()
                exc = f.exception()
            if pending:
                # a raced leg is still in flight; let it finish the race
                continue
            if isinstance(exc, DeadlineExceededError):
                # the shard ran out of propagated budget — not a fault
                return "deadline", repr(exc)
            reasons.append(repr(exc))
            if attempts >= self.max_retries:
                return "fail", "; ".join(reasons)
            attempts += 1
            counts["retries"] += 1
            delay = self.backoff_base * (2 ** (attempts - 1))
            if self.backoff_jitter:
                delay *= 1.0 + self.backoff_jitter * random.random()
            if budget is not None:
                delay = min(delay, max(0.0, budget.remaining()))
            if delay > 0:
                time.sleep(delay)
            primary = self._pool.submit(
                self._shard_call, i, fn, root, retry=attempts, **attrs
            )
            pending = {primary}
            hedged = False

    def _fan_out(self, fn, failed: dict, root, budget=None, **attrs) -> dict:
        """Run ``fn(i, shard)`` on every live shard; returns ``{i: result}``.

        Per leg: the shard's circuit breaker is consulted first (an
        open circuit fails the shard for this request without
        touching it), raised errors retry with exponential backoff +
        jitter, timed-out legs race a hedged duplicate, and every
        final outcome feeds the breaker.  Failures land in ``failed``
        as ``{shard index: reason}`` and the shard is skipped by
        later rounds of the same request.  Under the ``"fail"``
        policy any failure raises; under ``"partial"`` the surviving
        results are returned (raising only when none survive is the
        caller's job — it knows whether an empty round is fatal).
        Deadline exhaustion raises
        :class:`~repro.exceptions.DeadlineExceededError` under either
        policy — a request whose budget is gone has no useful partial
        to serve.
        """
        hub = self.telemetry
        counts = {"hedges": 0, "hedge_wins": 0, "retries": 0, "timeouts": 0}
        circuit_rejections = 0
        live = []
        for i in range(self.n_shards):
            if i in failed:
                continue
            if not self._breakers[i].allow():
                failed[i] = "circuit open"
                circuit_rejections += 1
                continue
            live.append(i)
        if budget is not None:
            budget.check("before shard fan-out")
        # all primaries launch before any leg is awaited, so legs run
        # concurrently and the collection wait is max, not sum
        primaries = {
            i: self._pool.submit(self._shard_call, i, fn, root, **attrs)
            for i in live
        }
        out: dict = {}
        newly_failed = 0
        deadline_reason = None
        for i in live:
            status, payload = self._finish_leg(
                i, fn, primaries[i], root, budget, attrs, counts
            )
            if status == "ok":
                out[i] = payload
                self._breakers[i].record(True)
            elif status == "fail":
                failed[i] = payload
                newly_failed += 1
                self._breakers[i].record(False)
            else:  # deadline — the request dies, the breaker is untouched
                failed[i] = payload
                deadline_reason = payload
        if newly_failed or circuit_rejections or any(counts.values()):
            with self._ops_lock:
                self._ops["shard_errors"] += newly_failed
                self._ops["shard_timeouts"] += counts["timeouts"]
                self._ops["retries"] += counts["retries"]
                self._ops["hedges"] += counts["hedges"]
                self._ops["hedge_wins"] += counts["hedge_wins"]
                self._ops["circuit_open_rejections"] += circuit_rejections
            if hub is not None:
                for name, n in (
                    ("router.shard_errors", newly_failed),
                    ("router.shard_timeouts", counts["timeouts"]),
                    ("router.retries", counts["retries"]),
                    ("router.hedges", counts["hedges"]),
                    ("router.hedge_wins", counts["hedge_wins"]),
                    ("router.circuit_open_rejections", circuit_rejections),
                ):
                    for _ in range(n):
                        hub.count(name)
        if deadline_reason is not None:
            with self._ops_lock:
                self._ops["deadline_exceeded"] += 1
            if hub is not None:
                hub.count("router.deadline_exceeded")
            raise DeadlineExceededError(
                f"request deadline spent during shard fan-out: "
                f"{deadline_reason}",
                deadline_s=budget.deadline_s if budget is not None else None,
                elapsed_s=budget.elapsed() if budget is not None else None,
            )
        if (newly_failed or circuit_rejections) and self.on_shard_error == "fail":
            reasons = {self.shards[i].label: r for i, r in failed.items()}
            raise ShardError(
                f"{len(failed)} shard(s) failed: {reasons}", reasons=reasons
            )
        return out

    def _chunk_spans(self, n_test: int) -> list[tuple[int, int]]:
        # the engine's working-set heuristic, against the *global* n:
        # the merged (q, n) rank matrix lives at the coordinator
        size = int(max(1, min(256, 2**21 // max(1, self.n_train))))
        return [(s, min(n_test, s + size)) for s in range(0, n_test, size)]

    def _survivors(self, failed: dict) -> tuple[np.ndarray, bool]:
        """Global positions still served, and whether that is everything."""
        if not failed:
            return np.arange(self.n_train, dtype=np.intp), True
        alive = [
            self._placement[i]
            for i in range(self.n_shards)
            if i not in failed
        ]
        if not alive:
            return np.empty(0, dtype=np.intp), False
        positions = np.sort(np.concatenate(alive))
        return positions, positions.shape[0] == self.n_train

    def _degraded_extra(self, failed: dict, bound, semantics: str) -> dict:
        reasons = {self.shards[i].label: r for i, r in failed.items()}
        return {
            "policy": self.on_shard_error,
            "shards": sorted(reasons),
            "reasons": reasons,
            "bound": bound,
            "semantics": semantics,
        }

    # ------------------------------------------------------------------
    def _value_data_ranked(
        self,
        kernel: ValuationKernel,
        method: str,
        x_test: np.ndarray,
        y_test: np.ndarray,
        store_per_test: bool,
        weights: str,
        mode: str,
        root,
        budget=None,
    ) -> ValuationResult:
        """Data-sharded execution of a full-ranking kernel.

        Each chunk fans ``engine.retrieve`` out, the per-shard sorted
        rankings merge exactly (lexsort on ``(row, distance, global
        index)`` — the single engine's distance-then-index tie-break),
        and the kernel runs once over the merged plan.
        """
        for shard in self.shards:
            if not shard.engine.backend.supports_full_ranking:
                raise ParameterError(
                    f"backend {shard.engine.backend.name!r} cannot produce "
                    f"the full rankings the {method!r} method needs; use "
                    "method='truncated' or 'lsh'"
                )
        params: dict = {}
        weighted_path = None
        if kernel.name == "weighted":
            params = {"weights": weights, "task": self.task, "mode": mode}
            if hasattr(kernel, "select_path"):
                weighted_path = kernel.select_path(
                    self.k,
                    weights,
                    task=self.task,
                    mode=mode,
                    n_train=self.n_train,
                )
                root.set("weighted_path", weighted_path)
        n, n_test = self.n_train, x_test.shape[0]
        if kernel.name == "weighted" and weighted_path is not None:
            hub = self.telemetry
            if hub is not None:
                hub.count(f"router.weighted_path.{weighted_path}")
        failed: dict = {}
        spans = self._chunk_spans(n_test)
        total = np.zeros(n, dtype=np.float64)
        per_test_chunks: list[np.ndarray] = []
        merge_seconds = 0.0
        for s, e in spans:
            if budget is not None:
                budget.check("between ranked chunks")
            chunk = x_test[s:e]
            per_shard = self._fan_out(
                lambda _i, sh: sh.engine.retrieve(chunk),  # noqa: B023 -
                # consumed synchronously by _fan_out before `chunk` rebinds
                failed,
                root,
                budget=budget,
                start=s,
                stop=e,
            )
            positions, complete = self._survivors(failed)
            if positions.shape[0] == 0:
                raise ShardError(
                    "no shard survived the request",
                    reasons={
                        self.shards[i].label: r for i, r in failed.items()
                    },
                )
            with self.tracer.span(
                "router.merge", parent=root, start=s, stop=e
            ):
                merge_start = time.perf_counter()
                order, dist = self._merge_rankings(per_shard)
                if not complete:
                    # compact surviving global positions to [0, n_sub)
                    order = np.searchsorted(positions, order)
                plan = RankPlan.from_order(
                    order, self._y[positions], y_test[s:e], distances=dist
                )
                merge_seconds += time.perf_counter() - merge_start
            with self.tracer.span(f"kernel.{kernel.name}", parent=root):
                per_test = kernel.values_from_plan(plan, self.k, **params)
            total[positions] += per_test.sum(axis=0)
            if store_per_test:
                if complete:
                    per_test_chunks.append(per_test)
                else:
                    full = np.zeros((per_test.shape[0], n), dtype=np.float64)
                    full[:, positions] = per_test
                    per_test_chunks.append(full)
        values = total / n_test
        self._record_merge(merge_seconds, len(spans))
        extra = self._result_extra(
            kernel, method, len(spans), failed, per_test_chunks
        )
        if kernel.name == "weighted":
            extra["weights"] = weights
            extra["task"] = self.task
            extra["mode"] = mode
            extra["weighted_path"] = weighted_path
        if method == "exact":
            out_method = (
                "exact" if self.task == "classification" else "exact-regression"
            )
        elif method == "weighted":
            out_method = "exact-weighted"
        else:
            out_method = method
        return ValuationResult(values=values, method=out_method, extra=extra)

    def _value_data_topk(
        self,
        kernel: ValuationKernel,
        method: str,
        x_test: np.ndarray,
        y_test: np.ndarray,
        epsilon: float,
        store_per_test: bool,
        root,
        budget=None,
    ) -> ValuationResult:
        """Data-sharded execution of a top-``K*`` (prefix) kernel.

        Every member of the global top ``K*`` is inside its own
        shard's top ``K*``, so merging the per-shard neighbor rows by
        ``(distance, global index)`` and truncating reproduces the
        single engine's rows exactly (for exact-search backends).
        """
        if method == "lsh":
            from .backends import LSHNeighborBackend

            if not all(
                isinstance(s.engine.backend, LSHNeighborBackend)
                for s in self.shards
            ):
                raise ParameterError(
                    "method='lsh' requires the 'lsh' backend; this router "
                    f"runs {self.shards[0].engine.backend.name!r}"
                )
        n, n_test = self.n_train, x_test.shape[0]
        k_star = truncation_rank(self.k, epsilon)
        k_eff = min(k_star, n)
        root.set("k_star", k_star)
        failed: dict = {}
        spans = self._chunk_spans(n_test)
        total = np.zeros(n, dtype=np.float64)
        per_test_chunks: list[np.ndarray] = []
        merge_seconds = 0.0
        for s, e in spans:
            if budget is not None:
                budget.check("between top-k chunks")
            chunk = x_test[s:e]
            per_shard = self._fan_out(
                lambda _i, sh: sh.engine.retrieve(chunk, k=k_eff),  # noqa: B023
                failed,
                root,
                budget=budget,
                start=s,
                stop=e,
            )
            positions, complete = self._survivors(failed)
            if positions.shape[0] == 0:
                raise ShardError(
                    "no shard survived the request",
                    reasons={
                        self.shards[i].label: r for i, r in failed.items()
                    },
                )
            with self.tracer.span(
                "router.merge", parent=root, start=s, stop=e
            ):
                merge_start = time.perf_counter()
                rows = self._merge_topk(per_shard, e - s, k_eff)
                if not complete:
                    rows = [np.searchsorted(positions, r) for r in rows]
                plan = RankPlan.from_neighbor_rows(
                    rows, self._y[positions], y_test[s:e]
                )
                merge_seconds += time.perf_counter() - merge_start
            with self.tracer.span(f"kernel.{kernel.name}", parent=root):
                per_test = kernel.values_from_plan(
                    plan, self.k, k_star=k_star, exact_anchor=True
                )
            total[positions] += per_test.sum(axis=0)
            if store_per_test:
                if complete:
                    per_test_chunks.append(per_test)
                else:
                    full = np.zeros((per_test.shape[0], n), dtype=np.float64)
                    full[:, positions] = per_test
                    per_test_chunks.append(full)
        values = total / n_test
        self._record_merge(merge_seconds, len(spans))
        extra = self._result_extra(
            kernel, method, len(spans), failed, per_test_chunks
        )
        extra["epsilon"] = epsilon
        extra["k_star"] = k_star
        return ValuationResult(values=values, method=method, extra=extra)

    def _value_test_sharded(
        self,
        x_test: np.ndarray,
        y_test: np.ndarray,
        method: str,
        epsilon: float,
        store_per_test: bool,
        weights: str,
        mode: str,
        root,
        budget=None,
        delta: float = 0.05,
        n_permutations: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> ValuationResult:
        """Test-stream sharding: eq-8 partial-sum merge of full engines.

        Shard ``i`` values its slice of the test batch against the
        full training set; partial sums ``values_i * n_test_i`` merge
        exactly into the batch mean.  A lost shard under the
        ``"partial"`` policy yields the mean over the *served* tests;
        for classification (per-test values in ``[-1, 1]``) the
        recorded bound ``2 * missing_fraction`` caps the deviation
        from the full-batch mean.  A request budget propagates: each
        leg hands its shard engine whatever remains at launch time.
        """
        n, n_test = self.n_train, x_test.shape[0]
        slices = np.array_split(np.arange(n_test), self.n_shards)
        failed: dict = {}

        def call(i: int, shard: Shard):
            rows = slices[i]
            if rows.shape[0] == 0:
                return None
            kwargs: dict = {
                "method": method,
                "epsilon": epsilon,
                "weights": weights,
                "mode": mode,
                "store_per_test": store_per_test,
            }
            if method == "mc":
                kwargs["delta"] = delta
                kwargs["n_permutations"] = n_permutations
                # distinct but deterministic per replica
                kwargs["seed"] = None if seed is None else seed + i
            if budget is not None:
                # the residue at launch time, not at request entry:
                # each hop shrinks what the next layer may spend
                kwargs["deadline_s"] = budget.remaining()
            return shard.engine.value(x_test[rows], y_test[rows], **kwargs)

        results = self._fan_out(call, failed, root, budget=budget, n_test=n_test)
        alive = {i: r for i, r in results.items() if r is not None}
        if not alive and n_test:
            raise ShardError(
                "no shard survived the request",
                reasons={self.shards[i].label: r for i, r in failed.items()},
            )
        merge_start = time.perf_counter()
        total = np.zeros(n, dtype=np.float64)
        served = 0
        for i in sorted(alive):
            total += alive[i].values * slices[i].shape[0]
            served += slices[i].shape[0]
        values = total / max(served, 1)
        merge_seconds = time.perf_counter() - merge_start
        self._record_merge(merge_seconds, len(alive))
        first = alive[min(alive)] if alive else None
        extra = self._result_extra(
            None, method, len(alive), {}, []
        )
        if first is not None:
            # method-specific context (identical on every replica)
            for key in (
                "epsilon", "k_star", "kernel", "weights", "mode",
                "weighted_path", "delta", "n_permutations", "certificate",
            ):
                if key in first.extra:
                    extra[key] = first.extra[key]
        if store_per_test and alive:
            per = np.zeros((n_test, n), dtype=np.float64)
            for i in sorted(alive):
                per[slices[i]] = alive[i].extra["per_test"]
            extra["per_test"] = per
        if failed:
            missing = n_test - served
            fraction = missing / n_test if n_test else 0.0
            bound = (
                2.0 * fraction if self.task == "classification" else None
            )
            extra["degraded"] = self._degraded_extra(
                failed, bound, "mean-over-served-tests"
            )
            extra["degraded"]["missing_tests"] = int(missing)
            extra["degraded"]["missing_fraction"] = fraction
        return ValuationResult(
            values=values,
            method=first.method if first is not None else method,
            extra=extra,
        )

    def _value_data_mc(
        self,
        x_test: np.ndarray,
        y_test: np.ndarray,
        epsilon: float,
        delta: float,
        n_permutations: Optional[int],
        seed: Optional[int],
        store_per_test: bool,
        root,
        budget=None,
    ) -> ValuationResult:
        """Data-sharded Monte Carlo: fan out raw distances, sample once.

        Each shard computes its slice's distance columns
        (:meth:`~repro.engine.engine.ValuationEngine.distances` — no
        sort anywhere), the coordinator reassembles the global
        ``(q, n)`` distance matrix in global-position order and runs
        the sort-free estimator once.  The permutation budget is
        sized against the *full* training set, so the certificate
        stays valid for any surviving subgame under the ``"partial"``
        policy (Theorem 5's budget grows with N).
        """
        n, n_test = self.n_train, x_test.shape[0]
        r = 1.0 / self.k
        if n_permutations is None:
            t_budget = bennett_permutations(epsilon, delta, n, self.k, r)
            cert_eps = float(epsilon)
        else:
            if n_permutations <= 0:
                raise ParameterError(
                    f"n_permutations must be positive, got {n_permutations}"
                )
            t_budget = int(n_permutations)
            cert_eps = certified_epsilon(t_budget, delta, n, self.k, r)
        root.set("n_permutations", t_budget)
        failed: dict = {}
        spans = self._chunk_spans(n_test)
        streams = np.random.SeedSequence(seed).spawn(len(spans))
        total = np.zeros(n, dtype=np.float64)
        per_test_chunks: list[np.ndarray] = []
        merge_seconds = 0.0
        for chunk_no, (s, e) in enumerate(spans):
            if budget is not None:
                budget.check("between mc chunks")
            chunk = x_test[s:e]
            per_shard = self._fan_out(
                lambda _i, sh: sh.engine.distances(chunk),  # noqa: B023 -
                # consumed synchronously by _fan_out before `chunk` rebinds
                failed,
                root,
                budget=budget,
                start=s,
                stop=e,
            )
            positions, complete = self._survivors(failed)
            if positions.shape[0] == 0:
                raise ShardError(
                    "no shard survived the request",
                    reasons={
                        self.shards[i].label: r for i, r in failed.items()
                    },
                )
            with self.tracer.span(
                "router.merge", parent=root, start=s, stop=e
            ):
                merge_start = time.perf_counter()
                items = sorted(per_shard.items())
                gidx = np.concatenate(
                    [self._placement[i] for i, _ in items]
                )
                dist = np.concatenate([d for _, d in items], axis=1)
                # reassemble columns in ascending global-position
                # order — the order `positions` (and self._y) use
                col_order = np.argsort(gidx)
                dist = dist[:, col_order]
                y_sub = self._y[positions]
                match = (
                    y_sub[None, :] == y_test[s:e, None]
                ).astype(np.float64)
                merge_seconds += time.perf_counter() - merge_start
            with self.tracer.span("kernel.mcserve", parent=root):
                per_test = mc_values_from_distances(
                    dist,
                    match,
                    self.k,
                    t_budget,
                    np.random.default_rng(streams[chunk_no]),
                )
            total[positions] += per_test.sum(axis=0)
            if store_per_test:
                if complete:
                    per_test_chunks.append(per_test)
                else:
                    full = np.zeros((per_test.shape[0], n), dtype=np.float64)
                    full[:, positions] = per_test
                    per_test_chunks.append(full)
        values = total / n_test
        self._record_merge(merge_seconds, len(spans))
        extra = self._result_extra(
            None, "mc", len(spans), failed, per_test_chunks
        )
        extra["kernel"] = "mcserve"
        extra["epsilon"] = cert_eps
        extra["delta"] = float(delta)
        extra["n_permutations"] = t_budget
        extra["certificate"] = {
            "epsilon": cert_eps,
            "delta": float(delta),
            "n_permutations": t_budget,
            "bound": "bennett-theorem5",
        }
        return ValuationResult(values=values, method="mc", extra=extra)

    # ------------------------------------------------------------------
    # exact cross-shard merges
    def _merge_rankings(self, per_shard: dict) -> tuple[np.ndarray, np.ndarray]:
        """Merge per-shard full rankings into the global ranking.

        ``per_shard[i]`` is ``(order_local, dist)`` from shard ``i``;
        local orders map to global positions via the placement map,
        then one flattened ``lexsort`` on ``(row, distance, global
        index)`` reproduces the single engine's stable
        distance-then-index order — robust to non-contiguous
        placements after mutations, where a plain stable concatenation
        sort would mis-break cross-shard ties.
        """
        gidx = np.concatenate(
            [self._placement[i][res[0]] for i, res in sorted(per_shard.items())],
            axis=1,
        )
        dist = np.concatenate(
            [res[1] for _, res in sorted(per_shard.items())], axis=1
        )
        q, m = dist.shape
        rows = np.repeat(np.arange(q), m)
        flat = np.lexsort((gidx.ravel(), dist.ravel(), rows))
        return (
            gidx.ravel()[flat].reshape(q, m),
            dist.ravel()[flat].reshape(q, m),
        )

    def _merge_topk(
        self, per_shard: dict, q: int, k_eff: int
    ) -> list[np.ndarray]:
        """Merge per-shard top-k rows into global top-``k_eff`` rows.

        Rectangular per-shard results take the vectorized lexsort path;
        ragged rows (candidate-set backends) fall back to a per-row
        merge.  Rows shorter than ``k_eff`` stay short — exactly like
        a single engine whose backend found fewer neighbors.
        """
        items = sorted(per_shard.items())
        rect = all(
            isinstance(res[0], np.ndarray) and res[0].ndim == 2
            for _, res in items
        )
        if rect:
            gidx = np.concatenate(
                [self._placement[i][res[0]] for i, res in items], axis=1
            )
            dist = np.concatenate([res[1] for _, res in items], axis=1)
            m = dist.shape[1]
            rows = np.repeat(np.arange(q), m)
            flat = np.lexsort((gidx.ravel(), dist.ravel(), rows))
            merged = gidx.ravel()[flat].reshape(q, m)
            take = min(k_eff, m)
            return list(merged[:, :take])
        out: list[np.ndarray] = []
        for row in range(q):
            gs = [
                self._placement[i][np.asarray(res[0][row], dtype=np.intp)]
                for i, res in items
            ]
            ds = [np.asarray(res[1][row], dtype=np.float64) for _, res in items]
            g = np.concatenate(gs)
            d = np.concatenate(ds)
            order = np.lexsort((g, d))[:k_eff]
            out.append(g[order])
        return out

    # ------------------------------------------------------------------
    def _record_merge(self, merge_seconds: float, n_chunks: int) -> None:
        with self._ops_lock:
            self._timings["merge_seconds"] += merge_seconds
        hub = self.telemetry
        if hub is not None:
            hub.record("router.merge_seconds", merge_seconds)
            hub.record("router.chunks", n_chunks)

    def _result_extra(
        self, kernel, method: str, n_chunks: int, failed: dict,
        per_test_chunks: list,
    ) -> dict:
        extra = {
            "k": self.k,
            "metric": self.metric,
            "backend": self.shards[0].engine.backend.name,
            "kernel": kernel.name if kernel is not None else method,
            "sharding": self.sharding,
            "n_shards": self.n_shards,
            "n_chunks": n_chunks,
            "shards": [s.label for s in self.shards],
        }
        if per_test_chunks:
            extra["per_test"] = np.concatenate(per_test_chunks, axis=0)
        if failed:
            positions, _ = self._survivors(failed)
            missing = self.n_train - positions.shape[0]
            extra["degraded"] = self._degraded_extra(
                failed, None, "exact-subgame-over-surviving-shards"
            )
            extra["degraded"]["missing_points"] = int(missing)
            extra["degraded"]["missing_fraction"] = (
                missing / self.n_train if self.n_train else 0.0
            )
        return extra

    # ------------------------------------------------------------------
    # dynamic datasets: global-index mutations routed to owning shards
    def add_points(
        self, x_new: np.ndarray, y_new: np.ndarray, shard: Optional[int] = None
    ) -> np.ndarray:
        """Append training points; returns the global indices they received.

        Data-sharded routers place the batch on one shard (``shard``,
        or the currently smallest); test-sharded routers broadcast it
        to every replica.  Runs under the router's writer lock — and
        each engine's own writer lock — so no in-flight valuation
        observes a half-applied placement.

        Args:
            x_new, y_new: Points and labels joining the training set.
            shard: Optional explicit owning shard index (data mode).

        Returns:
            The global indices assigned, ``arange(n_before, n_after)``
            — identical to a single engine's.

        Raises:
            ParameterError: On shape mismatch or a shard index out of
                range.
        """
        with self._lock.write():
            x_new, y_new = as_new_points(x_new, y_new, self._n_features)
            m = x_new.shape[0]
            first = self._n_total
            with self.tracer.span(
                "router.mutate", kind="add", n_points=m
            ):
                if self.sharding == "test":
                    for s in self.shards:
                        s.engine.add_points(x_new, y_new)
                    for i in range(self.n_shards):
                        self._placement[i] = np.arange(
                            first + m, dtype=np.intp
                        )
                else:
                    if shard is None:
                        sizes = [p.shape[0] for p in self._placement]
                        shard = int(np.argmin(sizes))
                    elif not 0 <= shard < self.n_shards:
                        raise ParameterError(
                            f"shard index {shard} out of range "
                            f"[0, {self.n_shards})"
                        )
                    self.shards[shard].engine.add_points(x_new, y_new)
                    self._placement[shard] = np.concatenate(
                        (
                            self._placement[shard],
                            np.arange(first, first + m, dtype=np.intp),
                        )
                    )
                self._y = np.concatenate((self._y, y_new))
                self._n_total += m
            self._count_mutation()
            return np.arange(first, first + m, dtype=np.intp)

    def remove_points(self, idx) -> None:
        """Delete training points by global index (``numpy.delete`` semantics).

        Each index is routed to its owning shard; the placement map is
        renumbered exactly as ``numpy.delete`` renumbers a single
        engine's index space, so subsequent requests and mutations see
        identical global indices either way.

        Args:
            idx: Global indices to delete (scalar or array-like).

        Raises:
            ParameterError: On out-of-range or duplicate indices, or
                when a data shard would be emptied (each shard engine
                must keep at least one point).
        """
        idx = np.atleast_1d(np.asarray(idx, dtype=np.intp))
        if idx.size == 0:
            return
        with self._lock.write():
            n = self._n_total
            if np.any((idx < 0) | (idx >= n)):
                raise ParameterError(
                    f"indices must be in [0, {n}), got {idx}"
                )
            if np.unique(idx).shape[0] != idx.shape[0]:
                raise ParameterError(f"duplicate indices in {idx}")
            removed = np.sort(idx)
            with self.tracer.span(
                "router.mutate", kind="remove", n_points=int(idx.size)
            ):
                if self.sharding == "test":
                    for s in self.shards:
                        s.engine.remove_points(idx)
                    for i in range(self.n_shards):
                        self._placement[i] = np.arange(
                            n - idx.size, dtype=np.intp
                        )
                else:
                    for i, shard_obj in enumerate(self.shards):
                        local = np.flatnonzero(
                            np.isin(self._placement[i], removed)
                        )
                        if local.size == 0:
                            continue
                        shard_obj.engine.remove_points(local)
                        self._placement[i] = np.delete(
                            self._placement[i], local
                        )
                    # renumber survivors: global position p drops by the
                    # number of removed positions below it (numpy.delete)
                    for i in range(self.n_shards):
                        self._placement[i] = self._placement[
                            i
                        ] - np.searchsorted(removed, self._placement[i])
                self._y = np.delete(self._y, removed)
                self._n_total -= idx.size
            self._count_mutation()

    def _count_mutation(self) -> None:
        with self._ops_lock:
            self._ops["mutations"] += 1
        hub = self.telemetry
        if hub is not None:
            hub.count("router.mutations")

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Unified-schema snapshot of the router and its fleet.

        Returns:
            A :func:`repro.stats.component_stats` dict; each shard
            engine's own snapshot rides along under ``"shards"``.
        """
        with self._ops_lock:
            counters = dict(self._ops)
            timings = dict(self._timings)
        return component_stats(
            "shard_router",
            counters=counters,
            timings=timings,
            gauges={
                "n_shards": self.n_shards,
                "n_train": self.n_train,
                "k": self.k,
            },
            sharding=self.sharding,
            shards={s.label: s.engine.stats() for s in self.shards},
            breakers={
                s.label: b.state
                for s, b in zip(self.shards, self._breakers)
            },
        )

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=False)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
