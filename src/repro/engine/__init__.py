"""Execution layer: batched, cached, parallel valuation serving.

The algorithms in :mod:`repro.core` are single-shot: one call, one
fresh ranking, one result.  This package is the system around them —
the part the paper's Section 3.2 serving scenario actually needs:

* :mod:`~repro.engine.backends` — a :class:`NeighborBackend` contract
  with exact (``brute``), memory-bounded (``blocked``) and sublinear
  (``lsh``) implementations behind one registry;
* :mod:`~repro.engine.cache` — dataset fingerprinting and a rank/top-K
  LRU so repeated valuations of the same (train, test, metric) pair
  skip the sort entirely;
* :mod:`~repro.engine.engine` — :class:`ValuationEngine`, chunking test
  batches, running chunks on a thread pool, and merging Shapley partial
  sums exactly (additivity, eq 8);
* :mod:`~repro.engine.incremental` — :class:`IncrementalValuator`,
  exact delta updates of fitted rank state under training-set churn
  (the dynamic data-market workload);
* :mod:`~repro.engine.service` — :class:`ValuationService`, a priority
  queue of :class:`ValuationRequest` and :class:`MutationRequest` jobs
  with per-job latency stats, bounded-queue admission control
  (load-shedding), and per-request deadlines;
* :mod:`~repro.engine.degradation` — :class:`DegradationController`,
  the precision ladder that trades certified accuracy for latency
  under overload (exact → Theorem-2 truncation → Theorem-5 Monte
  Carlo, every rung carrying its error certificate).

Every component answers ``stats()`` with the unified schema of
:mod:`repro.stats`, and publishes runtime streams into an attached
:class:`repro.monitor.TelemetryHub` — the collection surface of the
monitoring/adaptive-maintenance subsystem (:mod:`repro.monitor`).
"""

from .backends import (
    BlockedExactBackend,
    BruteForceBackend,
    LSHNeighborBackend,
    NeighborBackend,
    available_backends,
    make_backend,
    register_backend,
)
from .cache import CacheStats, RankCache, array_fingerprint, dataset_fingerprint
from .degradation import DEFAULT_LADDER, DegradationController, PrecisionRung
from .engine import ValuationEngine, resolve_method_kernel
from .incremental import IncrementalValuator
from .sharding import Shard, ShardRouter
from .service import (
    MutationRequest,
    MutationResult,
    ValuationJob,
    ValuationRequest,
    ValuationService,
)

__all__ = [
    "NeighborBackend",
    "BruteForceBackend",
    "BlockedExactBackend",
    "LSHNeighborBackend",
    "register_backend",
    "available_backends",
    "make_backend",
    "RankCache",
    "CacheStats",
    "array_fingerprint",
    "dataset_fingerprint",
    "ValuationEngine",
    "resolve_method_kernel",
    "DegradationController",
    "PrecisionRung",
    "DEFAULT_LADDER",
    "IncrementalValuator",
    "Shard",
    "ShardRouter",
    "ValuationService",
    "ValuationRequest",
    "MutationRequest",
    "MutationResult",
    "ValuationJob",
]
