"""The precision ladder: trade certified accuracy for latency under load.

The paper's approximation hierarchy is, read operationally, a
*degradation ladder*: Theorem 1 is the exact answer, Theorem 2 buys an
``epsilon`` max-norm guarantee for a shorter prefix of the ranking,
and the Monte Carlo estimator with Theorem 5's budget buys an
``(epsilon, delta)`` certificate at a cost independent of N.  Each
rung is strictly cheaper and strictly looser than the one above it —
and every rung states exactly how loose, which is what makes shedding
precision (instead of requests) a defensible overload policy.

:class:`DegradationController` picks the rung per request from two
pressure signals:

* **queue depth** — the primary, instantaneous signal: requests
  waiting in the :class:`~repro.engine.service.ValuationService`
  queue;
* **SLO burn rate** — :meth:`repro.monitor.slo.SLOTracker.worst_burn`,
  consulted (rate-limited) only while the queue is non-trivial, so a
  stale burn spike cannot hold the ladder down after load has
  cleared.

Recovery is deliberately asymmetric: whenever the queue is at or
below ``queue_low`` the controller returns the exact rung
immediately, regardless of burn history — serving returns to exact
within one maintenance cycle of a fault clearing, the chaos suite's
acceptance criterion.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..exceptions import ParameterError

__all__ = ["PrecisionRung", "DEFAULT_LADDER", "DegradationController"]


@dataclass(frozen=True)
class PrecisionRung:
    """One step of the ladder: a method plus its error contract.

    ``epsilon`` is the max-norm error the rung certifies (0 for
    exact); ``delta`` the failure probability (0 for the
    deterministic rungs — Theorem 2's bound is worst-case).
    """

    name: str
    method: str
    epsilon: float = 0.0
    delta: float = 0.0


#: exact → fine truncation → coarse truncation → Monte Carlo, the
#: order the tentpole prescribes: Theorem 2 with tightening budget
#: under pressure, Theorem 5 sampling under overload.
DEFAULT_LADDER: tuple[PrecisionRung, ...] = (
    PrecisionRung("exact", "exact"),
    PrecisionRung("truncated-fine", "truncated", epsilon=0.05),
    PrecisionRung("truncated-coarse", "truncated", epsilon=0.25),
    PrecisionRung("mc", "mc", epsilon=0.5, delta=0.05),
)


class DegradationController:
    """Maps load pressure to a :class:`PrecisionRung` per request.

    Parameters
    ----------
    ladder:
        Rungs ordered from most to least precise; index 0 must be the
        exact rung.
    slo:
        Optional :class:`~repro.monitor.slo.SLOTracker`; its
        ``worst_burn()`` feeds the pressure score.
    queue_low:
        Queue depth at or below which serving is considered idle —
        the exact rung is forced and burn is ignored (the recovery
        rule).
    queue_high:
        Depth at which queue pressure saturates at 1.0 (the bottom
        rung).
    burn_high:
        Burn rate treated as pressure 1.0; 14.4 is the classic
        page-worthy fast-burn threshold.
    burn_interval:
        Minimum seconds between ``worst_burn()`` consultations — the
        tracker walks its ring buffers, so the score is cached
        between requests.
    clock:
        Injectable time source (monotonic seconds), for tests and the
        fault harness.
    """

    def __init__(
        self,
        ladder: Sequence[PrecisionRung] = DEFAULT_LADDER,
        slo=None,
        queue_low: int = 1,
        queue_high: int = 16,
        burn_high: float = 14.4,
        burn_interval: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        ladder = tuple(ladder)
        if not ladder:
            raise ParameterError("the ladder needs at least one rung")
        if ladder[0].method != "exact":
            raise ParameterError(
                "the top rung must be exact, got "
                f"method={ladder[0].method!r}"
            )
        if queue_high <= queue_low:
            raise ParameterError(
                f"queue_high must exceed queue_low, got "
                f"{queue_high} <= {queue_low}"
            )
        if burn_high <= 0:
            raise ParameterError(f"burn_high must be positive, got {burn_high}")
        self.ladder = ladder
        self.slo = slo
        self.queue_low = int(queue_low)
        self.queue_high = int(queue_high)
        self.burn_high = float(burn_high)
        self.burn_interval = float(burn_interval)
        self.clock = clock
        self._lock = threading.Lock()
        self._burn_cached = 0.0
        self._burn_at: Optional[float] = None
        #: EWMA of observed compute seconds per rung, for the
        #: deadline-aware escalation
        self._latency: dict[str, float] = {}
        self._picks = {rung.name: 0 for rung in ladder}

    # ------------------------------------------------------------------
    def _burn(self) -> float:
        if self.slo is None:
            return 0.0
        now = self.clock()
        with self._lock:
            stale = (
                self._burn_at is None
                or now - self._burn_at >= self.burn_interval
            )
        if stale:
            burn = float(self.slo.worst_burn())
            with self._lock:
                self._burn_cached = burn
                self._burn_at = now
        with self._lock:
            return self._burn_cached

    def plan(
        self, queue_depth: int, deadline_s: Optional[float] = None
    ) -> tuple[PrecisionRung, dict]:
        """Pick the rung for one request.

        Args:
            queue_depth: Jobs currently waiting behind this one.
            deadline_s: The request's remaining budget in seconds, if
                it carries one; rungs whose observed latency EWMA
                does not fit the budget are skipped downward.

        Returns:
            ``(rung, info)`` — ``info`` carries the pressure score
            and its components for telemetry and
            ``extra["degraded"]``.
        """
        queue_depth = max(0, int(queue_depth))
        info: dict = {"queue_depth": queue_depth}
        if queue_depth <= self.queue_low:
            # the recovery rule: an idle queue serves exact, full stop
            queue_pressure = 0.0
            burn_pressure = 0.0
        else:
            queue_pressure = min(
                1.0,
                (queue_depth - self.queue_low)
                / float(self.queue_high - self.queue_low),
            )
            burn_pressure = min(1.0, self._burn() / self.burn_high)
        pressure = max(queue_pressure, burn_pressure)
        info["queue_pressure"] = queue_pressure
        info["burn_pressure"] = burn_pressure
        info["pressure"] = pressure
        if pressure <= 0.0:
            idx = 0
        else:
            # pressure in (0, 1] maps onto rungs 1..last
            idx = 1 + int(pressure * (len(self.ladder) - 1 - 1e-9))
            idx = min(idx, len(self.ladder) - 1)
        # deadline-aware escalation: if the chosen rung's observed
        # latency will not fit the remaining budget, step down until
        # one does (or the bottom rung is reached)
        if deadline_s is not None and deadline_s > 0:
            with self._lock:
                latency = dict(self._latency)
            while idx < len(self.ladder) - 1:
                seen = latency.get(self.ladder[idx].name)
                if seen is None or seen <= 0.8 * deadline_s:
                    break
                idx += 1
                info["deadline_escalated"] = True
        rung = self.ladder[idx]
        with self._lock:
            self._picks[rung.name] = self._picks.get(rung.name, 0) + 1
        info["rung"] = rung.name
        return rung, info

    def observe(self, rung_name: str, seconds: float) -> None:
        """Feed one served request's compute time into the rung's EWMA."""
        if seconds < 0:
            return
        with self._lock:
            prev = self._latency.get(rung_name)
            self._latency[rung_name] = (
                seconds if prev is None else 0.3 * seconds + 0.7 * prev
            )

    def snapshot(self) -> dict:
        """Counters and EWMAs for ``stats()`` surfaces."""
        with self._lock:
            return {
                "picks": dict(self._picks),
                "latency_ewma_seconds": dict(self._latency),
                "burn_cached": self._burn_cached,
                "ladder": [rung.name for rung in self.ladder],
            }
