"""Dataset fingerprinting and rank/top-K memoization.

The expensive step of every exact valuation is the distance ranking —
O(N d + N log N) per test point — yet serving workloads (Section 3.2 of
the paper) repeatedly revalue the *same* training set against the same
or overlapping query batches: after a data-market settlement, after a
label fix, under different ``K`` or ``epsilon``.  The ranking depends
only on ``(x_train, x_test, metric)``, not on labels or ``K``, so one
cached permutation serves every such call.

:func:`array_fingerprint` gives arrays stable content hashes;
:class:`RankCache` is a small thread-safe LRU keyed by those
fingerprints, holding full rankings and top-``k`` index prefixes.  A
cached full ranking answers any top-``k`` request, and a cached
top-``k'`` answers any ``k <= k'`` — both without re-sorting anything.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

import numpy as np

from ..exceptions import ParameterError
from ..stats import component_stats

__all__ = [
    "array_fingerprint",
    "dataset_fingerprint",
    "CacheStats",
    "RankCache",
]


def array_fingerprint(arr: np.ndarray) -> str:
    """Content hash of an array: dtype, shape, and raw bytes.

    Equal fingerprints mean equal arrays (up to SHA-1 collision);
    reordering rows, changing dtype, or editing a single element all
    change the fingerprint.
    """
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha1()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def dataset_fingerprint(*arrays: np.ndarray, extra: tuple = ()) -> str:
    """Combined fingerprint of several arrays plus hashable extras.

    Used to key an entire ``(x_train, x_test, metric)`` configuration
    with one string.
    """
    h = hashlib.sha1()
    for arr in arrays:
        h.update(array_fingerprint(arr).encode())
    for item in extra:
        h.update(repr(item).encode())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`RankCache`.

    Lives on the cache as the ``stats`` attribute, so field reads
    (``cache.stats.hits``) stay cheap; *calling* it —
    ``cache.stats()`` — returns the unified component-stats schema
    (:mod:`repro.stats`), the same shape every other serving component
    answers ``stats()`` with, so the telemetry hub consumes the cache
    like anything else.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict:
        """Snapshot as a plain dict (for ``ValuationResult.extra``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __call__(self) -> dict:
        """Unified-schema snapshot (see the class docstring)."""
        gauges = {}
        cache = getattr(self, "_cache", None)
        if cache is not None:
            gauges = {
                "entries": len(cache),
                "max_entries": cache.max_entries,
                "max_entry_elements": cache.max_entry_elements,
            }
        return component_stats(
            "rank_cache", counters=self.as_dict(), gauges=gauges
        )


class _Entry:
    """Cached retrieval results for one (train, test, metric) key."""

    __slots__ = ("order", "dist", "topk_k", "topk_idx")

    def __init__(self) -> None:
        self.order: np.ndarray | None = None
        self.dist: np.ndarray | None = None
        self.topk_k: int = 0
        self.topk_idx: np.ndarray | None = None


def _freeze(arr: np.ndarray) -> np.ndarray:
    out = np.ascontiguousarray(arr)
    if out is arr:
        out = arr.view()
    out.flags.writeable = False
    return out


class RankCache:
    """Thread-safe LRU memo for rankings and top-``k`` neighbor sets.

    Parameters
    ----------
    max_entries:
        Number of distinct keys retained; least recently used keys are
        evicted first.
    max_entry_elements:
        Full rankings larger than this many elements are not stored
        (they would defeat the engine's bounded-memory chunking);
        top-``k`` prefixes, being small, are always stored.  The
        default (2^23 ~ 64 MB of indices) accommodates a 256-query
        batch against ~30k training points.
    """

    def __init__(
        self, max_entries: int = 8, max_entry_elements: int = 2**23
    ) -> None:
        if max_entries <= 0:
            raise ParameterError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = int(max_entries)
        self.max_entry_elements = int(max_entry_elements)
        self.stats = CacheStats()
        # backref for the unified stats() snapshot (entry-count gauges)
        self.stats._cache = self
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _touch(self, key: Hashable, create: bool = False) -> Optional[_Entry]:
        entry = self._entries.get(key)
        if entry is None:
            if not create:
                return None
            entry = _Entry()
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        self._entries.move_to_end(key)
        return entry

    # ------------------------------------------------------------------
    def get_ranking(self, key: Hashable) -> Optional[np.ndarray]:
        """Cached full ranking for ``key``, or ``None``."""
        with self._lock:
            entry = self._touch(key)
            if entry is not None and entry.order is not None:
                self.stats.hits += 1
                return entry.order
            self.stats.misses += 1
            return None

    def put_ranking(
        self,
        key: Hashable,
        order: np.ndarray,
        distances: Optional[np.ndarray] = None,
    ) -> bool:
        """Store a full ranking; returns whether it was retained.

        ``distances`` (the matching sorted distance matrix) is kept
        alongside the permutation when given — the weighted kernel
        needs both.  Storing a ranking without distances never drops
        distances already cached for the key.
        """
        if order.size > self.max_entry_elements:
            return False
        with self._lock:
            entry = self._touch(key, create=True)
            entry.order = _freeze(order)
            if distances is not None:
                entry.dist = _freeze(distances)
            return True

    def get_ranking_with_distances(
        self, key: Hashable
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """Cached ``(order, sorted_distances)`` pair, or ``None``.

        A hit requires both halves: a ranking cached by a
        distance-free path does not serve a caller that needs the
        distances too.
        """
        with self._lock:
            entry = self._touch(key)
            if (
                entry is not None
                and entry.order is not None
                and entry.dist is not None
            ):
                self.stats.hits += 1
                return entry.order, entry.dist
            self.stats.misses += 1
            return None

    # ------------------------------------------------------------------
    def get_topk(self, key: Hashable, k: int) -> Optional[np.ndarray]:
        """Cached ``(q, k)`` neighbor indices, or ``None``.

        Served from a stored top-``k'`` with ``k' >= k`` or from a
        stored full ranking, whichever is available.
        """
        with self._lock:
            entry = self._touch(key)
            if entry is not None:
                if entry.topk_idx is not None and entry.topk_k >= k:
                    self.stats.hits += 1
                    return entry.topk_idx[:, :k]
                if entry.order is not None:
                    self.stats.hits += 1
                    return entry.order[:, :k]
            self.stats.misses += 1
            return None

    def put_topk(self, key: Hashable, k: int, idx: np.ndarray) -> bool:
        """Store top-``k`` indices; keeps the widest prefix seen."""
        with self._lock:
            entry = self._touch(key, create=True)
            if entry.topk_idx is None or k > entry.topk_k:
                entry.topk_idx = _freeze(idx)
                entry.topk_k = int(k)
            return True

    # ------------------------------------------------------------------
    def invalidate(self, fingerprint: Hashable) -> int:
        """Evict every entry whose key references ``fingerprint``.

        Keys are matched three ways: the key *is* the fingerprint, the
        key is a tuple *containing* it (the engine keys entries as
        ``(train_fp, test_fp, backend_token)``), or the key is a string
        containing it as a substring.  Returns the number of entries
        dropped.

        This is the delta path for dynamic datasets: mutating one
        training set evicts only that set's rankings, leaving entries
        for other datasets sharing the cache untouched.  A full
        :meth:`clear` remains the right call after a wholesale refit.
        """
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if key == fingerprint
                or (isinstance(key, tuple) and fingerprint in key)
                or (
                    isinstance(key, str)
                    and isinstance(fingerprint, str)
                    and fingerprint in key
                )
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
