"""Pluggable neighbor-search backends for the valuation engine.

Every valuation algorithm in the paper reduces to one of two retrieval
primitives over a *fixed* training set:

* a full ascending distance ranking per test point (Theorem 1 / 6), or
* the top ``K*`` nearest neighbors per test point (Theorems 2-4).

:class:`NeighborBackend` names exactly that contract, fit-once /
query-many, so the engine can swap the physical execution plan without
touching the valuation math:

* ``"brute"`` — :class:`BruteForceBackend`, exact search over the whole
  matrix at once; the fastest plan when the ``(q, n)`` distance block
  fits comfortably in memory.
* ``"blocked"`` — :class:`BlockedExactBackend`, exact search with
  chunked distance computation: top-``k`` queries stream over training
  blocks with a running merge, so peak memory is ``O(q_block * (block
  + k))`` instead of ``O(q * n)`` and a ``q x n`` rank matrix never
  fully materializes.
* ``"lsh"`` — :class:`LSHNeighborBackend`, an adapter over
  :class:`repro.lsh.tables.LSHIndex` with the paper's Section 6.1
  parameter tuning, giving sublinear approximate top-``K*`` retrieval.

Backends register themselves in a name registry
(:func:`register_backend` / :func:`make_backend`) so downstream code —
and tests — can enumerate and construct them uniformly.
"""

from __future__ import annotations

import threading
import time
import warnings
from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from ..exceptions import NotFittedError, ParameterError
from ..knn.distance import get_metric
from ..knn.search import stable_argsort_rows, top_k
from ..rng import SeedLike

__all__ = [
    "NeighborBackend",
    "BruteForceBackend",
    "BlockedExactBackend",
    "LSHNeighborBackend",
    "register_backend",
    "available_backends",
    "make_backend",
]

class NeighborBackend(ABC):
    """Fit-once / query-many neighbor retrieval behind the engine.

    Subclasses implement :meth:`query` (top-``k``) and, when they can,
    :meth:`rank` (full ascending ranking) and set
    :attr:`supports_full_ranking`.
    """

    #: registry name; overridden by subclasses
    name: str = "abstract"
    #: whether :meth:`rank` is implemented (exact backends only)
    supports_full_ranking: bool = False
    #: whether :meth:`partial_fit` / :meth:`forget` update the index in
    #: place; ``False`` means mutation falls back to a full refit
    supports_incremental_mutation: bool = False

    def __init__(self) -> None:
        self._data: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, data: np.ndarray) -> "NeighborBackend":
        """Index ``data``; returns ``self`` for chaining."""
        data = np.ascontiguousarray(np.atleast_2d(data), dtype=np.float64)
        if data.shape[0] == 0:
            raise ParameterError("cannot fit a backend on zero points")
        self._data = data
        self._fit(data)
        return self

    def _fit(self, data: np.ndarray) -> None:
        """Subclass hook run after :meth:`fit` stores the data."""

    def _require_fitted(self) -> np.ndarray:
        if self._data is None:
            raise NotFittedError(f"{type(self).__name__}.fit must be called first")
        return self._data

    @property
    def n(self) -> int:
        """Number of indexed points."""
        return int(self._require_fitted().shape[0])

    @property
    def data(self) -> np.ndarray:
        """The indexed points, ``(n, d)``.

        Callers must treat this as read-only; mutation goes through
        :meth:`partial_fit` / :meth:`forget`.  Exposed so owners (the
        incremental valuator, the engine) can alias the index's array
        instead of keeping a second copy of the training set.
        """
        return self._require_fitted()

    @property
    def n_features(self) -> int:
        """Feature dimensionality of the indexed points."""
        return int(self._require_fitted().shape[1])

    # ------------------------------------------------------------------
    # dynamic datasets: append / delete indexed points
    def partial_fit(self, points: np.ndarray) -> None:
        """Append ``points`` to the index; they take the next indices.

        Exact backends (whose index *is* the data matrix) absorb the
        append in place; backends with derived structures fall back to
        a refit via the :meth:`_partial_fit` hook.
        """
        data = self._require_fitted()
        points = np.ascontiguousarray(np.atleast_2d(points), dtype=np.float64)
        if points.shape[0] == 0:
            return
        if points.shape[1] != data.shape[1]:
            raise ParameterError(
                f"new points have {points.shape[1]} features, expected "
                f"{data.shape[1]}"
            )
        self._data = np.ascontiguousarray(np.vstack((data, points)))
        self._partial_fit(points)

    def _partial_fit(self, points: np.ndarray) -> None:
        """Subclass hook after an append; the default refits."""
        self._fit(self._data)

    def forget(self, idx) -> None:
        """Delete the points at ``idx``; later indices shift down.

        Index semantics match ``numpy.delete``: all positions refer to
        the indexing *before* the call.
        """
        data = self._require_fitted()
        idx = np.atleast_1d(np.asarray(idx, dtype=np.intp))
        if idx.size == 0:
            return
        n = data.shape[0]
        if np.any(idx < 0) or np.any(idx >= n):
            raise ParameterError(
                f"forget indices must lie in [0, {n}), got {idx.tolist()}"
            )
        if np.unique(idx).size != idx.size:
            raise ParameterError(f"forget indices must be unique, got {idx.tolist()}")
        if idx.size >= n:
            raise ParameterError("cannot forget every indexed point")
        self._data = np.ascontiguousarray(np.delete(data, idx, axis=0))
        self._forget(idx)

    def _forget(self, idx: np.ndarray) -> None:
        """Subclass hook after a delete; the default refits."""
        self._fit(self._data)

    # ------------------------------------------------------------------
    def prepare(self, queries: np.ndarray, k: int) -> None:
        """Optional hook called once per query batch before chunking.

        The engine splits query sets into chunks; backends whose setup
        depends on the *whole* batch (LSH parameter tuning) do it here
        so every chunk then hits the same index.
        """

    @abstractmethod
    def query(
        self, queries: np.ndarray, k: int
    ) -> tuple[Sequence[np.ndarray], Sequence[np.ndarray]]:
        """Top-``k`` neighbors per query, nearest first.

        Returns ``(indices, distances)``, each indexable row-wise.
        Exact backends return rectangular ``(q, min(k, n))`` arrays;
        approximate backends may return ragged lists whose rows fall
        short of ``k``.
        """

    def rank(self, queries: np.ndarray) -> np.ndarray:
        """Full ascending distance ranking, shape ``(q, n)``.

        Ties are broken by index.  Only exact backends implement this;
        the default raises so callers can route approximate backends to
        the truncated algorithms instead.
        """
        raise ParameterError(
            f"backend {self.name!r} cannot produce full rankings; "
            "use the truncated / LSH valuation path"
        )

    def rank_with_distances(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Full ranking plus the sorted distances, each ``(q, n)``.

        The incremental valuation path needs both: the sorted distance
        rows are what new points binary-search into.  Exact backends
        implement it; the default raises like :meth:`rank`.
        """
        raise ParameterError(
            f"backend {self.name!r} cannot produce full rankings; "
            "use the truncated / LSH valuation path"
        )

    def cache_token(self) -> str:
        """A string identifying this backend's *result semantics*.

        Two backends with the same token return the same neighbors for
        the same data, so cached rankings are interchangeable between
        them.  All exact backends share a token per metric; stochastic
        backends must include their randomness.
        """
        return f"exact:{getattr(self, 'metric', 'euclidean')}"


# ----------------------------------------------------------------------
class BruteForceBackend(NeighborBackend):
    """Exact search computing the whole distance block at once.

    Parameters
    ----------
    metric:
        Distance metric name from :mod:`repro.knn.distance`.
    """

    name = "brute"
    supports_full_ranking = True
    supports_incremental_mutation = True

    def __init__(self, metric: str = "euclidean") -> None:
        super().__init__()
        get_metric(metric)  # validate eagerly
        self.metric = metric

    def query(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        data = self._require_fitted()
        return top_k(queries, data, k, metric=self.metric)

    def rank(self, queries: np.ndarray) -> np.ndarray:
        # same metric as query() — not a rank-equivalent shortcut — so
        # tie-breaks agree bit-for-bit with top_k and a cached full
        # ranking can serve top-k requests interchangeably
        data = self._require_fitted()
        dist = get_metric(self.metric)(queries, data)
        return stable_argsort_rows(dist)

    def rank_with_distances(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        data = self._require_fitted()
        dist = get_metric(self.metric)(queries, data)
        order = stable_argsort_rows(dist)
        return order, np.take_along_axis(dist, order, axis=1)

    # the index *is* the data matrix: base-class mutation needs no refit
    def _partial_fit(self, points: np.ndarray) -> None:
        pass

    def _forget(self, idx: np.ndarray) -> None:
        pass


# ----------------------------------------------------------------------
class BlockedExactBackend(NeighborBackend):
    """Exact search over training blocks with bounded memory.

    Distances are computed ``block_size`` training points at a time; a
    top-``k`` query keeps a running merge of the best candidates, so a
    query batch of ``q`` points costs ``O(q * (block_size + k))`` peak
    memory however large the training set is.  Full rankings are
    produced one ``query_block`` of test points at a time.  Results are
    identical (including index tie-breaks) to the brute backend.

    Parameters
    ----------
    metric:
        Distance metric name.
    block_size:
        Training points per distance block.
    query_block:
        Test points ranked per slab in :meth:`rank`.
    """

    name = "blocked"
    supports_full_ranking = True
    supports_incremental_mutation = True

    def __init__(
        self,
        metric: str = "euclidean",
        block_size: int = 4096,
        query_block: int = 64,
    ) -> None:
        super().__init__()
        if block_size <= 0:
            raise ParameterError(f"block_size must be positive, got {block_size}")
        if query_block <= 0:
            raise ParameterError(f"query_block must be positive, got {query_block}")
        get_metric(metric)
        self.metric = metric
        self.block_size = int(block_size)
        self.query_block = int(query_block)

    def query(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        data = self._require_fitted()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = data.shape[0]
        k_eff = min(k, n)
        kernel = get_metric(self.metric)
        out_idx = np.empty((queries.shape[0], k_eff), dtype=np.intp)
        out_dist = np.empty((queries.shape[0], k_eff), dtype=np.float64)
        for qs in range(0, queries.shape[0], self.query_block):
            qe = min(queries.shape[0], qs + self.query_block)
            q = queries[qs:qe]
            best_dist = np.empty((qe - qs, 0), dtype=np.float64)
            best_idx = np.empty((qe - qs, 0), dtype=np.intp)
            for ts in range(0, n, self.block_size):
                te = min(n, ts + self.block_size)
                block_dist = kernel(q, data[ts:te])
                block_idx = np.broadcast_to(
                    np.arange(ts, te, dtype=np.intp), block_dist.shape
                )
                cand_dist = np.concatenate((best_dist, block_dist), axis=1)
                cand_idx = np.concatenate((best_idx, block_idx), axis=1)
                # primary key distance, secondary key training index —
                # the same tie-break contract as knn.search.top_k
                order = np.lexsort((cand_idx, cand_dist), axis=-1)[:, :k_eff]
                best_dist = np.take_along_axis(cand_dist, order, axis=1)
                best_idx = np.take_along_axis(cand_idx, order, axis=1)
            out_idx[qs:qe] = best_idx
            out_dist[qs:qe] = best_dist
        return out_idx, out_dist

    def rank(self, queries: np.ndarray) -> np.ndarray:
        return self._rank_slabs(queries, want_distances=False)[0]

    def rank_with_distances(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        order, sorted_dist = self._rank_slabs(queries, want_distances=True)
        assert sorted_dist is not None
        return order, sorted_dist

    def _rank_slabs(
        self, queries: np.ndarray, want_distances: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        data = self._require_fitted()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = data.shape[0]
        kernel = get_metric(self.metric)
        order = np.empty((queries.shape[0], n), dtype=np.intp)
        sorted_dist = (
            np.empty((queries.shape[0], n), dtype=np.float64)
            if want_distances
            else None
        )
        dist = np.empty((self.query_block, n), dtype=np.float64)
        for qs in range(0, queries.shape[0], self.query_block):
            qe = min(queries.shape[0], qs + self.query_block)
            buf = dist[: qe - qs]
            for ts in range(0, n, self.block_size):
                te = min(n, ts + self.block_size)
                buf[:, ts:te] = kernel(queries[qs:qe], data[ts:te])
            order[qs:qe] = stable_argsort_rows(buf)
            if sorted_dist is not None:
                sorted_dist[qs:qe] = np.take_along_axis(
                    buf, order[qs:qe], axis=1
                )
        return order, sorted_dist

    # the index *is* the data matrix: base-class mutation needs no refit
    def _partial_fit(self, points: np.ndarray) -> None:
        pass

    def _forget(self, idx: np.ndarray) -> None:
        pass


# ----------------------------------------------------------------------
class LSHNeighborBackend(NeighborBackend):
    """Adapter exposing :class:`repro.lsh.tables.LSHIndex` to the engine.

    Retrieval is approximate: a query may return fewer than ``k``
    neighbors, which is exactly what the truncated recursion of
    Theorem 2 tolerates.  Distances are Euclidean (the 2-stable family
    hashes l2 space).

    Mutations are absorbed in place while the indexed size stays close
    to the size the tables were tuned for: :meth:`partial_fit` hashes
    new points into the existing per-table buckets, and :meth:`forget`
    tombstones (queries skip the dead; buckets are not scrubbed).  Once
    ``n`` drifts more than :attr:`refit_drift` (25%) from the tuned
    size, the tuning assumptions of Section 6.1 no longer hold and the
    backend falls back to a full refit — that path alone emits the
    ``RuntimeWarning``.  Re-tuning the contrast estimate under drift
    stays an open item (see ROADMAP).

    Tuning follows the paper's Section 6.1 recipe and happens lazily,
    because the table count depends on how many neighbors (``K*``) the
    valuation will request.  Two modes:

    * with ``tune_with_queries`` (default), :meth:`prepare` normalizes
      the data so the mean *query*-to-training distance is 1 and
      estimates the relative contrast from the query batch — the
      procedure of :func:`repro.lsh.valuation.lsh_knn_shapley`;
    * otherwise the contrast is estimated from the training set against
      itself, the only option in streaming settings where queries
      arrive after the index must exist.

    Parameters
    ----------
    delta:
        Allowed per-batch retrieval failure probability (Theorem 3).
    params:
        Pre-tuned :class:`repro.lsh.tuning.LSHParameters`; skips all
        estimation when given.
    alpha:
        Code-length multiplier forwarded to the tuner.
    tune_with_queries:
        See above.
    seed:
        Seed for contrast subsampling and hash projections.
    """

    name = "lsh"
    supports_full_ranking = False
    supports_incremental_mutation = True

    #: fractional drift of ``n`` from the tuned size beyond which
    #: mutations degrade to a warned full refit
    refit_drift = 0.25

    def __init__(
        self,
        delta: float = 0.1,
        params=None,
        alpha: float = 0.5,
        tune_with_queries: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if not 0 < delta < 1:
            raise ParameterError(f"delta must lie in (0, 1), got {delta}")
        self.delta = float(delta)
        self.alpha = float(alpha)
        self.tune_with_queries = bool(tune_with_queries)
        self.metric = "euclidean"
        self._seed = seed
        self._fixed_params = params
        self.params = params
        self._index = None
        self._scale = 1.0
        self._built_k = 0
        self._tuned_n = 0
        #: external index -> internal LSHIndex id; ``None`` = identity
        #: (the two diverge only after a tombstoning ``forget``)
        self._ids: np.ndarray | None = None
        #: in-place mutations absorbed since the last (re)build — part
        #: of the cache token, since they change query results
        self._churn = 0
        self.build_seconds = 0.0
        self.last_stats = None
        # guards rebuilds: ValuationService workers share one backend,
        # and a rebuild swaps _index/_scale/params as a unit
        self._build_lock = threading.Lock()

    def _fit(self, data: np.ndarray) -> None:
        # tuning is deferred to the first prepare/query, when k is known
        self._index = None
        self._built_k = 0
        self._ids = None

    def _drifted(self) -> bool:
        """Whether the index left the band the tables were tuned for.

        Two signals: the *alive* count (tuning assumed it), and the
        index's *internal* row count — tombstones and appends both
        leave rows in the tables, so balanced add/remove churn grows
        the internal size without moving the alive count.  Bounding
        both means a refit (which compacts) always arrives before the
        index outgrows its tuned band, whatever the churn pattern.
        """
        n_now = self._data.shape[0]
        if abs(n_now - self._tuned_n) > self.refit_drift * self._tuned_n:
            return True
        return (
            self._index is not None
            and self._index.n > (1.0 + self.refit_drift) * self._tuned_n
        )

    def _refit_for_drift(self) -> None:
        warnings.warn(
            "the LSH backend's indexed size drifted more than "
            f"{self.refit_drift:.0%} from the tuned size "
            f"({self._tuned_n}); falling back to a full refit on the "
            "next query",
            RuntimeWarning,
            stacklevel=4,
        )
        self._fit(self._data)

    def _partial_fit(self, points: np.ndarray) -> None:
        with self._build_lock:
            if self._index is None:
                # not built yet — the lazy build will index everything
                return
            if self._drifted():
                self._refit_for_drift()
                return
            # in-place: hash the new points into the existing buckets
            # (in the index's normalized space); identity of external
            # and internal ids is preserved because appends land at the
            # end of both numberings
            new_internal = self._index.insert(points * self._scale)
            if self._ids is not None:
                self._ids = np.concatenate((self._ids, new_internal))
            self._churn += 1

    def _forget(self, idx: np.ndarray) -> None:
        with self._build_lock:
            if self._index is None:
                return
            if self._drifted():
                self._refit_for_drift()
                return
            if self._ids is None:
                # identity held until now: the index's internal count
                # equals the pre-delete external count
                self._ids = np.arange(self._data.shape[0] + idx.size, dtype=np.intp)
            self._index.remove(self._ids[idx])
            self._ids = np.delete(self._ids, idx)
            self._churn += 1

    def _build(self, queries: Optional[np.ndarray], k: int) -> None:
        from ..lsh.contrast import (
            ContrastEstimate,
            estimate_relative_contrast,
            normalize_to_unit_dmean,
        )
        from ..lsh.tables import LSHIndex
        from ..lsh.tuning import tune_lsh

        data = self._require_fitted()
        n = data.shape[0]
        start = time.perf_counter()
        if self._fixed_params is not None:
            params = self._fixed_params
            contrast = params.contrast
            self._scale = 1.0 / contrast.d_mean if contrast.d_mean > 0 else 1.0
        elif self.tune_with_queries and queries is not None:
            _, _, contrast = normalize_to_unit_dmean(
                data, queries, k=min(k, n), seed=self._seed
            )
            params = tune_lsh(
                contrast, n=n, k_star=min(k, n), delta=self.delta, alpha=self.alpha
            )
            self._scale = 1.0 / contrast.d_mean if contrast.d_mean > 0 else 1.0
        else:
            k_c = min(k, max(1, n - 1))
            est = estimate_relative_contrast(data, data, k=k_c, seed=self._seed)
            self._scale = 1.0 / est.d_mean if est.d_mean > 0 else 1.0
            contrast = ContrastEstimate(
                d_mean=1.0,
                d_k=est.d_k * self._scale,
                contrast=est.contrast,
                k=k_c,
            )
            params = tune_lsh(
                contrast, n=n, k_star=k_c, delta=self.delta, alpha=self.alpha
            )
        self.params = params
        self._index = LSHIndex(
            n_tables=params.n_tables,
            n_bits=params.n_bits,
            width=params.width,
            seed=self._seed,
        ).build(data * self._scale)
        self._built_k = k
        self._tuned_n = n
        self._ids = None
        self.build_seconds = time.perf_counter() - start

    def prepare(self, queries: Optional[np.ndarray], k: int) -> None:
        """Tune and build the index for batches requesting ``k``.

        ``queries`` may be ``None`` (streaming: build before any query
        exists), which forces the self-contrast tuning mode.
        """
        if queries is not None:
            queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        self._ensure_built(queries, k)

    def _ensure_built(
        self, queries: Optional[np.ndarray], k: int
    ) -> tuple["object", float]:
        """Build if needed; return a consistent ``(index, scale)`` pair."""
        with self._build_lock:
            if self._index is None or k > self._built_k:
                self._build(queries, k)
            return self._index, self._scale

    def query(
        self, queries: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        index, scale = self._ensure_built(queries, k)
        idx, dist, stats = index.query(queries * scale, min(k, self.n))
        self.last_stats = stats
        if self._ids is not None:
            # tombstoning broke id identity: translate the index's
            # internal ids back to current external training indices
            lookup = np.full(index.n, -1, dtype=np.intp)
            lookup[self._ids] = np.arange(self._ids.shape[0], dtype=np.intp)
            idx = [lookup[row] for row in idx]
        # the index works in normalized space; report true distances
        inv = 1.0 / scale if scale != 0 else 1.0
        return idx, [d * inv for d in dist]

    def cache_token(self) -> str:
        p = self.params
        tuned = (
            f"w={p.width},m={p.n_bits},l={p.n_tables}" if p is not None else "untuned"
        )
        return (
            f"lsh:{tuned}:scale={self._scale!r}:seed={self._seed!r}"
            f":churn={self._churn}"
        )


# ----------------------------------------------------------------------
_BACKEND_REGISTRY: Dict[str, Callable[..., NeighborBackend]] = {}


def register_backend(name: str, factory: Callable[..., NeighborBackend]) -> None:
    """Register a backend factory under ``name`` (overwrites quietly)."""
    if not name:
        raise ParameterError("backend name must be non-empty")
    _BACKEND_REGISTRY[name] = factory


def available_backends() -> list[str]:
    """Sorted names of all registered backends."""
    return sorted(_BACKEND_REGISTRY)


def make_backend(
    spec: Union[str, NeighborBackend], **options
) -> NeighborBackend:
    """Construct (or pass through) a backend.

    ``spec`` may be a registered name — constructed with ``options`` —
    or an already-built :class:`NeighborBackend` instance, in which
    case ``options`` must be empty.
    """
    if isinstance(spec, NeighborBackend):
        if options:
            raise ParameterError(
                "options cannot be applied to an already-constructed backend"
            )
        return spec
    try:
        factory = _BACKEND_REGISTRY[spec]
    except KeyError:
        raise ParameterError(
            f"unknown backend {spec!r}; available: {available_backends()}"
        ) from None
    return factory(**options)


register_backend("brute", BruteForceBackend)
register_backend("blocked", BlockedExactBackend)
register_backend("lsh", LSHNeighborBackend)
