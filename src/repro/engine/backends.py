"""Pluggable neighbor-search backends for the valuation engine.

Every valuation algorithm in the paper reduces to one of two retrieval
primitives over a *fixed* training set:

* a full ascending distance ranking per test point (Theorem 1 / 6), or
* the top ``K*`` nearest neighbors per test point (Theorems 2-4).

:class:`NeighborBackend` names exactly that contract, fit-once /
query-many, so the engine can swap the physical execution plan without
touching the valuation math:

* ``"brute"`` — :class:`BruteForceBackend`, exact search over the whole
  matrix at once; the fastest plan when the ``(q, n)`` distance block
  fits comfortably in memory.
* ``"blocked"`` — :class:`BlockedExactBackend`, exact search with
  chunked distance computation: top-``k`` queries stream over training
  blocks with a running merge, so peak memory is ``O(q_block * (block
  + k))`` instead of ``O(q * n)`` and a ``q x n`` rank matrix never
  fully materializes.
* ``"lsh"`` — :class:`LSHNeighborBackend`, an adapter over
  :class:`repro.lsh.tables.LSHIndex` with the paper's Section 6.1
  parameter tuning, giving sublinear approximate top-``K*`` retrieval.

Backends register themselves in a name registry
(:func:`register_backend` / :func:`make_backend`) so downstream code —
and tests — can enumerate and construct them uniformly.
"""

from __future__ import annotations

import threading
import time
import warnings
from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from ..exceptions import NotFittedError, ParameterError
from ..knn.distance import get_metric
from ..knn.search import stable_argsort_rows, top_k
from ..rng import SeedLike
from ..stats import component_stats

__all__ = [
    "NeighborBackend",
    "BruteForceBackend",
    "BlockedExactBackend",
    "LSHNeighborBackend",
    "register_backend",
    "available_backends",
    "make_backend",
]

class NeighborBackend(ABC):
    """Fit-once / query-many neighbor retrieval behind the engine.

    Subclasses implement :meth:`query` (top-``k``) and, when they can,
    :meth:`rank` (full ascending ranking) and set
    :attr:`supports_full_ranking`.
    """

    #: registry name; overridden by subclasses
    name: str = "abstract"
    #: whether :meth:`rank` is implemented (exact backends only)
    supports_full_ranking: bool = False
    #: whether :meth:`partial_fit` / :meth:`forget` update the index in
    #: place; ``False`` means mutation falls back to a full refit
    supports_incremental_mutation: bool = False

    def __init__(self) -> None:
        self._data: np.ndarray | None = None
        #: optional :class:`repro.monitor.TelemetryHub`; when attached,
        #: retrieval calls publish latency (and, for LSH, candidate
        #: statistics plus a query reservoir) into it
        self.telemetry = None
        self._ops_lock = threading.Lock()
        self._ops: Dict[str, int] = {
            "queries": 0,
            "fits": 0,
            "partial_fits": 0,
            "forgets": 0,
        }

    # ------------------------------------------------------------------
    def fit(self, data: np.ndarray) -> "NeighborBackend":
        """Index ``data``; returns ``self`` for chaining."""
        data = np.ascontiguousarray(np.atleast_2d(data), dtype=np.float64)
        if data.shape[0] == 0:
            raise ParameterError("cannot fit a backend on zero points")
        self._data = data
        self._fit(data)
        self._count("fits")
        return self

    def _fit(self, data: np.ndarray) -> None:
        """Subclass hook run after :meth:`fit` stores the data."""

    def _require_fitted(self) -> np.ndarray:
        if self._data is None:
            raise NotFittedError(f"{type(self).__name__}.fit must be called first")
        return self._data

    @property
    def n(self) -> int:
        """Number of indexed points."""
        return int(self._require_fitted().shape[0])

    @property
    def data(self) -> np.ndarray:
        """The indexed points, ``(n, d)``.

        Callers must treat this as read-only; mutation goes through
        :meth:`partial_fit` / :meth:`forget`.  Exposed so owners (the
        incremental valuator, the engine) can alias the index's array
        instead of keeping a second copy of the training set.
        """
        return self._require_fitted()

    @property
    def n_features(self) -> int:
        """Feature dimensionality of the indexed points."""
        return int(self._require_fitted().shape[1])

    # ------------------------------------------------------------------
    # dynamic datasets: append / delete indexed points
    def partial_fit(self, points: np.ndarray) -> None:
        """Append ``points`` to the index; they take the next indices.

        Exact backends (whose index *is* the data matrix) absorb the
        append in place; backends with derived structures fall back to
        a refit via the :meth:`_partial_fit` hook.
        """
        data = self._require_fitted()
        points = np.ascontiguousarray(np.atleast_2d(points), dtype=np.float64)
        if points.shape[0] == 0:
            return
        if points.shape[1] != data.shape[1]:
            raise ParameterError(
                f"new points have {points.shape[1]} features, expected "
                f"{data.shape[1]}"
            )
        self._data = np.ascontiguousarray(np.vstack((data, points)))
        self._partial_fit(points)
        self._count("partial_fits")

    def _partial_fit(self, points: np.ndarray) -> None:
        """Subclass hook after an append; the default refits."""
        self._fit(self._data)

    def forget(self, idx) -> None:
        """Delete the points at ``idx``; later indices shift down.

        Index semantics match ``numpy.delete``: all positions refer to
        the indexing *before* the call.
        """
        data = self._require_fitted()
        idx = np.atleast_1d(np.asarray(idx, dtype=np.intp))
        if idx.size == 0:
            return
        n = data.shape[0]
        if np.any(idx < 0) or np.any(idx >= n):
            raise ParameterError(
                f"forget indices must lie in [0, {n}), got {idx.tolist()}"
            )
        if np.unique(idx).size != idx.size:
            raise ParameterError(f"forget indices must be unique, got {idx.tolist()}")
        if idx.size >= n:
            raise ParameterError("cannot forget every indexed point")
        self._data = np.ascontiguousarray(np.delete(data, idx, axis=0))
        self._forget(idx)
        self._count("forgets")

    def _forget(self, idx: np.ndarray) -> None:
        """Subclass hook after a delete; the default refits."""
        self._fit(self._data)

    # ------------------------------------------------------------------
    # telemetry: counters and the publishing chokepoint
    def _count(self, op: str, n: int = 1) -> None:
        with self._ops_lock:
            self._ops[op] = self._ops.get(op, 0) + int(n)

    def record_retrieval(self, n_queries: int, seconds: float) -> None:
        """Publish one retrieval batch (count + latency) to telemetry.

        Concrete backends call this from their ``query`` / ``rank``
        paths; with no hub attached it is a counter bump and nothing
        else, cheap enough for the serving hot path.
        """
        self._count("queries", n_queries)
        hub = self.telemetry
        if hub is not None:
            hub.record(f"backend.{self.name}.query_seconds", seconds)
            hub.count(f"backend.{self.name}.queries", n_queries)

    def spot_query(
        self, queries: np.ndarray, k: int
    ) -> tuple[Sequence[np.ndarray], Sequence[np.ndarray]]:
        """Top-``k`` retrieval *without* telemetry publication.

        Monitoring spot checks (recall proxies) retrieve through the
        backend they are measuring; routing them through :meth:`query`
        would feed the check's own traffic back into the drift streams
        it informs.  The LSH backend (the one the recall detectors
        watch) overrides this to skip its publication; the default
        simply forwards.
        """
        return self.query(queries, k)

    def stats(self) -> dict:
        """Unified-schema snapshot (see :mod:`repro.stats`)."""
        with self._ops_lock:
            counters = dict(self._ops)
        gauges: dict = {}
        if self._data is not None:
            gauges["n"] = int(self._data.shape[0])
            gauges["n_features"] = int(self._data.shape[1])
        return component_stats(
            f"backend.{self.name}", counters=counters, gauges=gauges
        )

    # ------------------------------------------------------------------
    def prepare(self, queries: np.ndarray, k: int) -> None:
        """Optional hook called once per query batch before chunking.

        The engine splits query sets into chunks; backends whose setup
        depends on the *whole* batch (LSH parameter tuning) do it here
        so every chunk then hits the same index.
        """

    @abstractmethod
    def query(
        self, queries: np.ndarray, k: int
    ) -> tuple[Sequence[np.ndarray], Sequence[np.ndarray]]:
        """Top-``k`` neighbors per query, nearest first.

        Returns ``(indices, distances)``, each indexable row-wise.
        Exact backends return rectangular ``(q, min(k, n))`` arrays;
        approximate backends may return ragged lists whose rows fall
        short of ``k``.
        """

    def rank(self, queries: np.ndarray) -> np.ndarray:
        """Full ascending distance ranking, shape ``(q, n)``.

        Ties are broken by index.  Only exact backends implement this;
        the default raises so callers can route approximate backends to
        the truncated algorithms instead.
        """
        raise ParameterError(
            f"backend {self.name!r} cannot produce full rankings; "
            "use the truncated / LSH valuation path"
        )

    def rank_with_distances(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Full ranking plus the sorted distances, each ``(q, n)``.

        The incremental valuation path needs both: the sorted distance
        rows are what new points binary-search into.  Exact backends
        implement it; the default raises like :meth:`rank`.
        """
        raise ParameterError(
            f"backend {self.name!r} cannot produce full rankings; "
            "use the truncated / LSH valuation path"
        )

    def cache_token(self) -> str:
        """A string identifying this backend's *result semantics*.

        Two backends with the same token return the same neighbors for
        the same data, so cached rankings are interchangeable between
        them.  All exact backends share a token per metric; stochastic
        backends must include their randomness.
        """
        return f"exact:{getattr(self, 'metric', 'euclidean')}"


# ----------------------------------------------------------------------
class BruteForceBackend(NeighborBackend):
    """Exact search computing the whole distance block at once.

    Parameters
    ----------
    metric:
        Distance metric name from :mod:`repro.knn.distance`.
    """

    name = "brute"
    supports_full_ranking = True
    supports_incremental_mutation = True

    def __init__(self, metric: str = "euclidean") -> None:
        super().__init__()
        get_metric(metric)  # validate eagerly
        self.metric = metric

    def query(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        data = self._require_fitted()
        start = time.perf_counter()
        idx, dist = top_k(queries, data, k, metric=self.metric)
        self.record_retrieval(idx.shape[0], time.perf_counter() - start)
        return idx, dist

    def rank(self, queries: np.ndarray) -> np.ndarray:
        # same metric as query() — not a rank-equivalent shortcut — so
        # tie-breaks agree bit-for-bit with top_k and a cached full
        # ranking can serve top-k requests interchangeably
        data = self._require_fitted()
        start = time.perf_counter()
        dist = get_metric(self.metric)(queries, data)
        order = stable_argsort_rows(dist)
        self.record_retrieval(order.shape[0], time.perf_counter() - start)
        return order

    def rank_with_distances(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        data = self._require_fitted()
        start = time.perf_counter()
        dist = get_metric(self.metric)(queries, data)
        order = stable_argsort_rows(dist)
        sorted_dist = np.take_along_axis(dist, order, axis=1)
        self.record_retrieval(order.shape[0], time.perf_counter() - start)
        return order, sorted_dist

    # the index *is* the data matrix: base-class mutation needs no refit
    def _partial_fit(self, points: np.ndarray) -> None:
        pass

    def _forget(self, idx: np.ndarray) -> None:
        pass


# ----------------------------------------------------------------------
class BlockedExactBackend(NeighborBackend):
    """Exact search over training blocks with bounded memory.

    Distances are computed ``block_size`` training points at a time; a
    top-``k`` query keeps a running merge of the best candidates, so a
    query batch of ``q`` points costs ``O(q * (block_size + k))`` peak
    memory however large the training set is.  Full rankings are
    produced one ``query_block`` of test points at a time.  Results are
    identical (including index tie-breaks) to the brute backend.

    Parameters
    ----------
    metric:
        Distance metric name.
    block_size:
        Training points per distance block.
    query_block:
        Test points ranked per slab in :meth:`rank`.
    """

    name = "blocked"
    supports_full_ranking = True
    supports_incremental_mutation = True

    def __init__(
        self,
        metric: str = "euclidean",
        block_size: int = 4096,
        query_block: int = 64,
    ) -> None:
        super().__init__()
        if block_size <= 0:
            raise ParameterError(f"block_size must be positive, got {block_size}")
        if query_block <= 0:
            raise ParameterError(f"query_block must be positive, got {query_block}")
        get_metric(metric)
        self.metric = metric
        self.block_size = int(block_size)
        self.query_block = int(query_block)

    def query(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        data = self._require_fitted()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        start = time.perf_counter()
        n = data.shape[0]
        k_eff = min(k, n)
        kernel = get_metric(self.metric)
        out_idx = np.empty((queries.shape[0], k_eff), dtype=np.intp)
        out_dist = np.empty((queries.shape[0], k_eff), dtype=np.float64)
        for qs in range(0, queries.shape[0], self.query_block):
            qe = min(queries.shape[0], qs + self.query_block)
            q = queries[qs:qe]
            best_dist = np.empty((qe - qs, 0), dtype=np.float64)
            best_idx = np.empty((qe - qs, 0), dtype=np.intp)
            for ts in range(0, n, self.block_size):
                te = min(n, ts + self.block_size)
                block_dist = kernel(q, data[ts:te])
                block_idx = np.broadcast_to(
                    np.arange(ts, te, dtype=np.intp), block_dist.shape
                )
                cand_dist = np.concatenate((best_dist, block_dist), axis=1)
                cand_idx = np.concatenate((best_idx, block_idx), axis=1)
                # primary key distance, secondary key training index —
                # the same tie-break contract as knn.search.top_k
                order = np.lexsort((cand_idx, cand_dist), axis=-1)[:, :k_eff]
                best_dist = np.take_along_axis(cand_dist, order, axis=1)
                best_idx = np.take_along_axis(cand_idx, order, axis=1)
            out_idx[qs:qe] = best_idx
            out_dist[qs:qe] = best_dist
        self.record_retrieval(out_idx.shape[0], time.perf_counter() - start)
        return out_idx, out_dist

    def rank(self, queries: np.ndarray) -> np.ndarray:
        start = time.perf_counter()
        order = self._rank_slabs(queries, want_distances=False)[0]
        self.record_retrieval(order.shape[0], time.perf_counter() - start)
        return order

    def rank_with_distances(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        start = time.perf_counter()
        order, sorted_dist = self._rank_slabs(queries, want_distances=True)
        assert sorted_dist is not None
        self.record_retrieval(order.shape[0], time.perf_counter() - start)
        return order, sorted_dist

    def _rank_slabs(
        self, queries: np.ndarray, want_distances: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        data = self._require_fitted()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = data.shape[0]
        kernel = get_metric(self.metric)
        order = np.empty((queries.shape[0], n), dtype=np.intp)
        sorted_dist = (
            np.empty((queries.shape[0], n), dtype=np.float64)
            if want_distances
            else None
        )
        dist = np.empty((self.query_block, n), dtype=np.float64)
        for qs in range(0, queries.shape[0], self.query_block):
            qe = min(queries.shape[0], qs + self.query_block)
            buf = dist[: qe - qs]
            for ts in range(0, n, self.block_size):
                te = min(n, ts + self.block_size)
                buf[:, ts:te] = kernel(queries[qs:qe], data[ts:te])
            order[qs:qe] = stable_argsort_rows(buf)
            if sorted_dist is not None:
                sorted_dist[qs:qe] = np.take_along_axis(
                    buf, order[qs:qe], axis=1
                )
        return order, sorted_dist

    # the index *is* the data matrix: base-class mutation needs no refit
    def _partial_fit(self, points: np.ndarray) -> None:
        pass

    def _forget(self, idx: np.ndarray) -> None:
        pass


# ----------------------------------------------------------------------
class LSHNeighborBackend(NeighborBackend):
    """Adapter exposing :class:`repro.lsh.tables.LSHIndex` to the engine.

    Retrieval is approximate: a query may return fewer than ``k``
    neighbors, which is exactly what the truncated recursion of
    Theorem 2 tolerates.  Distances are Euclidean (the 2-stable family
    hashes l2 space).

    Mutations are absorbed in place while the indexed size stays close
    to the size the tables were tuned for: :meth:`partial_fit` hashes
    new points into the existing per-table buckets, and :meth:`forget`
    tombstones (queries skip the dead; :meth:`compact` scrubs them out
    without rehashing, preserving query results bit-for-bit).  Once
    ``n`` drifts more than :attr:`refit_drift` (25%) from the tuned
    size, the tuning assumptions of Section 6.1 no longer hold.  What
    happens then depends on whether a maintenance owner is attached:

    * with an :attr:`on_drift` hook (a
      :class:`repro.monitor.MaintenanceScheduler` installs one), the
      backend keeps absorbing mutations in place and the hook schedules
      a silent background :meth:`retune` — serving never warns and
      never stalls on an inline rebuild;
    * without one, the legacy escape hatch fires: a ``RuntimeWarning``
      and a full refit on the next query.

    :meth:`retune` is the adaptive-maintenance entry point: it
    re-estimates the relative contrast from current data (and, when
    given, a sample of recent queries — the telemetry reservoir),
    re-runs the Section 6.1 selection, and rebuilds.  Per-index
    telemetry counters (in-place inserts, tombstones) reset on every
    (re)build so monitored ratios always describe the live index.

    Tuning follows the paper's Section 6.1 recipe and happens lazily,
    because the table count depends on how many neighbors (``K*``) the
    valuation will request.  Two modes:

    * with ``tune_with_queries`` (default), :meth:`prepare` normalizes
      the data so the mean *query*-to-training distance is 1 and
      estimates the relative contrast from the query batch — the
      procedure of :func:`repro.lsh.valuation.lsh_knn_shapley`;
    * otherwise the contrast is estimated from the training set against
      itself, the only option in streaming settings where queries
      arrive after the index must exist.

    Parameters
    ----------
    delta:
        Allowed per-batch retrieval failure probability (Theorem 3).
    params:
        Pre-tuned :class:`repro.lsh.tuning.LSHParameters`; skips all
        estimation when given.
    alpha:
        Code-length multiplier forwarded to the tuner.
    tune_with_queries:
        See above.
    seed:
        Seed for contrast subsampling and hash projections.
    """

    name = "lsh"
    supports_full_ranking = False
    supports_incremental_mutation = True

    #: fractional drift of ``n`` from the tuned size beyond which
    #: mutations degrade to a warned full refit
    refit_drift = 0.25

    def __init__(
        self,
        delta: float = 0.1,
        params=None,
        alpha: float = 0.5,
        tune_with_queries: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if not 0 < delta < 1:
            raise ParameterError(f"delta must lie in (0, 1), got {delta}")
        self.delta = float(delta)
        self.alpha = float(alpha)
        self.tune_with_queries = bool(tune_with_queries)
        self.metric = "euclidean"
        self._seed = seed
        self._fixed_params = params
        self.params = params
        self._index = None
        self._scale = 1.0
        self._built_k = 0
        self._tuned_n = 0
        #: drift hook: called with this backend when a mutation finds
        #: the index outside its tuned band; returning True means a
        #: maintenance owner scheduled the recovery (keep mutating in
        #: place, no warning), False/None falls back to the warned refit
        self.on_drift: Optional[Callable[["LSHNeighborBackend"], bool]] = None
        self._baseline_candidates: float | None = None
        self._ops.update(
            builds=0,
            retunes=0,
            compactions=0,
            inserts_in_place=0,
            tombstones_in_place=0,
            deferred_refits=0,
            warned_refits=0,
        )
        #: external index -> internal LSHIndex id; ``None`` = identity
        #: (the two diverge only after a tombstoning ``forget``)
        self._ids: np.ndarray | None = None
        #: in-place mutations absorbed since the last (re)build — part
        #: of the cache token, since they change query results
        self._churn = 0
        self.build_seconds = 0.0
        self.last_stats = None
        # guards rebuilds: ValuationService workers share one backend,
        # and a rebuild swaps _index/_scale/params as a unit
        self._build_lock = threading.Lock()

    def _fit(self, data: np.ndarray) -> None:
        # tuning is deferred to the first prepare/query, when k is known
        self._index = None
        self._built_k = 0
        self._ids = None

    def _drifted(self) -> bool:
        """Whether the index left the band the tables were tuned for.

        Two signals: the *alive* count (tuning assumed it), and the
        index's *internal* row count — tombstones and appends both
        leave rows in the tables, so balanced add/remove churn grows
        the internal size without moving the alive count.  Bounding
        both means a refit (which compacts) always arrives before the
        index outgrows its tuned band, whatever the churn pattern.
        """
        n_now = self._data.shape[0]
        if abs(n_now - self._tuned_n) > self.refit_drift * self._tuned_n:
            return True
        return (
            self._index is not None
            and self._index.n > (1.0 + self.refit_drift) * self._tuned_n
        )

    # ------------------------------------------------------------------
    # the monitoring surface (read by repro.monitor detectors)
    @property
    def built_k(self) -> int:
        """The ``k`` the live index was built for (0 before any build)."""
        return self._built_k

    @property
    def scale(self) -> float:
        """Normalization scale the live index applies to raw data."""
        return self._scale

    @property
    def tuned_n(self) -> int:
        """Indexed size the live tuning assumed (0 before any build)."""
        return self._tuned_n

    @property
    def tombstone_ratio(self) -> float:
        """Fraction of internal index rows that are tombstoned."""
        index = self._index
        return 0.0 if index is None else index.tombstone_ratio

    @property
    def internal_n(self) -> int:
        """Internal index rows including tombstones (0 before a build).

        Balanced add/remove churn grows this without moving the alive
        count — the second signal :meth:`_drifted` bounds.
        """
        index = self._index
        return 0 if index is None else index.n

    @property
    def baseline_candidates(self) -> float | None:
        """Mean candidate-set size of the first batch after a build.

        The reference level candidate-distribution drift is measured
        against; ``None`` until the first post-build query.
        """
        return self._baseline_candidates

    @property
    def needs_refit(self) -> bool:
        """Whether the live index has left its tuned band."""
        with self._build_lock:
            return self._index is not None and self._drifted()

    def _handle_drift(self) -> bool:
        """Dispatch a drifted mutation; True = keep mutating in place.

        With an :attr:`on_drift` hook that accepts the signal, the
        recovery (a re-tune) is the hook owner's job and the mutation
        proceeds in place, silently.  Without one, the legacy escape
        hatch warns and drops the index for a full refit on the next
        query.
        """
        hook = self.on_drift
        if hook is not None and hook(self):
            self._count("deferred_refits")
            return True
        warnings.warn(
            "the LSH backend's indexed size drifted more than "
            f"{self.refit_drift:.0%} from the tuned size "
            f"({self._tuned_n}); falling back to a full refit on the "
            "next query",
            RuntimeWarning,
            stacklevel=4,
        )
        self._count("warned_refits")
        self._fit(self._data)
        return False

    def _partial_fit(self, points: np.ndarray) -> None:
        with self._build_lock:
            if self._index is None:
                # not built yet — the lazy build will index everything
                return
            if self._drifted() and not self._handle_drift():
                # warned path: the index is dropped, the next query's
                # lazy rebuild indexes everything including `points`
                return
            # in-place: hash the new points into the existing buckets
            # (in the index's normalized space); identity of external
            # and internal ids is preserved because appends land at the
            # end of both numberings
            new_internal = self._index.insert(points * self._scale)
            if self._ids is not None:
                self._ids = np.concatenate((self._ids, new_internal))
            self._churn += 1
            self._count("inserts_in_place", points.shape[0])

    def _forget(self, idx: np.ndarray) -> None:
        with self._build_lock:
            if self._index is None:
                return
            if self._drifted() and not self._handle_drift():
                return
            if self._ids is None:
                # identity held until now: the index's internal count
                # equals the pre-delete external count
                self._ids = np.arange(self._data.shape[0] + idx.size, dtype=np.intp)
            self._index.remove(self._ids[idx])
            self._ids = np.delete(self._ids, idx)
            self._churn += 1
            self._count("tombstones_in_place", idx.size)

    def _build(self, queries: Optional[np.ndarray], k: int) -> None:
        from ..lsh.contrast import ContrastEstimate, estimate_relative_contrast
        from ..lsh.tables import LSHIndex
        from ..lsh.tuning import tune_lsh

        data = self._require_fitted()
        n = data.shape[0]
        start = time.perf_counter()
        if self._fixed_params is not None:
            params = self._fixed_params
            contrast = params.contrast
            self._scale = 1.0 / contrast.d_mean if contrast.d_mean > 0 else 1.0
        elif self.tune_with_queries and queries is not None:
            # the paper's procedure (lsh_knn_shapley): estimate in raw
            # space, normalize so D_mean = 1, tune in normalized space.
            # The scale must come from the *raw* estimate — the
            # normalized one reports d_mean = 1.0 by construction, and
            # deriving the scale from it builds the index on
            # unnormalized data with a width tuned for unit space (the
            # recall collapse the monitor's spot checks flag instantly)
            k_c = min(k, n)
            est = estimate_relative_contrast(
                data, queries, k=k_c, seed=self._seed
            )
            self._scale = 1.0 / est.d_mean if est.d_mean > 0 else 1.0
            contrast = ContrastEstimate(
                d_mean=1.0,
                d_k=est.d_k * self._scale,
                contrast=est.contrast,
                k=k_c,
            )
            params = tune_lsh(
                contrast, n=n, k_star=k_c, delta=self.delta, alpha=self.alpha
            )
        else:
            k_c = min(k, max(1, n - 1))
            est = estimate_relative_contrast(data, data, k=k_c, seed=self._seed)
            self._scale = 1.0 / est.d_mean if est.d_mean > 0 else 1.0
            contrast = ContrastEstimate(
                d_mean=1.0,
                d_k=est.d_k * self._scale,
                contrast=est.contrast,
                k=k_c,
            )
            params = tune_lsh(
                contrast, n=n, k_star=k_c, delta=self.delta, alpha=self.alpha
            )
        self.params = params
        self._index = LSHIndex(
            n_tables=params.n_tables,
            n_bits=params.n_bits,
            width=params.width,
            seed=self._seed,
        ).build(data * self._scale)
        self._built_k = k
        self._tuned_n = n
        self._ids = None
        # a fresh index has no tombstones and no in-place churn: reset
        # the per-index telemetry so monitored ratios (tombstones /
        # internal rows, inserts since build) describe the live tables
        # instead of going negative against a compacted index
        self._churn = 0
        self._baseline_candidates = None
        with self._ops_lock:
            self._ops["builds"] += 1
            self._ops["inserts_in_place"] = 0
            self._ops["tombstones_in_place"] = 0
        self.build_seconds = time.perf_counter() - start
        hub = self.telemetry
        if hub is not None:
            hub.record("backend.lsh.build_seconds", self.build_seconds)

    def prepare(self, queries: Optional[np.ndarray], k: int) -> None:
        """Tune and build the index for batches requesting ``k``.

        ``queries`` may be ``None`` (streaming: build before any query
        exists), which forces the self-contrast tuning mode.
        """
        if queries is not None:
            queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        self._ensure_built(queries, k)

    def _ensure_built(
        self, queries: Optional[np.ndarray], k: int
    ) -> tuple["object", float, Optional[np.ndarray]]:
        """Build if needed; return a consistent ``(index, scale, ids)``.

        The triple is captured under the build lock as one snapshot:
        maintenance (a retune or compaction) swaps ``_index`` and
        ``_ids`` together, so a query that keeps using its snapshot
        stays internally consistent even while a swap lands.
        """
        with self._build_lock:
            if self._index is None or k > self._built_k:
                self._build(queries, k)
            return self._index, self._scale, self._ids

    def query(
        self, queries: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        start = time.perf_counter()
        idx, dist, stats = self._query_impl(queries, k)
        seconds = time.perf_counter() - start
        if self._baseline_candidates is None:
            # the first batch against a fresh index anchors the level
            # candidate-distribution drift is measured from
            self._baseline_candidates = stats.mean_candidates
        self.record_retrieval(len(idx), seconds)
        hub = self.telemetry
        if hub is not None:
            hub.record("backend.lsh.mean_candidates", stats.mean_candidates)
            if stats.n_returned.size:
                hub.record(
                    "backend.lsh.fill",
                    float(stats.n_returned.mean()) / max(1, min(k, self.n)),
                )
            # the query reservoir: what contrast re-estimation samples
            hub.observe("queries", queries)
        return idx, dist

    def spot_query(
        self, queries: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        idx, dist, _ = self._query_impl(queries, k)
        return idx, dist

    def _query_impl(self, queries: np.ndarray, k: int):
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        index, scale, ids = self._ensure_built(queries, k)
        idx, dist, stats = index.query(queries * scale, min(k, self.n))
        self.last_stats = stats
        if ids is not None:
            # tombstoning broke id identity: translate the index's
            # internal ids back to current external training indices
            # (using the snapshot taken with the index — re-reading
            # self._ids here could pair an old index with a mapping a
            # concurrent compaction already reset)
            lookup = np.full(index.n, -1, dtype=np.intp)
            lookup[ids] = np.arange(ids.shape[0], dtype=np.intp)
            idx = [lookup[row] for row in idx]
        # the index works in normalized space; report true distances
        inv = 1.0 / scale if scale != 0 else 1.0
        return idx, [d * inv for d in dist], stats

    # ------------------------------------------------------------------
    # adaptive maintenance: re-tune and compact without interrupting
    # service (owners run these under their exclusive lock — see
    # ValuationEngine.run_exclusive)
    def retune(self, queries: Optional[np.ndarray] = None, k: Optional[int] = None):
        """Re-estimate the contrast on current data and rebuild, silently.

        The background-maintenance replacement for both the warned
        drift refit and the never-refreshed contrast estimate: the
        Section 6.1 selection (:func:`repro.lsh.tuning.tune_lsh`) is
        re-run against a *fresh* :class:`~repro.lsh.contrast.ContrastEstimate`
        measured on the data as it is now — against ``queries`` (a
        telemetry reservoir sample of recent traffic, the
        ``tune_with_queries`` mode) when given, else against the data
        itself — and the tables are rebuilt with the new parameters,
        compacting all tombstones as a side effect.

        With fixed ``params`` (user-pinned tuning) the rebuild still
        happens — it compacts and re-indexes — but the parameters stay
        pinned.  Returns the parameters now live, or ``None`` when the
        index was never built (nothing to re-tune; the lazy build will
        tune from scratch).
        """
        with self._build_lock:
            if self._index is None:
                return None
            if queries is not None:
                queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
                if queries.shape[0] == 0:
                    queries = None
            self._build(queries, int(k or self._built_k or 1))
            self._count("retunes")
            return self.params

    def compact(self) -> int:
        """Scrub tombstones from the live index; results are unchanged.

        Delegates to :meth:`repro.lsh.tables.LSHIndex.compact`, which
        filters bucket arrays in place without rehashing, so query
        results are bit-identical before and after — the cache token
        deliberately does not change.  Restores the identity mapping
        between external training indices and internal ids (appends
        land at the end of both numberings and deletions preserve
        order, so the alive internal order *is* the external order).
        Returns the number of rows scrubbed.

        Like :meth:`retune`, this *swaps in* a new index object
        (:meth:`~repro.lsh.tables.LSHIndex.compacted`) rather than
        mutating the live one, and the swap replaces ``_index`` and
        ``_ids`` as one unit under the build lock — an in-flight query
        holding the previous snapshot finishes against the old tables
        and old mapping, consistently.
        """
        with self._build_lock:
            if self._index is None:
                return 0
            dead = self._index.n - self._index.n_alive
            if dead == 0:
                return 0
            self._index, _ = self._index.compacted()
            self._ids = None
            self._count("compactions")
            return dead

    def stats(self) -> dict:
        """Unified-schema snapshot including per-index LSH gauges."""
        out = super().stats()
        index = self._index
        params = self.params
        gauges = out["gauges"]
        gauges.update(
            tuned_n=self._tuned_n,
            built_k=self._built_k,
            scale=self._scale,
            churn=self._churn,
            tombstone_ratio=self.tombstone_ratio,
        )
        if index is not None:
            gauges["internal_n"] = index.n
            gauges["n_alive"] = index.n_alive
        if params is not None:
            gauges.update(
                width=params.width,
                n_bits=params.n_bits,
                n_tables=params.n_tables,
                tuned_contrast=params.contrast.contrast,
            )
        if self._baseline_candidates is not None:
            gauges["baseline_candidates"] = self._baseline_candidates
        out["timings"]["build_seconds"] = self.build_seconds
        return out

    def cache_token(self) -> str:
        p = self.params
        tuned = (
            f"w={p.width},m={p.n_bits},l={p.n_tables}" if p is not None else "untuned"
        )
        # `build` counts rebuilds: an unseeded rebuild redraws its hash
        # projections, so entries cached against the previous index
        # must not be served even when the tuning round-trips
        return (
            f"lsh:{tuned}:scale={self._scale!r}:seed={self._seed!r}"
            f":build={self._ops['builds']}:churn={self._churn}"
        )


# ----------------------------------------------------------------------
_BACKEND_REGISTRY: Dict[str, Callable[..., NeighborBackend]] = {}


def register_backend(name: str, factory: Callable[..., NeighborBackend]) -> None:
    """Register a backend factory under ``name`` (overwrites quietly)."""
    if not name:
        raise ParameterError("backend name must be non-empty")
    _BACKEND_REGISTRY[name] = factory


def available_backends() -> list[str]:
    """Sorted names of all registered backends."""
    return sorted(_BACKEND_REGISTRY)


def make_backend(
    spec: Union[str, NeighborBackend], **options
) -> NeighborBackend:
    """Construct (or pass through) a backend.

    ``spec`` may be a registered name — constructed with ``options`` —
    or an already-built :class:`NeighborBackend` instance, in which
    case ``options`` must be empty.
    """
    if isinstance(spec, NeighborBackend):
        if options:
            raise ParameterError(
                "options cannot be applied to an already-constructed backend"
            )
        return spec
    try:
        factory = _BACKEND_REGISTRY[spec]
    except KeyError:
        raise ParameterError(
            f"unknown backend {spec!r}; available: {available_backends()}"
        ) from None
    return factory(**options)


register_backend("brute", BruteForceBackend)
register_backend("blocked", BlockedExactBackend)
register_backend("lsh", LSHNeighborBackend)
