"""repro — Efficient Task-Specific Data Valuation for Nearest Neighbor Algorithms.

A from-scratch reproduction of Jia et al. (VLDB 2019): exact
O(N log N) Shapley values for unweighted KNN classifiers and
regressors, truncated and LSH-based sublinear approximations, exact
polynomial-time algorithms for weighted KNN and per-seller valuation,
composite games that value an analyst alongside data sellers, and
improved (Bennett-bound) Monte Carlo estimation.

Quickstart::

    from repro import KNNShapleyValuator
    from repro.datasets import gaussian_blobs

    data = gaussian_blobs(n_train=1000, n_test=50, seed=0)
    valuator = KNNShapleyValuator(data, k=5)
    result = valuator.exact()
    print(result.top(10))          # ten most valuable training points
"""

from .engine import (
    IncrementalValuator,
    ShardRouter,
    ValuationEngine,
    ValuationService,
)
from .monitor import (
    DriftSignal,
    MaintenanceScheduler,
    TelemetryHub,
    attach_monitoring,
)
from .exceptions import (
    ConvergenceError,
    DataValidationError,
    NotFittedError,
    ParameterError,
    ReproError,
    UtilityError,
)
from .types import Dataset, GroupedDataset, ValuationResult
from .valuation import KNNShapleyValuator, surrogate_values

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "GroupedDataset",
    "ValuationResult",
    "KNNShapleyValuator",
    "ValuationEngine",
    "IncrementalValuator",
    "ShardRouter",
    "ValuationService",
    "TelemetryHub",
    "DriftSignal",
    "MaintenanceScheduler",
    "attach_monitoring",
    "surrogate_values",
    "ReproError",
    "DataValidationError",
    "ParameterError",
    "NotFittedError",
    "ConvergenceError",
    "UtilityError",
    "__version__",
]
