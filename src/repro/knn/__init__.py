"""KNN substrate: distances, exact search, classifiers, regressors.

This package implements the nearest-neighbor machinery the paper's
valuation algorithms run on — entirely on numpy, with no external ML
dependency.
"""

from .classifier import KNNClassifier
from .distance import (
    METRICS,
    cosine_distances,
    euclidean_distances,
    get_metric,
    manhattan_distances,
    squared_euclidean_distances,
)
from .regressor import KNNRegressor
from .search import (
    KNNSearchIndex,
    argsort_by_distance,
    stable_argsort_rows,
    top_k,
)
from .weights import (
    WEIGHT_FUNCTIONS,
    WeightFunction,
    gaussian_weights,
    get_weight_function,
    inverse_distance_weights,
    rank_weights,
    uniform_weights,
)

__all__ = [
    "KNNClassifier",
    "KNNRegressor",
    "KNNSearchIndex",
    "argsort_by_distance",
    "stable_argsort_rows",
    "top_k",
    "METRICS",
    "get_metric",
    "euclidean_distances",
    "squared_euclidean_distances",
    "cosine_distances",
    "manhattan_distances",
    "WEIGHT_FUNCTIONS",
    "WeightFunction",
    "get_weight_function",
    "uniform_weights",
    "inverse_distance_weights",
    "rank_weights",
    "gaussian_weights",
]
