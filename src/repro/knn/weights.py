"""Weight functions for weighted KNN (Section 4 of the paper).

A weighted KNN estimate is ``sum_k w_k * y_{alpha_k}`` where the weight
``w_k`` of the k-th nearest neighbor typically decreases with its
distance to the query [Dudani 1976].  The paper's experiments use
inverse-distance weights; we additionally ship the uniform (``1/K``)
weights that recover the unweighted estimator, rank-based weights, and a
Gaussian kernel.

A weight function maps the *sorted ascending* distance vector of the
selected neighbors to a weight vector of the same length.  Functions do
NOT need to normalize to sum one — the paper's weighted utility (eq 26)
uses raw weights — but every built-in here normalizes so the utility
stays in ``[0, 1]`` for classification, which keeps the Monte Carlo
range parameter ``r`` interpretable.

Capabilities
------------
Weight functions carry a ``rank_only`` flag: ``True`` means the output
depends only on the *length* of the distance vector (the neighbor
positions), never on the distance values themselves.  ``uniform`` and
``rank`` are rank-only; ``inverse_distance`` and ``gaussian`` are not.
Rank-only weights are what the weighted kernel's O(N·poly(K))
piecewise fast path requires (Appendix F): with them the utility
difference of adjacent ranks collapses to a per-position constant, so
the Shapley difference becomes a closed-form counting problem instead
of an O(N^K) enumeration.  Custom callables can opt in by setting
``fn.rank_only = True`` (:func:`is_rank_only` reads the attribute).

Two batch helpers serve the vectorized execution paths:
:func:`apply_weights_batched` evaluates a weight function over a whole
``(M, m)`` block of sorted distance rows in one numpy pass (built-ins
have hand-vectorized implementations, custom callables fall back to a
row loop), and :func:`weight_position_table` tabulates a rank-only
function's per-position weights ``w_q(m)`` for every selected-neighbor
count ``m <= K``.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

from ..exceptions import KernelCapabilityError, ParameterError

__all__ = [
    "WeightFunction",
    "uniform_weights",
    "inverse_distance_weights",
    "rank_weights",
    "gaussian_weights",
    "get_weight_function",
    "is_rank_only",
    "apply_weights_batched",
    "weight_position_table",
    "WEIGHT_FUNCTIONS",
    "BATCHED_WEIGHT_FUNCTIONS",
]

WeightFunction = Callable[[np.ndarray], np.ndarray]


def _normalize(w: np.ndarray) -> np.ndarray:
    """Normalize weights to sum to one; degenerate input becomes uniform."""
    total = w.sum()
    if total <= 0 or not np.isfinite(total):
        return np.full_like(w, 1.0 / max(1, w.size))
    return w / total


def uniform_weights(distances: np.ndarray) -> np.ndarray:
    """``1/len`` for every neighbor — recovers unweighted KNN."""
    distances = np.asarray(distances, dtype=np.float64)
    if distances.size == 0:
        return distances.copy()
    return np.full(distances.shape, 1.0 / distances.size)


def inverse_distance_weights(
    distances: np.ndarray, eps: float = 1e-8
) -> np.ndarray:
    """Weights proportional to ``1 / (d + eps)`` (Dudani's rule).

    ``eps`` regularizes the exact-hit case ``d == 0``; with several
    exact hits they share the mass evenly.
    """
    distances = np.asarray(distances, dtype=np.float64)
    if distances.size == 0:
        return distances.copy()
    return _normalize(1.0 / (distances + eps))


def rank_weights(distances: np.ndarray) -> np.ndarray:
    """Weights proportional to ``K - rank``: linear falloff by rank.

    Depends only on the neighbor order, not the raw distances, which
    makes it robust to distance-scale differences between queries.
    """
    distances = np.asarray(distances, dtype=np.float64)
    k = distances.size
    if k == 0:
        return distances.copy()
    return _normalize(np.arange(k, 0, -1, dtype=np.float64))


def gaussian_weights(distances: np.ndarray, bandwidth: float = 1.0) -> np.ndarray:
    """Weights ``exp(-d^2 / (2 * bandwidth^2))``, normalized."""
    if bandwidth <= 0:
        raise ParameterError(f"bandwidth must be positive, got {bandwidth}")
    distances = np.asarray(distances, dtype=np.float64)
    if distances.size == 0:
        return distances.copy()
    return _normalize(np.exp(-(distances**2) / (2.0 * bandwidth**2)))


#: depends only on the neighbor count, never on the distance values
uniform_weights.rank_only = True
rank_weights.rank_only = True
inverse_distance_weights.rank_only = False
gaussian_weights.rank_only = False


WEIGHT_FUNCTIONS: Dict[str, WeightFunction] = {
    "uniform": uniform_weights,
    "inverse_distance": inverse_distance_weights,
    "rank": rank_weights,
    "gaussian": gaussian_weights,
}


def get_weight_function(name: str) -> WeightFunction:
    """Look up a built-in weight function by name."""
    try:
        return WEIGHT_FUNCTIONS[name]
    except KeyError:
        raise ParameterError(
            f"unknown weight function {name!r}; available: "
            f"{sorted(WEIGHT_FUNCTIONS)}"
        ) from None


def is_rank_only(weights: Union[str, WeightFunction]) -> bool:
    """Whether a weight function's output ignores the distance values.

    Accepts a built-in name or a callable; callables declare the
    capability through a ``rank_only`` attribute (absent means
    ``False`` — the safe default, since a distance-dependent function
    wrongly classified as rank-only would silently compute wrong
    piecewise values, while the reverse merely costs speed).
    """
    fn = get_weight_function(weights) if isinstance(weights, str) else weights
    return bool(getattr(fn, "rank_only", False))


# ======================================================================
# batched evaluation (the vectorized execution paths)
# ======================================================================
def _normalize_rows(w: np.ndarray) -> np.ndarray:
    """Row-wise :func:`_normalize`: degenerate rows become uniform."""
    if w.shape[1] == 0:
        return w.copy()
    total = w.sum(axis=1)
    bad = (total <= 0) | ~np.isfinite(total)
    out = w / np.where(bad, 1.0, total)[:, None]
    if np.any(bad):
        out[bad] = 1.0 / w.shape[1]
    return out


def _batched_uniform(distances: np.ndarray) -> np.ndarray:
    m = distances.shape[1]
    if m == 0:
        return np.asarray(distances, dtype=np.float64).copy()
    return np.full(distances.shape, 1.0 / m)


def _batched_inverse_distance(
    distances: np.ndarray, eps: float = 1e-8
) -> np.ndarray:
    distances = np.asarray(distances, dtype=np.float64)
    if distances.shape[1] == 0:
        return distances.copy()
    return _normalize_rows(1.0 / (distances + eps))


def _batched_rank(distances: np.ndarray) -> np.ndarray:
    m = distances.shape[1]
    if m == 0:
        return np.asarray(distances, dtype=np.float64).copy()
    row = np.arange(m, 0, -1, dtype=np.float64)
    return np.broadcast_to(row / row.sum(), distances.shape).copy()


def _batched_gaussian(
    distances: np.ndarray, bandwidth: float = 1.0
) -> np.ndarray:
    if bandwidth <= 0:
        raise ParameterError(f"bandwidth must be positive, got {bandwidth}")
    distances = np.asarray(distances, dtype=np.float64)
    if distances.shape[1] == 0:
        return distances.copy()
    return _normalize_rows(np.exp(-(distances**2) / (2.0 * bandwidth**2)))


#: Vectorized counterparts of the built-ins, keyed by the scalar
#: function object so both names and resolved callables route here.
BATCHED_WEIGHT_FUNCTIONS: Dict[WeightFunction, WeightFunction] = {
    uniform_weights: _batched_uniform,
    inverse_distance_weights: _batched_inverse_distance,
    rank_weights: _batched_rank,
    gaussian_weights: _batched_gaussian,
}


def apply_weights_batched(
    weights: Union[str, WeightFunction], distances: np.ndarray
) -> np.ndarray:
    """Apply a weight function to every row of ``(M, m)`` distances.

    Rows are the sorted ascending distance vectors of ``M`` same-size
    coalitions' selected neighbors.  Built-in functions run their
    hand-vectorized implementation (elementwise identical to the
    scalar form); unknown callables fall back to a per-row loop so any
    :data:`WeightFunction` stays usable, just without the batching win.
    """
    fn = get_weight_function(weights) if isinstance(weights, str) else weights
    distances = np.atleast_2d(np.asarray(distances, dtype=np.float64))
    batched = BATCHED_WEIGHT_FUNCTIONS.get(fn)
    if batched is not None:
        return batched(distances)
    out = np.empty(distances.shape, dtype=np.float64)
    for r in range(distances.shape[0]):
        out[r] = fn(distances[r])
    return out


def weight_position_table(
    weights: Union[str, WeightFunction], k: int
) -> np.ndarray:
    """Tabulate a rank-only function: ``table[m-1, q-1] = w_q(m)``.

    Row ``m-1`` holds the weights a coalition with ``m`` selected
    neighbors assigns to positions ``1..m`` (entries beyond ``m`` are
    zero).  Only meaningful — and only allowed — for rank-only weight
    functions, whose output ignores the distance values; the dummy
    distances used here are arbitrary ascending positives.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    fn = get_weight_function(weights) if isinstance(weights, str) else weights
    if not is_rank_only(fn):
        name = weights if isinstance(weights, str) else getattr(
            fn, "__name__", "custom"
        )
        raise KernelCapabilityError(
            f"weight function {name!r} is not rank-only; its per-position "
            "weights depend on the distance values and cannot be tabulated "
            "(custom callables that qualify must declare the capability "
            "with fn.rank_only = True)",
            capability="rank_only",
        )
    table = np.zeros((k, k), dtype=np.float64)
    for m in range(1, k + 1):
        table[m - 1, :m] = np.asarray(
            fn(np.arange(1.0, m + 1.0)), dtype=np.float64
        )
    return table
