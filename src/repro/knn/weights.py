"""Weight functions for weighted KNN (Section 4 of the paper).

A weighted KNN estimate is ``sum_k w_k * y_{alpha_k}`` where the weight
``w_k`` of the k-th nearest neighbor typically decreases with its
distance to the query [Dudani 1976].  The paper's experiments use
inverse-distance weights; we additionally ship the uniform (``1/K``)
weights that recover the unweighted estimator, rank-based weights, and a
Gaussian kernel.

A weight function maps the *sorted ascending* distance vector of the
selected neighbors to a weight vector of the same length.  Functions do
NOT need to normalize to sum one — the paper's weighted utility (eq 26)
uses raw weights — but every built-in here normalizes so the utility
stays in ``[0, 1]`` for classification, which keeps the Monte Carlo
range parameter ``r`` interpretable.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "WeightFunction",
    "uniform_weights",
    "inverse_distance_weights",
    "rank_weights",
    "gaussian_weights",
    "get_weight_function",
    "WEIGHT_FUNCTIONS",
]

WeightFunction = Callable[[np.ndarray], np.ndarray]


def _normalize(w: np.ndarray) -> np.ndarray:
    """Normalize weights to sum to one; degenerate input becomes uniform."""
    total = w.sum()
    if total <= 0 or not np.isfinite(total):
        return np.full_like(w, 1.0 / max(1, w.size))
    return w / total


def uniform_weights(distances: np.ndarray) -> np.ndarray:
    """``1/len`` for every neighbor — recovers unweighted KNN."""
    distances = np.asarray(distances, dtype=np.float64)
    if distances.size == 0:
        return distances.copy()
    return np.full(distances.shape, 1.0 / distances.size)


def inverse_distance_weights(
    distances: np.ndarray, eps: float = 1e-8
) -> np.ndarray:
    """Weights proportional to ``1 / (d + eps)`` (Dudani's rule).

    ``eps`` regularizes the exact-hit case ``d == 0``; with several
    exact hits they share the mass evenly.
    """
    distances = np.asarray(distances, dtype=np.float64)
    if distances.size == 0:
        return distances.copy()
    return _normalize(1.0 / (distances + eps))


def rank_weights(distances: np.ndarray) -> np.ndarray:
    """Weights proportional to ``K - rank``: linear falloff by rank.

    Depends only on the neighbor order, not the raw distances, which
    makes it robust to distance-scale differences between queries.
    """
    distances = np.asarray(distances, dtype=np.float64)
    k = distances.size
    if k == 0:
        return distances.copy()
    return _normalize(np.arange(k, 0, -1, dtype=np.float64))


def gaussian_weights(distances: np.ndarray, bandwidth: float = 1.0) -> np.ndarray:
    """Weights ``exp(-d^2 / (2 * bandwidth^2))``, normalized."""
    if bandwidth <= 0:
        raise ParameterError(f"bandwidth must be positive, got {bandwidth}")
    distances = np.asarray(distances, dtype=np.float64)
    if distances.size == 0:
        return distances.copy()
    return _normalize(np.exp(-(distances**2) / (2.0 * bandwidth**2)))


WEIGHT_FUNCTIONS: Dict[str, WeightFunction] = {
    "uniform": uniform_weights,
    "inverse_distance": inverse_distance_weights,
    "rank": rank_weights,
    "gaussian": gaussian_weights,
}


def get_weight_function(name: str) -> WeightFunction:
    """Look up a built-in weight function by name."""
    try:
        return WEIGHT_FUNCTIONS[name]
    except KeyError:
        raise ParameterError(
            f"unknown weight function {name!r}; available: "
            f"{sorted(WEIGHT_FUNCTIONS)}"
        ) from None
