"""KNN classifiers (unweighted and weighted), built from scratch.

These are the ML models whose utility the paper values.  The unweighted
classifier's per-query score ``P[x -> y] = (1/K) * #{neighbors with
label y}`` is exactly the quantity inside the KNN utility (eq 5), so
:meth:`KNNClassifier.likelihood_of` doubles as the utility evaluator on
the full training set.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import NotFittedError, ParameterError
from ..types import as_float_matrix, as_label_vector
from .search import top_k
from .weights import WeightFunction, get_weight_function, uniform_weights

__all__ = ["KNNClassifier"]


class KNNClassifier:
    """A K-nearest-neighbor classifier.

    Parameters
    ----------
    k:
        Number of neighbors.
    metric:
        Distance metric name (see :mod:`repro.knn.distance`).
    weights:
        ``None`` or ``"uniform"`` for the unweighted classifier;
        otherwise a weight-function name or callable (see
        :mod:`repro.knn.weights`).
    """

    def __init__(
        self,
        k: int = 1,
        metric: str = "euclidean",
        weights: Optional[str | WeightFunction] = None,
    ) -> None:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        self.k = int(k)
        self.metric = metric
        if weights is None:
            self._weight_fn: WeightFunction = uniform_weights
            self.weights_name = "uniform"
        elif callable(weights):
            self._weight_fn = weights
            self.weights_name = getattr(weights, "__name__", "custom")
        else:
            self._weight_fn = get_weight_function(weights)
            self.weights_name = weights
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._classes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # fitting / bookkeeping
    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        """Store the training set (KNN has no other training phase)."""
        x = as_float_matrix(x, "x")
        y = as_label_vector(y, x.shape[0], "y")
        self._x = x
        self._y = y
        self._classes = np.unique(y)
        return self

    def _require_fitted(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._x is None or self._y is None or self._classes is None:
            raise NotFittedError("KNNClassifier.fit must be called first")
        return self._x, self._y, self._classes

    @property
    def classes_(self) -> np.ndarray:
        """Sorted array of class labels seen during :meth:`fit`."""
        return self._require_fitted()[2]

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def kneighbors(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Indices and distances of the K nearest training points."""
        x, _, _ = self._require_fitted()
        return top_k(queries, x, self.k, metric=self.metric)

    def predict_proba(self, queries: np.ndarray) -> np.ndarray:
        """Class-membership scores, shape ``(q, n_classes)``.

        For the unweighted classifier this is the fraction of the K
        neighbors carrying each label; for weighted variants it is the
        total neighbor weight per label.
        """
        x, y, classes = self._require_fitted()
        queries = as_float_matrix(queries, "queries")
        idx, dist = top_k(queries, x, self.k, metric=self.metric)
        scores = np.zeros((queries.shape[0], classes.size))
        class_pos = {label: p for p, label in enumerate(classes)}
        for row in range(queries.shape[0]):
            w = self._weight_fn(dist[row])
            for j, train_i in enumerate(idx[row]):
                scores[row, class_pos[y[train_i]]] += w[j]
        return scores

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Predicted labels (argmax of :meth:`predict_proba`)."""
        _, _, classes = self._require_fitted()
        scores = self.predict_proba(queries)
        return classes[np.argmax(scores, axis=1)]

    def likelihood_of(self, queries: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Score assigned to the *given* label for each query.

        For the unweighted classifier on the full training set this is
        the per-test-point KNN utility of eq (5):
        ``(1/K) * sum_k 1[y_{alpha_k} = y_test]``.
        """
        x, y, classes = self._require_fitted()
        queries = as_float_matrix(queries, "queries")
        labels = as_label_vector(labels, queries.shape[0], "labels")
        idx, dist = top_k(queries, x, self.k, metric=self.metric)
        out = np.empty(queries.shape[0])
        for row in range(queries.shape[0]):
            w = self._weight_fn(dist[row])
            match = (y[idx[row]] == labels[row]).astype(np.float64)
            out[row] = float(np.dot(w, match))
        return out

    def score(self, queries: np.ndarray, labels: np.ndarray) -> float:
        """Mean 0/1 accuracy on ``(queries, labels)``."""
        pred = self.predict(queries)
        labels = as_label_vector(labels, pred.shape[0], "labels")
        return float(np.mean(pred == labels))
