"""Distance kernels for nearest-neighbor search.

The paper measures similarity in Euclidean (l2) distance, which is what
the p-stable LSH family targets; cosine distance is provided as well
because deep-feature pipelines frequently normalize embeddings.  All
kernels are vectorized: they take a query matrix ``(q, d)`` and a data
matrix ``(n, d)`` and return a ``(q, n)`` distance matrix.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "euclidean_distances",
    "squared_euclidean_distances",
    "cosine_distances",
    "manhattan_distances",
    "get_metric",
    "METRICS",
]


def squared_euclidean_distances(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Pairwise squared l2 distances via the expanded quadratic form.

    Uses ``||a - b||^2 = ||a||^2 - 2 a.b + ||b||^2`` which is a single
    matrix multiplication instead of a ``(q, n, d)`` broadcast, keeping
    memory at O(q*n).  Small negative values from floating point
    cancellation are clamped to zero.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    q_norms = np.einsum("ij,ij->i", queries, queries)
    d_norms = np.einsum("ij,ij->i", data, data)
    sq = q_norms[:, None] - 2.0 * (queries @ data.T) + d_norms[None, :]
    np.maximum(sq, 0.0, out=sq)
    return sq


def euclidean_distances(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Pairwise l2 distances, shape ``(q, n)``."""
    return np.sqrt(squared_euclidean_distances(queries, data))


def cosine_distances(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Pairwise cosine distances ``1 - cos(a, b)``, shape ``(q, n)``.

    Zero vectors are treated as maximally distant from everything
    (distance 1), matching the convention that an all-zero embedding
    carries no directional information.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    q_norms = np.linalg.norm(queries, axis=1)
    d_norms = np.linalg.norm(data, axis=1)
    denom = np.outer(q_norms, d_norms)
    sims = np.zeros((queries.shape[0], data.shape[0]))
    nonzero = denom > 0
    dots = queries @ data.T
    sims[nonzero] = dots[nonzero] / denom[nonzero]
    np.clip(sims, -1.0, 1.0, out=sims)
    return 1.0 - sims


def manhattan_distances(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Pairwise l1 distances, shape ``(q, n)``.

    Computed in blocks to bound peak memory at roughly
    ``block * n * d`` floats.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    q, n = queries.shape[0], data.shape[0]
    out = np.empty((q, n))
    block = max(1, int(2**22 // max(1, n * queries.shape[1])))
    for start in range(0, q, block):
        stop = min(q, start + block)
        out[start:stop] = np.abs(
            queries[start:stop, None, :] - data[None, :, :]
        ).sum(axis=2)
    return out


METRICS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "euclidean": euclidean_distances,
    "sqeuclidean": squared_euclidean_distances,
    "cosine": cosine_distances,
    "manhattan": manhattan_distances,
}


def get_metric(name: str) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Look up a distance kernel by name.

    Raises
    ------
    ParameterError
        If ``name`` is not one of :data:`METRICS`.
    """
    try:
        return METRICS[name]
    except KeyError:
        raise ParameterError(
            f"unknown metric {name!r}; available: {sorted(METRICS)}"
        ) from None
