"""Brute-force nearest-neighbor search.

This is the substrate under the exact Shapley algorithms: Theorem 1 of
the paper needs, for every test point, the *full* ascending distance
ranking of the training set (``argsort_by_distance``), while the
truncated approximation of Theorem 2 and the KNN models themselves only
need the top ``k`` (``top_k``), for which ``numpy.argpartition`` gives
an O(n + k log k) selection instead of a full O(n log n) sort.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from .distance import get_metric

__all__ = ["argsort_by_distance", "top_k", "KNNSearchIndex"]


def argsort_by_distance(
    queries: np.ndarray, data: np.ndarray, metric: str = "euclidean"
) -> tuple[np.ndarray, np.ndarray]:
    """Rank all data points by ascending distance to each query.

    Parameters
    ----------
    queries:
        Query matrix, shape ``(q, d)``.
    data:
        Data matrix, shape ``(n, d)``.
    metric:
        Name of a distance kernel from :mod:`repro.knn.distance`.

    Returns
    -------
    (indices, distances):
        ``indices`` has shape ``(q, n)``: row ``j`` lists training
        indices from nearest to farthest from query ``j``.
        ``distances`` is the matching sorted distance matrix.
        Ties are broken by index (stable sort) so results are
        deterministic.
    """
    dist = get_metric(metric)(queries, data)
    order = np.argsort(dist, axis=1, kind="stable")
    sorted_dist = np.take_along_axis(dist, order, axis=1)
    return order, sorted_dist


def top_k(
    queries: np.ndarray,
    data: np.ndarray,
    k: int,
    metric: str = "euclidean",
) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``k`` nearest data points for each query.

    Uses ``argpartition`` followed by a sort of the selected slice, so
    the cost is O(n + k log k) per query instead of O(n log n).

    Returns
    -------
    (indices, distances):
        Both of shape ``(q, min(k, n))``, ordered nearest-first.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    data = np.atleast_2d(data)
    n = data.shape[0]
    k_eff = min(k, n)
    dist = get_metric(metric)(queries, data)
    if k_eff == n:
        part = np.argsort(dist, axis=1, kind="stable")
    else:
        part = np.argpartition(dist, k_eff - 1, axis=1)[:, :k_eff]
        part_dist = np.take_along_axis(dist, part, axis=1)
        inner = np.argsort(part_dist, axis=1, kind="stable")
        part = np.take_along_axis(part, inner, axis=1)
    idx = part[:, :k_eff]
    return idx, np.take_along_axis(dist, idx, axis=1)


class KNNSearchIndex:
    """A tiny exact search index over a fixed data matrix.

    The index pre-computes data norms so repeated queries avoid
    recomputing ``||x_i||^2``.  It intentionally mirrors the query
    interface of :class:`repro.lsh.tables.LSHIndex` so valuation code
    can swap exact search for approximate search.
    """

    def __init__(self, data: np.ndarray, metric: str = "euclidean") -> None:
        self._data = np.ascontiguousarray(np.atleast_2d(data), dtype=np.float64)
        if self._data.shape[0] == 0:
            raise ParameterError("search index requires at least one point")
        self._metric = metric
        get_metric(metric)  # validate eagerly

    @property
    def n(self) -> int:
        """Number of indexed points."""
        return int(self._data.shape[0])

    @property
    def metric(self) -> str:
        """Distance metric name."""
        return self._metric

    def query(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-``k`` search; see :func:`top_k`."""
        return top_k(queries, self._data, k, metric=self._metric)

    def query_all(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Full ascending ranking; see :func:`argsort_by_distance`."""
        return argsort_by_distance(queries, self._data, metric=self._metric)
