"""Brute-force nearest-neighbor search.

This is the substrate under the exact Shapley algorithms: Theorem 1 of
the paper needs, for every test point, the *full* ascending distance
ranking of the training set (``argsort_by_distance``), while the
truncated approximation of Theorem 2 and the KNN models themselves only
need the top ``k`` (``top_k``), for which ``numpy.argpartition`` gives
an O(n + k log k) selection instead of a full O(n log n) sort.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from .distance import get_metric

__all__ = [
    "argsort_by_distance",
    "stable_argsort_rows",
    "top_k",
    "KNNSearchIndex",
]


def stable_argsort_rows(dist: np.ndarray) -> np.ndarray:
    """Row-wise ascending argsort with ties broken by index, fast.

    Produces exactly the permutation ``np.argsort(dist, axis=1,
    kind="stable")`` would, but runs the O(n log n) work with numpy's
    default introsort (several times faster than the stable mergesort
    on large rows) and then repairs the — typically nonexistent — runs
    of exactly equal values by sorting their indices.  Used by the
    valuation engine's exact backends, where the sort dominates the
    whole pipeline.
    """
    dist = np.atleast_2d(dist)
    order = np.argsort(dist, axis=1)
    sorted_dist = np.take_along_axis(dist, order, axis=1)
    tie_next = sorted_dist[:, 1:] == sorted_dist[:, :-1]
    if not tie_next.any():
        return order
    for j in np.flatnonzero(tie_next.any(axis=1)):
        pos = np.flatnonzero(tie_next[j])
        # group consecutive tie positions into maximal runs of equals
        breaks = np.flatnonzero(np.diff(pos) > 1)
        starts = np.concatenate(([0], breaks + 1))
        stops = np.concatenate((breaks, [pos.size - 1]))
        for s, e in zip(starts, stops):
            a, b = pos[s], pos[e] + 2  # run spans columns a .. b-1
            order[j, a:b] = np.sort(order[j, a:b])
    return order


def argsort_by_distance(
    queries: np.ndarray, data: np.ndarray, metric: str = "euclidean"
) -> tuple[np.ndarray, np.ndarray]:
    """Rank all data points by ascending distance to each query.

    Parameters
    ----------
    queries:
        Query matrix, shape ``(q, d)``.
    data:
        Data matrix, shape ``(n, d)``.
    metric:
        Name of a distance kernel from :mod:`repro.knn.distance`.

    Returns
    -------
    (indices, distances):
        ``indices`` has shape ``(q, n)``: row ``j`` lists training
        indices from nearest to farthest from query ``j``.
        ``distances`` is the matching sorted distance matrix.
        Ties are broken by index (stable sort) so results are
        deterministic.
    """
    dist = get_metric(metric)(queries, data)
    order = np.argsort(dist, axis=1, kind="stable")
    sorted_dist = np.take_along_axis(dist, order, axis=1)
    return order, sorted_dist


def top_k(
    queries: np.ndarray,
    data: np.ndarray,
    k: int,
    metric: str = "euclidean",
) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``k`` nearest data points for each query.

    Uses ``argpartition`` followed by a sort of the selected slice, so
    the cost is O(n + k log k) per query instead of O(n log n).  Ties
    are broken by index, including at the selection boundary, so the
    result always equals the first ``k`` columns of
    :func:`argsort_by_distance`.

    Returns
    -------
    (indices, distances):
        Both of shape ``(q, min(k, n))``, ordered nearest-first.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    data = np.atleast_2d(data)
    n = data.shape[0]
    k_eff = min(k, n)
    dist = get_metric(metric)(queries, data)
    if k_eff == n:
        idx = np.argsort(dist, axis=1, kind="stable")
    else:
        # argpartition alone is not deterministic: points tied at the
        # k-th distance may be included or excluded arbitrarily.  Take
        # everything strictly below the k-th smallest distance, then
        # fill the remaining slots with the lowest-indexed tied points,
        # so the selection matches a stable full sort exactly.
        kth = np.partition(dist, k_eff - 1, axis=1)[:, k_eff - 1 : k_eff]
        below = dist < kth
        need = k_eff - below.sum(axis=1, keepdims=True)
        at_kth = dist == kth
        take = below | (at_kth & (np.cumsum(at_kth, axis=1) <= need))
        # each row has exactly k_eff True entries, in ascending index
        # order, so stable-sorting by distance breaks ties by index
        idx = np.nonzero(take)[1].reshape(dist.shape[0], k_eff)
        sel_dist = np.take_along_axis(dist, idx, axis=1)
        inner = np.argsort(sel_dist, axis=1, kind="stable")
        idx = np.take_along_axis(idx, inner, axis=1)
    return idx, np.take_along_axis(dist, idx, axis=1)


class KNNSearchIndex:
    """A tiny exact search index over a fixed data matrix.

    The index pre-computes data norms so repeated queries avoid
    recomputing ``||x_i||^2``.  It intentionally mirrors the query
    interface of :class:`repro.lsh.tables.LSHIndex` so valuation code
    can swap exact search for approximate search.
    """

    def __init__(self, data: np.ndarray, metric: str = "euclidean") -> None:
        self._data = np.ascontiguousarray(np.atleast_2d(data), dtype=np.float64)
        if self._data.shape[0] == 0:
            raise ParameterError("search index requires at least one point")
        self._metric = metric
        get_metric(metric)  # validate eagerly

    @property
    def n(self) -> int:
        """Number of indexed points."""
        return int(self._data.shape[0])

    @property
    def metric(self) -> str:
        """Distance metric name."""
        return self._metric

    def query(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-``k`` search; see :func:`top_k`."""
        return top_k(queries, self._data, k, metric=self._metric)

    def query_all(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Full ascending ranking; see :func:`argsort_by_distance`."""
        return argsort_by_distance(queries, self._data, metric=self._metric)
