"""KNN regressors (unweighted and weighted), built from scratch.

The unweighted regressor's prediction ``(1/K) * sum_k y_{alpha_k}`` is
the estimate whose negative squared error defines the regression
utility of eq (25); the weighted prediction
``sum_k w_k * y_{alpha_k}`` defines eq (27).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import NotFittedError, ParameterError
from ..types import as_float_matrix, as_label_vector
from .search import top_k
from .weights import WeightFunction, get_weight_function, uniform_weights

__all__ = ["KNNRegressor"]


class KNNRegressor:
    """A K-nearest-neighbor regressor.

    Parameters mirror :class:`repro.knn.classifier.KNNClassifier`; the
    target vector is float-valued.
    """

    def __init__(
        self,
        k: int = 1,
        metric: str = "euclidean",
        weights: Optional[str | WeightFunction] = None,
    ) -> None:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        self.k = int(k)
        self.metric = metric
        if weights is None:
            self._weight_fn: WeightFunction = uniform_weights
            self.weights_name = "uniform"
        elif callable(weights):
            self._weight_fn = weights
            self.weights_name = getattr(weights, "__name__", "custom")
        else:
            self._weight_fn = get_weight_function(weights)
            self.weights_name = weights
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        """Store the training set."""
        x = as_float_matrix(x, "x")
        y = np.asarray(y, dtype=np.float64)
        y = as_label_vector(y, x.shape[0], "y")
        self._x = x
        self._y = y
        return self

    def _require_fitted(self) -> tuple[np.ndarray, np.ndarray]:
        if self._x is None or self._y is None:
            raise NotFittedError("KNNRegressor.fit must be called first")
        return self._x, self._y

    def kneighbors(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Indices and distances of the K nearest training points."""
        x, _ = self._require_fitted()
        return top_k(queries, x, self.k, metric=self.metric)

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Weighted neighbor-label average for each query."""
        x, y = self._require_fitted()
        queries = as_float_matrix(queries, "queries")
        idx, dist = top_k(queries, x, self.k, metric=self.metric)
        out = np.empty(queries.shape[0])
        for row in range(queries.shape[0]):
            w = self._weight_fn(dist[row])
            out[row] = float(np.dot(w, y[idx[row]]))
        return out

    def mse(self, queries: np.ndarray, targets: np.ndarray) -> float:
        """Mean squared prediction error on ``(queries, targets)``."""
        pred = self.predict(queries)
        targets = np.asarray(targets, dtype=np.float64)
        targets = as_label_vector(targets, pred.shape[0], "targets")
        return float(np.mean((pred - targets) ** 2))

    def score(self, queries: np.ndarray, targets: np.ndarray) -> float:
        """Negative MSE — the utility convention of eq (25)."""
        return -self.mse(queries, targets)
