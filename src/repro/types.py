"""Core datatypes shared across the :mod:`repro` library.

The library passes data around in three shapes:

* :class:`Dataset` — a labelled training set plus a labelled test set,
  the object every valuation algorithm consumes;
* :class:`GroupedDataset` — a dataset whose training points carry an
  ownership map from points to sellers (the "multiple data per curator"
  setting of Section 4 of the paper);
* :class:`ValuationResult` — the output of a valuation run: one Shapley
  value per training point (or per seller), plus provenance metadata.

All arrays are numpy arrays.  Constructors validate shapes eagerly so
that failures surface at the boundary instead of deep inside an
algorithm.

Dtype contract
--------------
The library normalizes array dtypes at its boundaries so the numeric
core never has to defend against surprises:

* **Features** (``x_train``, ``x_test``, mutation batches) are
  C-contiguous float64 ``(n, d)`` matrices — :func:`as_float_matrix`
  and :func:`as_new_points` enforce this on every entry path.
* **Labels** stay in their native dtype (integers for classification,
  float for regression); algorithms cast locally where arithmetic
  demands it.
* **Valuation outputs** — every ``ValuationResult.values`` vector and
  every per-test value matrix produced by a kernel in
  :mod:`repro.core.kernels` — are C-contiguous float64;
  :func:`as_value_matrix` is the single chokepoint kernels route their
  ``(n_test, n_train)`` outputs through, so downstream consumers
  (engine partial-sum merging, caching, serialization) can rely on the
  layout without re-checking.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from .exceptions import DataValidationError, ParameterError

__all__ = [
    "Dataset",
    "GroupedDataset",
    "ValuationResult",
    "as_float_matrix",
    "as_label_vector",
    "as_new_points",
    "as_value_matrix",
]


def as_float_matrix(x: Any, name: str = "X") -> np.ndarray:
    """Coerce ``x`` to a 2-D float64 matrix, validating finiteness.

    Parameters
    ----------
    x:
        Array-like of shape ``(n, d)``.  A 1-D array is treated as a
        single feature column of shape ``(n, 1)``.
    name:
        Name used in error messages.

    Returns
    -------
    numpy.ndarray
        A C-contiguous float64 array of shape ``(n, d)``.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise DataValidationError(
            f"{name} must be a 2-D matrix, got ndim={arr.ndim}"
        )
    if arr.size and not np.all(np.isfinite(arr)):
        raise DataValidationError(f"{name} contains non-finite values")
    return np.ascontiguousarray(arr)


def as_label_vector(y: Any, n: int, name: str = "y") -> np.ndarray:
    """Coerce ``y`` to a 1-D label vector of length ``n``.

    Labels may be integers (classification) or floats (regression); the
    dtype is preserved as far as numpy allows.
    """
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise DataValidationError(f"{name} must be 1-D, got ndim={arr.ndim}")
    if arr.shape[0] != n:
        raise DataValidationError(
            f"{name} has length {arr.shape[0]}, expected {n}"
        )
    if arr.dtype.kind == "f" and arr.size and not np.all(np.isfinite(arr)):
        raise DataValidationError(f"{name} contains non-finite values")
    return arr


def as_new_points(
    x_new: Any, y_new: Any, n_features: int
) -> tuple[np.ndarray, np.ndarray]:
    """Coerce one mutation batch: points joining a training set.

    The shared front door of every dynamic-dataset ``add_points``
    (engine, incremental valuator, streaming accumulator): a single
    1-D vector is one *point* (not one feature column), labels may be
    scalar for a single point, and the feature width must match the
    set being joined.

    Returns ``(x_new, y_new)`` with ``x_new`` a C-contiguous float64
    ``(m, n_features)`` matrix and ``y_new`` a length-``m`` label
    vector.
    """
    x_arr = np.asarray(x_new, dtype=np.float64)
    if x_arr.ndim == 1:
        x_arr = x_arr.reshape(1, -1)
    x_arr = as_float_matrix(x_arr, "x_new")
    y_arr = as_label_vector(
        np.atleast_1d(np.asarray(y_new)), x_arr.shape[0], "y_new"
    )
    if x_arr.shape[1] != n_features:
        raise ParameterError(
            f"new points have {x_arr.shape[1]} features, expected {n_features}"
        )
    return x_arr, y_arr


def as_value_matrix(values: Any, name: str = "values") -> np.ndarray:
    """Enforce the kernel output contract: C-contiguous float64 2-D.

    Every :class:`repro.core.kernels.ValuationKernel` routes its
    ``(n_test, n_train)`` per-test value matrix through this function
    before returning, so the contract documented in the module
    docstring holds at a single chokepoint.  Arrays that already
    satisfy it pass through without copying.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise DataValidationError(
            f"{name} must be a 2-D per-test matrix, got ndim={arr.ndim}"
        )
    return arr


@dataclass(frozen=True)
class Dataset:
    """A labelled training set together with a labelled test set.

    Attributes
    ----------
    x_train:
        Training features, shape ``(n_train, d)``.
    y_train:
        Training labels, shape ``(n_train,)``.  Integer labels for
        classification, float labels for regression.
    x_test:
        Test (query) features, shape ``(n_test, d)``.
    y_test:
        Test labels, shape ``(n_test,)``.
    name:
        Optional human-readable dataset name (used in reports).
    """

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        x_train = as_float_matrix(self.x_train, "x_train")
        x_test = as_float_matrix(self.x_test, "x_test")
        y_train = as_label_vector(self.y_train, x_train.shape[0], "y_train")
        y_test = as_label_vector(self.y_test, x_test.shape[0], "y_test")
        if x_train.shape[0] == 0:
            raise DataValidationError("x_train must contain at least one row")
        if x_test.shape[0] == 0:
            raise DataValidationError("x_test must contain at least one row")
        if x_train.shape[1] != x_test.shape[1]:
            raise DataValidationError(
                "x_train and x_test disagree on feature dimension: "
                f"{x_train.shape[1]} != {x_test.shape[1]}"
            )
        # dataclass is frozen; bypass the guard for normalization.
        object.__setattr__(self, "x_train", x_train)
        object.__setattr__(self, "y_train", y_train)
        object.__setattr__(self, "x_test", x_test)
        object.__setattr__(self, "y_test", y_test)

    @property
    def n_train(self) -> int:
        """Number of training points."""
        return int(self.x_train.shape[0])

    @property
    def n_test(self) -> int:
        """Number of test points."""
        return int(self.x_test.shape[0])

    @property
    def n_features(self) -> int:
        """Feature dimensionality."""
        return int(self.x_train.shape[1])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return a new :class:`Dataset` restricted to training ``indices``."""
        idx = np.asarray(indices, dtype=np.intp)
        return Dataset(
            x_train=self.x_train[idx],
            y_train=self.y_train[idx],
            x_test=self.x_test,
            y_test=self.y_test,
            name=self.name,
        )

    def single_test(self, j: int) -> "Dataset":
        """Return a copy of the dataset keeping only test point ``j``."""
        if not 0 <= j < self.n_test:
            raise DataValidationError(
                f"test index {j} out of range [0, {self.n_test})"
            )
        return Dataset(
            x_train=self.x_train,
            y_train=self.y_train,
            x_test=self.x_test[j : j + 1],
            y_test=self.y_test[j : j + 1],
            name=self.name,
        )


@dataclass(frozen=True)
class GroupedDataset:
    """A :class:`Dataset` whose training points belong to sellers.

    ``groups[i]`` is the integer id of the seller who contributed
    training point ``i``.  Seller ids must form a contiguous range
    ``0 .. n_sellers - 1`` (every seller owns at least one point).
    """

    dataset: Dataset
    groups: np.ndarray

    def __post_init__(self) -> None:
        groups = np.asarray(self.groups, dtype=np.intp)
        if groups.ndim != 1:
            raise DataValidationError("groups must be 1-D")
        if groups.shape[0] != self.dataset.n_train:
            raise DataValidationError(
                f"groups has length {groups.shape[0]}, expected "
                f"{self.dataset.n_train}"
            )
        if groups.size == 0:
            raise DataValidationError("groups must be non-empty")
        uniq = np.unique(groups)
        if uniq[0] != 0 or uniq[-1] != uniq.size - 1:
            raise DataValidationError(
                "seller ids must form a contiguous range 0..M-1; got "
                f"{uniq.tolist()[:10]}..."
            )
        object.__setattr__(self, "groups", groups)

    @property
    def n_sellers(self) -> int:
        """Number of distinct sellers."""
        return int(self.groups.max()) + 1

    def members(self, seller: int) -> np.ndarray:
        """Indices of the training points owned by ``seller``."""
        return np.flatnonzero(self.groups == seller)


@dataclass(frozen=True)
class ValuationResult:
    """The output of one valuation run.

    Attributes
    ----------
    values:
        Shapley values, one entry per training point (or per seller for
        grouped valuation, or per player for composite games).
    method:
        Identifier of the producing algorithm (``"exact"``,
        ``"truncated"``, ``"lsh"``, ``"mc-hoeffding"``, ``"mc-bennett"``,
        ``"brute-subsets"``, ...).
    extra:
        Free-form provenance: parameters, permutation counts, timings.
    """

    values: np.ndarray
    method: str
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1:
            raise DataValidationError("values must be 1-D")
        object.__setattr__(self, "values", values)

    @property
    def n(self) -> int:
        """Number of valued players."""
        return int(self.values.shape[0])

    def total(self) -> float:
        """Sum of all values (equals ν(I) − ν(∅) under group rationality)."""
        return float(self.values.sum())

    def ranking(self) -> np.ndarray:
        """Indices of players sorted by decreasing value."""
        return np.argsort(-self.values, kind="stable")

    def top(self, k: int) -> np.ndarray:
        """Indices of the ``k`` highest-valued players."""
        return self.ranking()[:k]

    def with_extra(self, **kwargs: Any) -> "ValuationResult":
        """Return a copy with additional provenance entries merged in."""
        merged = dict(self.extra)
        merged.update(kwargs)
        return dataclasses.replace(self, extra=merged)
