"""Inspect a JSONL span log: ``python -m repro.monitor.dump trace.jsonl``.

The reading side of :class:`repro.monitor.tracing.TraceLog`: parses a
JSONL file of flat span records, regroups them into traces, and
renders each trace as an indented tree with durations and attributes —
the operator's answer to *where did this request's time go?* without
attaching a debugger to the service.

Usage::

    python -m repro.monitor.dump trace.jsonl                 # all traces
    python -m repro.monitor.dump trace.jsonl --last 3        # newest 3
    python -m repro.monitor.dump trace.jsonl --trace-id <id> # one trace
    python -m repro.monitor.dump trace.jsonl --summary       # per-name stats
    python -m repro.monitor.dump trace.jsonl --since 5m      # recent spans

``--since`` prunes by span start time before any grouping — either an
absolute unix epoch (``--since 1754650000``) or an age relative to the
newest span in the log (``--since 30s`` / ``5m`` / ``2h``) — so one
request's tree can be pulled out of a span log that has accumulated
days of traffic.

The functions are importable (:func:`load_spans`,
:func:`format_trace`, :func:`summarize`) so tests and tooling can
drive the same rendering without a subprocess.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, Optional

__all__ = [
    "load_spans",
    "group_traces",
    "format_trace",
    "summarize",
    "since_cutoff",
    "main",
]

_SINCE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0}


def since_cutoff(text: str, newest_ts: float) -> float:
    """Resolve a ``--since`` value to an absolute epoch-seconds cutoff.

    A plain number is an absolute unix timestamp; a number suffixed
    ``s``/``m``/``h`` is an age measured back from ``newest_ts`` (the
    newest span in the log, so a cold log read does not depend on the
    reader's clock).
    """
    text = text.strip()
    unit = _SINCE_UNITS.get(text[-1:].lower())
    try:
        if unit is not None:
            return newest_ts - float(text[:-1]) * unit
        return float(text)
    except ValueError:
        raise ValueError(
            f"--since must be an epoch timestamp or '<N>s/m/h', got {text!r}"
        ) from None


def load_spans(path: str) -> list[dict]:
    """Parse one span record per JSONL line (blank lines skipped)."""
    spans: list[dict] = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not valid JSON: {exc}") from exc
    return spans


def group_traces(spans: Iterable[dict]) -> dict[str, list[dict]]:
    """Spans grouped by ``trace_id``, traces in first-seen order."""
    traces: dict[str, list[dict]] = {}
    for span in spans:
        traces.setdefault(span["trace_id"], []).append(span)
    return traces


def _format_attributes(attributes: dict) -> str:
    if not attributes:
        return ""
    parts = []
    for key, value in attributes.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return " " + " ".join(parts)


def format_trace(trace_id: str, spans: list[dict]) -> str:
    """Render one trace as an indented span tree.

    Spans whose parent is outside this trace's record set (e.g. a
    client-side span that never finished into the same log) render as
    roots.  Children print in start order.
    """
    by_id = {s["span_id"]: s for s in spans}
    children: dict[Optional[str], list[dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        key = parent if parent in by_id else None
        children.setdefault(key, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.get("ts", 0.0))

    total = sum(s["seconds"] for s in children.get(None, []))
    lines = [f"trace {trace_id}  ({len(spans)} spans, {total * 1e3:.2f} ms)"]

    def walk(span: dict, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}- {span['name']}  {span['seconds'] * 1e3:.2f} ms"
            f"{_format_attributes(span.get('attributes', {}))}"
        )
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 1)
    return "\n".join(lines)


def summarize(spans: list[dict]) -> str:
    """Per-span-name occurrence counts and duration aggregates."""
    stats: dict[str, list[float]] = {}
    for span in spans:
        stats.setdefault(span["name"], []).append(float(span["seconds"]))
    lines = [f"{'span':<28} {'count':>6} {'total ms':>10} {'mean ms':>9} {'max ms':>9}"]
    for name in sorted(stats):
        durations = stats[name]
        total = sum(durations)
        lines.append(
            f"{name:<28} {len(durations):>6} {total * 1e3:>10.2f} "
            f"{total / len(durations) * 1e3:>9.3f} {max(durations) * 1e3:>9.3f}"
        )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.monitor.dump",
        description="Render a repro trace log (JSONL of span records).",
    )
    parser.add_argument("path", help="JSONL file written by TraceLog(path=...)")
    parser.add_argument(
        "--trace", "--trace-id", dest="trace", help="show only this trace id"
    )
    parser.add_argument(
        "--since",
        metavar="TS",
        help=(
            "only spans starting at/after TS: a unix epoch, or an age "
            "relative to the newest span ('30s', '5m', '2h')"
        ),
    )
    parser.add_argument(
        "--last", type=int, default=None, metavar="N", help="show only the newest N traces"
    )
    parser.add_argument(
        "--summary", action="store_true", help="aggregate by span name instead of per-trace trees"
    )
    args = parser.parse_args(argv)

    spans = load_spans(args.path)
    if spans and args.since is not None:
        newest = max(float(s.get("ts", 0.0)) for s in spans)
        try:
            cutoff = since_cutoff(args.since, newest)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        spans = [s for s in spans if float(s.get("ts", 0.0)) >= cutoff]
    if not spans:
        print("(no spans)")
        return 0
    if args.summary:
        print(summarize(spans))
        return 0
    traces = group_traces(spans)
    if args.trace is not None:
        if args.trace not in traces:
            print(f"trace {args.trace!r} not found among {len(traces)} traces", file=sys.stderr)
            return 1
        traces = {args.trace: traces[args.trace]}
    ids = list(traces)
    if args.last is not None:
        ids = ids[-args.last:]
    for i, trace_id in enumerate(ids):
        if i:
            print()
        print(format_trace(trace_id, traces[trace_id]))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    raise SystemExit(main())
