"""Declarative SLOs, error budgets, and multi-window burn-rate alerts.

The ROADMAP's "latency-SLO serving" frontier needs the serving stack
to *know* whether it is meeting its objectives before anything can
adapt to protect them.  This module is that knowledge: a
:class:`SLOTracker` turns the :class:`~repro.monitor.telemetry.
TelemetryHub`'s cumulative histograms and counters into SRE-style
service-level objectives with error budgets and burn rates.

An objective is declarative, one line per stream::

    tracker.add("job latency", "service.compute_seconds p99 < 50ms")
    tracker.add("availability", "service.jobs_failed / service.jobs < 1%")

The latency form reads as *"at least 99% of observations stay at or
under 50 ms"* — the percentile is the target, the bound is the
threshold — and is evaluated against the stream's all-time histogram,
so no samples are retained.  The error form is a bad-over-total
counter ratio.  Both reduce to the same cumulative ``(good, total)``
pair, which is all the burn-rate algebra needs.

**Burn rate** is budget spend speed: with a target of 99%, the error
budget is 1% of events, and a burn rate of ``x`` means bad events are
arriving ``x`` times faster than the budget admits (1.0 = the budget
lasts exactly its period; 14.4 = a 30-day budget gone in 50 hours).
Because the hub's histograms are cumulative, the tracker samples
``(good, total)`` on every :meth:`~SLOTracker.tick` and differences
the ring of samples to answer *windowed* rates — the standard
multi-window rule (default: fire when **both** the 5-minute and
1-hour burn exceed 14.4× — fast enough to page — resolve when the
short window recovers) without ever holding raw events.

The tracker is passive and clock-injectable: nothing fires unless
:meth:`~SLOTracker.evaluate` is called (the
:class:`~repro.monitor.alerts.AlertManager` and the observability
server's ``/slo`` endpoint do), and tests drive the 5m/1h windows with
a fake clock instead of sleeping.
"""

from __future__ import annotations

import bisect
import re
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..exceptions import ParameterError
from ..stats import component_stats

__all__ = [
    "BurnPolicy",
    "DEFAULT_BURN_POLICIES",
    "ErrorRateObjective",
    "LatencyObjective",
    "SLOTracker",
    "parse_objective",
]

_UNIT_SECONDS = {"us": 1e-6, "µs": 1e-6, "ms": 1e-3, "s": 1.0}

_LATENCY_SPEC = re.compile(
    r"^\s*(?P<stream>\S+)\s+p(?P<pct>\d+(?:\.\d+)?)\s*<\s*"
    r"(?P<value>\d+(?:\.\d+)?)\s*(?P<unit>us|µs|ms|s)\s*$"
)
_ERROR_SPEC = re.compile(
    r"^\s*(?P<bad>\S+)\s*/\s*(?P<total>\S+)\s*<\s*"
    r"(?P<value>\d+(?:\.\d+)?)\s*%\s*$"
)


@dataclass(frozen=True)
class BurnPolicy:
    """One multi-window burn-rate alert rule.

    Fires when the burn rate over *both* windows is at least
    ``factor`` — the long window proves the spend is sustained, the
    short window proves it is still happening (and lets the alert
    resolve quickly once the bleeding stops).  The defaults are the
    SRE-workbook pairings: 14.4× over 5m/1h pages, 6× over 30m/6h
    warns.
    """

    short_window: float = 300.0
    long_window: float = 3600.0
    factor: float = 14.4
    severity: str = "critical"

    def __post_init__(self) -> None:
        if not 0 < self.short_window <= self.long_window:
            raise ParameterError(
                f"need 0 < short_window <= long_window, got "
                f"{self.short_window} / {self.long_window}"
            )
        if self.factor <= 0:
            raise ParameterError(f"factor must be positive, got {self.factor}")

    @property
    def name(self) -> str:
        return f"burn{self.factor:g}x_{self.short_window:g}s_{self.long_window:g}s"


DEFAULT_BURN_POLICIES: tuple[BurnPolicy, ...] = (
    BurnPolicy(300.0, 3600.0, 14.4, "critical"),
    BurnPolicy(1800.0, 21600.0, 6.0, "warn"),
)


class LatencyObjective:
    """``stream pNN < bound``: at least NN% of observations ≤ bound.

    Good/total counts come from the stream's all-time
    :class:`~repro.monitor.telemetry.Histogram`: observations at or
    below ``threshold`` are good, with linear interpolation inside the
    bucket containing the threshold (the same one-bucket tolerance the
    histogram's percentiles carry).
    """

    kind = "latency"

    def __init__(self, stream: str, threshold: float, target: float) -> None:
        if threshold <= 0:
            raise ParameterError(f"threshold must be positive, got {threshold}")
        if not 0.0 < target < 1.0:
            raise ParameterError(f"target must lie in (0, 1), got {target}")
        self.stream = str(stream)
        self.threshold = float(threshold)
        self.target = float(target)

    def cumulative(self, hub) -> tuple[float, float]:
        """All-time ``(good, total)`` event counts from the hub."""
        hist = hub.histogram(self.stream)
        if hist is None:
            return 0.0, 0.0
        counts = hist.counts.copy()
        bounds = hist.bounds
        total = float(counts.sum())
        if total == 0.0:
            return 0.0, 0.0
        b = int(np.searchsorted(bounds, self.threshold, side="left"))
        good = float(counts[:b].sum())
        if b < counts.size:
            lo = 0.0 if b == 0 else float(bounds[b - 1])
            hi = float(bounds[b]) if b < bounds.size else max(lo, self.threshold)
            frac = 1.0 if hi <= lo else min(1.0, (self.threshold - lo) / (hi - lo))
            good += frac * float(counts[b])
        return good, total

    def describe(self) -> str:
        pct = self.target * 100.0
        return f"{self.stream} p{pct:g} < {self.threshold * 1e3:g}ms"


class ErrorRateObjective:
    """``bad / total < p%``: the failure-counter ratio stays under p%."""

    kind = "error"

    def __init__(self, bad_counter: str, total_counter: str, target: float) -> None:
        if not 0.0 < target < 1.0:
            raise ParameterError(f"target must lie in (0, 1), got {target}")
        self.bad_counter = str(bad_counter)
        self.total_counter = str(total_counter)
        self.target = float(target)
        self.stream = self.total_counter

    def cumulative(self, hub) -> tuple[float, float]:
        total = float(hub.counter(self.total_counter))
        bad = min(float(hub.counter(self.bad_counter)), total)
        return total - bad, total

    def describe(self) -> str:
        budget = (1.0 - self.target) * 100.0
        return f"{self.bad_counter} / {self.total_counter} < {budget:g}%"


Objective = Union[LatencyObjective, ErrorRateObjective]


def parse_objective(spec: str) -> Objective:
    """Parse one declarative objective line.

    Two grammars::

        <stream> p<NN> < <bound><unit>     unit ∈ {us, ms, s}
        <bad_counter> / <total_counter> < <NN>%
    """
    m = _LATENCY_SPEC.match(spec)
    if m:
        return LatencyObjective(
            stream=m.group("stream"),
            threshold=float(m.group("value")) * _UNIT_SECONDS[m.group("unit")],
            target=float(m.group("pct")) / 100.0,
        )
    m = _ERROR_SPEC.match(spec)
    if m:
        return ErrorRateObjective(
            bad_counter=m.group("bad"),
            total_counter=m.group("total"),
            target=1.0 - float(m.group("value")) / 100.0,
        )
    raise ParameterError(
        f"cannot parse SLO spec {spec!r}; expected "
        "'<stream> pNN < 50ms' or '<bad> / <total> < 1%'"
    )


class _SloState:
    """Per-objective sample ring and per-policy firing state."""

    __slots__ = ("objective", "times", "good", "total", "firing", "since")

    def __init__(self, objective: Objective, maxlen: int) -> None:
        self.objective = objective
        self.times: deque[float] = deque(maxlen=maxlen)
        self.good: deque[float] = deque(maxlen=maxlen)
        self.total: deque[float] = deque(maxlen=maxlen)
        #: policy name -> firing bool / since timestamp
        self.firing: dict[str, bool] = {}
        self.since: dict[str, float] = {}

    def append(self, t: float, good: float, total: float) -> None:
        # monotone guard: a histogram evicted and recreated under the
        # same name restarts its cumulative counts; restart the ring
        # rather than reporting negative deltas
        if self.total and total < self.total[-1]:
            self.times.clear()
            self.good.clear()
            self.total.clear()
        self.times.append(t)
        self.good.append(good)
        self.total.append(total)

    def window_delta(self, now: float, window: float) -> tuple[float, float]:
        """``(bad, total)`` events inside the trailing ``window`` seconds.

        Differences the newest sample against the newest sample taken
        at or before ``now - window``; until the ring covers a full
        window, the oldest sample serves as the baseline (the window
        covers the whole observed history).
        """
        if not self.times:
            return 0.0, 0.0
        times = list(self.times)
        i = bisect.bisect_right(times, now - window) - 1
        if i < 0:
            i = 0
        d_total = self.total[-1] - self.total[i]
        d_good = self.good[-1] - self.good[i]
        d_bad = max(0.0, d_total - d_good)
        return d_bad, max(0.0, d_total)


class SLOTracker:
    """Error-budget accounting and burn-rate alerts over hub streams.

    Parameters
    ----------
    hub:
        The :class:`~repro.monitor.telemetry.TelemetryHub` (or a
        labeled view) whose histograms/counters back the objectives.
    policies:
        The :class:`BurnPolicy` battery every objective is evaluated
        against (default: page at 14.4× over 5m/1h, warn at 6× over
        30m/6h).
    clock:
        Monotonic-seconds source; injectable so tests can traverse
        hour-long windows without sleeping.
    max_samples:
        Ring length of retained ``(t, good, total)`` samples per
        objective — at one :meth:`tick` per scrape the default covers
        the longest default window with margin.
    """

    def __init__(
        self,
        hub,
        policies: Sequence[BurnPolicy] = DEFAULT_BURN_POLICIES,
        clock: Callable[[], float] = time.monotonic,
        max_samples: int = 4096,
    ) -> None:
        if max_samples < 2:
            raise ParameterError(
                f"max_samples must be at least 2, got {max_samples}"
            )
        self.hub = hub
        self.policies = tuple(policies)
        if not self.policies:
            raise ParameterError("need at least one BurnPolicy")
        self.clock = clock
        self.max_samples = int(max_samples)
        self._lock = threading.Lock()
        self._states: dict[str, _SloState] = {}
        self._transitions = 0
        self._evaluations = 0

    # ------------------------------------------------------------------
    def add(self, name: str, objective: Union[str, Objective]) -> Objective:
        """Register one named objective (declarative string or object)."""
        if isinstance(objective, str):
            objective = parse_objective(objective)
        with self._lock:
            if name in self._states:
                raise ParameterError(f"SLO {name!r} already registered")
            self._states[name] = _SloState(objective, self.max_samples)
        return objective

    @property
    def names(self) -> list[str]:
        with self._lock:
            return list(self._states)

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Sample every objective's cumulative ``(good, total)`` pair."""
        now = self.clock()
        with self._lock:
            states = list(self._states.values())
        for state in states:
            good, total = state.objective.cumulative(self.hub)
            with self._lock:
                state.append(now, good, total)

    def _burn(self, state: _SloState, now: float, window: float) -> float:
        budget = 1.0 - state.objective.target
        bad, total = state.window_delta(now, window)
        if total <= 0.0:
            return 0.0
        return (bad / total) / budget

    def burn_rate(self, name: str, window: Optional[float] = None) -> float:
        """Current burn rate of ``name`` over ``window`` seconds.

        Uses a live cumulative reading against the sample ring (no
        sample is stored), so planners can ask between ticks.  Default
        window: the shortest policy's short window.
        """
        with self._lock:
            state = self._states.get(name)
        if state is None:
            raise ParameterError(f"unknown SLO {name!r}")
        if window is None:
            window = min(p.short_window for p in self.policies)
        now = self.clock()
        good, total = state.objective.cumulative(self.hub)
        with self._lock:
            state.append(now, good, total)
            return self._burn(state, now, float(window))

    def worst_burn(self, prefix: str = "") -> float:
        """Highest current short-window burn among matching objectives.

        ``prefix`` matches against the objective's stream name (e.g. a
        shard label: streams ``shard0.…`` match ``prefix="shard0"``),
        so a fleet planner can rank shards by budget spend.
        """
        with self._lock:
            names = [
                n
                for n, s in self._states.items()
                if not prefix
                or s.objective.stream == prefix
                or s.objective.stream.startswith(prefix + ".")
            ]
        burns = [self.burn_rate(n) for n in names]
        return max(burns, default=0.0)

    # ------------------------------------------------------------------
    def evaluate(self) -> list[dict]:
        """Tick, evaluate every policy, update firing state.

        Returns one status dict per objective (the ``/slo`` payload);
        newly fired / newly resolved policies are flagged in
        ``"transitions"`` so the alert layer can forward exactly the
        edges.
        """
        self.tick()
        now = self.clock()
        statuses: list[dict] = []
        with self._lock:
            self._evaluations += 1
            for name, state in self._states.items():
                obj = state.objective
                budget = 1.0 - obj.target
                good, total = (
                    (state.good[-1], state.total[-1])
                    if state.times
                    else (0.0, 0.0)
                )
                bad = max(0.0, total - good)
                # budget accounting over the tracked period (the ring):
                # consumed = observed bad fraction over the budget
                base_bad = max(0.0, state.total[0] - state.good[0]) if state.times else 0.0
                base_total = state.total[0] if state.times else 0.0
                period_total = max(0.0, total - base_total)
                period_bad = max(0.0, bad - base_bad)
                consumed = (
                    (period_bad / period_total) / budget if period_total else 0.0
                )
                windows: dict[str, dict] = {}
                transitions: list[dict] = []
                firing_any = False
                worst_severity: Optional[str] = None
                for policy in self.policies:
                    short = self._burn(state, now, policy.short_window)
                    long_ = self._burn(state, now, policy.long_window)
                    fires = short >= policy.factor and long_ >= policy.factor
                    was = state.firing.get(policy.name, False)
                    if fires and not was:
                        state.since[policy.name] = now
                        transitions.append(
                            {"policy": policy.name, "to": "firing"}
                        )
                        self._transitions += 1
                    elif was and not fires:
                        transitions.append(
                            {"policy": policy.name, "to": "resolved"}
                        )
                        self._transitions += 1
                    state.firing[policy.name] = fires
                    if fires:
                        firing_any = True
                        worst_severity = worst_severity or policy.severity
                    windows[policy.name] = {
                        "short_window": policy.short_window,
                        "long_window": policy.long_window,
                        "factor": policy.factor,
                        "severity": policy.severity,
                        "burn_short": short,
                        "burn_long": long_,
                        "firing": fires,
                        "since": state.since.get(policy.name),
                    }
                statuses.append(
                    {
                        "name": name,
                        "objective": obj.describe(),
                        "kind": obj.kind,
                        "stream": obj.stream,
                        "target": obj.target,
                        "total": total,
                        "good": good,
                        "bad": bad,
                        "attainment": (good / total) if total else None,
                        "budget": budget,
                        "budget_consumed": consumed,
                        "budget_remaining": 1.0 - consumed,
                        "windows": windows,
                        "firing": firing_any,
                        "severity": worst_severity,
                        "transitions": transitions,
                    }
                )
        return statuses

    def snapshot(self) -> dict:
        """JSON-clean evaluation result (the ``/slo`` endpoint body)."""
        return {
            "schema": 1,
            "policies": [
                {
                    "name": p.name,
                    "short_window": p.short_window,
                    "long_window": p.long_window,
                    "factor": p.factor,
                    "severity": p.severity,
                }
                for p in self.policies
            ],
            "slos": self.evaluate(),
        }

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Unified-schema snapshot of the tracker itself."""
        with self._lock:
            n_firing = sum(
                any(s.firing.values()) for s in self._states.values()
            )
            return component_stats(
                "slo_tracker",
                counters={
                    "evaluations": self._evaluations,
                    "transitions": self._transitions,
                },
                gauges={
                    "n_slos": len(self._states),
                    "n_policies": len(self.policies),
                    "n_firing": n_firing,
                },
            )
