"""Sampling profiler and span-based per-phase wall-time attribution.

Two complementary answers to *where does request time go?*:

* :class:`SamplingProfiler` — a daemon thread walks
  ``sys._current_frames()`` at a configurable rate (default 19 Hz,
  deliberately co-prime with common periodic work so a loop is not
  systematically sampled at the same phase), folds every thread's
  stack into ``outer;inner`` strings, and counts occurrences.  The
  output is the collapsed-stack format flamegraph tooling consumes
  verbatim (:meth:`~SamplingProfiler.collapsed`), plus a per-frame
  self/total table (:meth:`~SamplingProfiler.top`).  Cost is paid per
  *sample*, not per function call — at 19 Hz the serving path cannot
  see it (the ``ops_plane_overhead_margin`` gate holds the whole ops
  plane, profiler included, within 5%) — and the stack table is
  bounded with FIFO eviction like every other monitor structure.

* :func:`phase_attribution` — exact wall-time accounting from the
  tracer's span trees instead of statistical sampling: each span's
  *self* time (its duration minus its direct children's) is attributed
  to a phase by span-name prefix (facade → service → router → engine →
  chunk → kernel/backend).  Because self times of a sequential tree
  sum telescopically to the root's duration, the per-phase totals add
  up to the traced request's wall time — the acceptance bar holds
  them within 10% on a single-worker engine, where chunks cannot
  overlap.

The profiler never inspects its own sampling thread, tolerates
threads appearing/disappearing mid-walk, and drops no observations:
a sampling pass that overruns its period is counted (``overruns``)
rather than silently skewing the rate.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Iterable, Optional, Union

from ..exceptions import ParameterError
from ..stats import component_stats

__all__ = ["SamplingProfiler", "phase_attribution", "phase_of"]

#: Span-name prefix → phase, first match wins (most specific first).
_PHASE_PREFIXES = (
    ("facade.", "facade"),
    ("client.", "client"),
    ("service.", "service"),
    ("router.", "router"),
    ("shard.", "router"),
    ("engine.chunk", "chunk"),
    ("engine.", "engine"),
    ("kernel.", "kernel"),
    ("backend.", "backend"),
)


def phase_of(span_name: str) -> str:
    """Map one span name onto its serving phase (``"other"`` if none)."""
    for prefix, phase in _PHASE_PREFIXES:
        if span_name.startswith(prefix):
            return phase
    return "other"


def _flatten_tree(tree: dict, out: list[dict]) -> None:
    node = {k: v for k, v in tree.items() if k != "children"}
    out.append(node)
    for child in tree.get("children", ()):
        _flatten_tree(child, out)


def phase_attribution(spans: Union[Iterable[dict], dict]) -> dict:
    """Attribute span self-times to serving phases.

    Parameters
    ----------
    spans:
        Either flat span records (e.g. ``TraceLog.records()`` — linked
        by ``parent_id``) or one nested summary tree (e.g.
        ``result.extra["trace"]`` — linked by ``children``).

    Returns
    -------
    dict with ``total_seconds`` (sum of root span durations),
    ``span_count``, and ``phases`` mapping each phase to its summed
    self-time ``seconds`` and ``fraction`` of the total.  Self time is
    clamped at zero: children running on pool threads can overlap
    their parent, and a negative residual is an artifact of that
    concurrency, not a phase.
    """
    if isinstance(spans, dict):
        flat: list[dict] = []
        _flatten_tree(spans, flat)
    else:
        flat = list(spans)

    by_id = {s["span_id"]: s for s in flat if "span_id" in s}
    child_seconds: dict[Optional[str], float] = {}
    for span in flat:
        parent = span.get("parent_id")
        if parent in by_id:
            child_seconds[parent] = child_seconds.get(parent, 0.0) + float(
                span["seconds"]
            )

    phases: dict[str, float] = {}
    total = 0.0
    for span in flat:
        seconds = float(span["seconds"])
        if span.get("parent_id") not in by_id:
            total += seconds
        self_seconds = max(
            0.0, seconds - child_seconds.get(span.get("span_id"), 0.0)
        )
        phase = phase_of(str(span["name"]))
        phases[phase] = phases.get(phase, 0.0) + self_seconds

    return {
        "total_seconds": total,
        "span_count": len(flat),
        "phases": {
            phase: {
                "seconds": seconds,
                "fraction": (seconds / total) if total > 0 else 0.0,
            }
            for phase, seconds in sorted(
                phases.items(), key=lambda kv: -kv[1]
            )
        },
    }


class SamplingProfiler:
    """Low-overhead statistical profiler over ``sys._current_frames()``.

    Parameters
    ----------
    hz:
        Target sampling rate.  The default 19 Hz is cheap enough to
        leave on and co-prime with second-aligned periodic work.
    max_depth:
        Frames retained per stack, innermost outward; deeper stacks
        are truncated at the root end.
    max_stacks:
        Bound on distinct collapsed stacks; past it the
        oldest-registered stack is evicted FIFO (counted, like the
        hub's caps).
    include_idle:
        When ``False``, stacks whose innermost frame is a known idle
        primitive (``wait``/``select``/``poll``/…) are skipped, so a
        service's parked worker threads do not dominate the profile.

    Use ``start()``/``stop()``, or as a context manager.  Sampling is
    safe while arbitrary application threads run: the frame snapshot
    is atomic under the GIL, and the profiler's own thread is
    excluded.
    """

    _IDLE_FRAMES = frozenset(
        {"wait", "select", "poll", "accept", "_recv", "recv", "readinto"}
    )

    def __init__(
        self,
        hz: float = 19.0,
        max_depth: int = 48,
        max_stacks: int = 4096,
        include_idle: bool = True,
    ) -> None:
        if hz <= 0:
            raise ParameterError(f"hz must be positive, got {hz}")
        if max_depth <= 0:
            raise ParameterError(f"max_depth must be positive, got {max_depth}")
        if max_stacks <= 0:
            raise ParameterError(
                f"max_stacks must be positive, got {max_stacks}"
            )
        self.hz = float(hz)
        self.max_depth = int(max_depth)
        self.max_stacks = int(max_stacks)
        self.include_idle = bool(include_idle)
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, ...], int] = {}
        self._samples = 0
        self._thread_samples = 0
        self._overruns = 0
        self._evicted = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_monotonic: Optional[float] = None
        self._active_seconds = 0.0

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Start the sampling thread (idempotent); returns ``self``."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._started_monotonic = time.monotonic()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="sampling-profiler"
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Stop and join the sampling thread; counts are retained."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None
        if self._started_monotonic is not None:
            self._active_seconds += time.monotonic() - self._started_monotonic
            self._started_monotonic = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def reset(self) -> None:
        """Discard all accumulated samples (the profiler keeps running)."""
        with self._lock:
            self._counts.clear()
            self._samples = 0
            self._thread_samples = 0
            self._overruns = 0
            self._evicted = 0

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        period = 1.0 / self.hz
        own_ident = threading.get_ident()
        while not self._stop.wait(period):
            started = time.perf_counter()
            try:
                self.sample_once(exclude_ident=own_ident)
            except Exception:  # noqa: BLE001 - a sampling hiccup (e.g. a
                # frame freed mid-walk) must never kill the profiler
                pass
            if time.perf_counter() - started > period:
                with self._lock:
                    self._overruns += 1

    def sample_once(self, exclude_ident: Optional[int] = None) -> int:
        """Take one sample of every live thread; returns stacks recorded."""
        frames = sys._current_frames()
        recorded = 0
        for ident, frame in frames.items():
            if ident == exclude_ident:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                stack.append(
                    f"{os.path.basename(code.co_filename)}:{code.co_name}"
                )
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            # innermost-first while walking; collapsed format is
            # root-first
            leaf = stack[0].rsplit(":", 1)[-1]
            if not self.include_idle and leaf in self._IDLE_FRAMES:
                continue
            key = tuple(reversed(stack))
            with self._lock:
                self._counts[key] = self._counts.get(key, 0) + 1
                while len(self._counts) > self.max_stacks:
                    self._counts.pop(next(iter(self._counts)))
                    self._evicted += 1
                self._thread_samples += 1
            recorded += 1
        with self._lock:
            self._samples += 1
        return recorded

    # ------------------------------------------------------------------
    def collapsed(self, min_count: int = 1) -> str:
        """Collapsed-stack text (``outer;inner count`` per line).

        The exact input ``flamegraph.pl`` / speedscope take; lines are
        sorted by count, heaviest first.
        """
        with self._lock:
            items = [
                (stack, n)
                for stack, n in self._counts.items()
                if n >= min_count
            ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{';'.join(stack)} {n}" for stack, n in items)

    def top(self, n: int = 10) -> list[dict]:
        """Per-frame ``self``/``total`` sample counts, heaviest first."""
        with self._lock:
            items = list(self._counts.items())
        self_counts: dict[str, int] = {}
        total_counts: dict[str, int] = {}
        for stack, count in items:
            self_counts[stack[-1]] = self_counts.get(stack[-1], 0) + count
            for frame in set(stack):
                total_counts[frame] = total_counts.get(frame, 0) + count
        ranked = sorted(
            total_counts,
            key=lambda f: (-total_counts[f], -self_counts.get(f, 0), f),
        )
        return [
            {
                "frame": frame,
                "self": self_counts.get(frame, 0),
                "total": total_counts[frame],
            }
            for frame in ranked[: int(n)]
        ]

    def snapshot(self, top: int = 25) -> dict:
        """JSON-clean state (the ``/profile?format=json`` body)."""
        with self._lock:
            samples = self._samples
            thread_samples = self._thread_samples
            overruns = self._overruns
            evicted = self._evicted
            n_stacks = len(self._counts)
        active = self._active_seconds
        if self._started_monotonic is not None:
            active += time.monotonic() - self._started_monotonic
        return {
            "schema": 1,
            "hz": self.hz,
            "running": self.running,
            "samples": samples,
            "thread_samples": thread_samples,
            "distinct_stacks": n_stacks,
            "overruns": overruns,
            "evicted_stacks": evicted,
            "active_seconds": active,
            "top": self.top(top),
        }

    def stats(self) -> dict:
        """Unified-schema snapshot of the profiler."""
        with self._lock:
            counters = {
                "samples": self._samples,
                "thread_samples": self._thread_samples,
                "overruns": self._overruns,
                "evicted_stacks": self._evicted,
            }
            n_stacks = len(self._counts)
        return component_stats(
            "sampling_profiler",
            counters=counters,
            gauges={
                "hz": self.hz,
                "running": int(self.running),
                "distinct_stacks": n_stacks,
                "max_depth": self.max_depth,
                "max_stacks": self.max_stacks,
            },
        )
