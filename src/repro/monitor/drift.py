"""Drift detectors over the telemetry streams.

The paper's fast paths are only fast while their tuning describes the
data: the LSH parameters (width, code length, table count — Section
6.1 / Theorem 3) are derived from a one-shot relative-contrast
estimate, and churn (:meth:`~repro.engine.ValuationEngine.add_points` /
``remove_points``) slowly walks the live distribution away from that
snapshot without the index ever noticing.  Each detector here reads
the :class:`~repro.monitor.telemetry.TelemetryHub` streams (and the
backend's public monitoring surface) and answers one question — *has a
specific tuning assumption stopped holding?* — as zero or more typed
:class:`DriftSignal` s:

=========================== ======================================== =========
detector                    watches                                  action
=========================== ======================================== =========
:class:`SizeDriftDetector`  alive / internal count vs tuned ``n``    refit
:class:`TombstoneDetector`  tombstoned fraction of the index rows    compact
:class:`ContrastDriftDetector` fresh contrast + D_mean vs the tuned  retune
                            estimate (query-reservoir re-estimation)
:class:`CandidateDriftDetector` candidate-set-size window vs the     retune
                            post-build baseline
:class:`RecallProxyDetector` brute-force spot-check recall on a      retune
                            reservoir sample
=========================== ======================================== =========

Detectors are cheap by construction — the expensive ones (contrast
re-estimation, recall spot checks) run over bounded reservoir samples,
and all of them are meant to be called at maintenance cadence (the
:class:`~repro.monitor.maintenance.MaintenanceScheduler` interval),
not per request.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..engine.backends import LSHNeighborBackend
from ..exceptions import ParameterError
from ..knn.search import top_k
from ..lsh.contrast import (
    ContrastEstimate,
    contrast_drift,
    estimate_relative_contrast,
)
from ..lsh.tuning import retune_lsh
from ..rng import SeedLike, ensure_rng
from .telemetry import TelemetryHub

__all__ = [
    "DriftSignal",
    "DriftDetector",
    "SizeDriftDetector",
    "TombstoneDetector",
    "ContrastDriftDetector",
    "CandidateDriftDetector",
    "RecallProxyDetector",
    "default_detectors",
]

#: Severity levels, mildest first.
SEVERITIES = ("info", "warn", "critical")


@dataclass(frozen=True)
class DriftSignal:
    """One detected deviation from the tuned operating point.

    Attributes
    ----------
    kind:
        What drifted: ``"size-drift"``, ``"tombstone-pressure"``,
        ``"contrast-drift"``, ``"candidate-drift"``,
        ``"recall-degraded"``.
    severity:
        ``"info"`` (worth logging), ``"warn"`` (act at the next
        maintenance window), ``"critical"`` (act now).
    value:
        The measured statistic (ratio, fraction, recall — see
        ``kind``).
    threshold:
        The configured trip level ``value`` crossed.
    action:
        Suggested maintenance action: ``"retune"``, ``"compact"``,
        ``"refit"``, or ``"none"``.
    detector:
        Name of the emitting detector.
    details:
        Free-form diagnostic payload.
    """

    kind: str
    severity: str
    value: float
    threshold: float
    action: str
    detector: str
    details: dict = field(default_factory=dict)


def _severity(value: float, threshold: float) -> str:
    """``warn`` past the threshold, ``critical`` past twice it."""
    return "critical" if value > 2.0 * threshold else "warn"


class DriftDetector(ABC):
    """One tuning assumption, watched.

    Subclasses hold references to what they watch (a backend, a hub)
    and implement :meth:`check`, returning the signals currently
    firing (usually zero or one).  ``check`` must be safe to call from
    a background thread while the watched components serve traffic.
    """

    name: str = "abstract"

    @abstractmethod
    def check(self) -> list[DriftSignal]:
        """Evaluate the watched streams now."""


class SizeDriftDetector(DriftDetector):
    """The indexed size left the band the tables were tuned for.

    Mirrors the backend's own 25% mutation-path check
    (:attr:`~repro.engine.backends.LSHNeighborBackend.refit_drift`),
    but from the outside and on a schedule — so a deployment whose
    mutations stopped arriving (and therefore never re-trips the
    mutation-path check) still gets its refit scheduled.
    """

    name = "size-drift"

    def __init__(self, backend: LSHNeighborBackend) -> None:
        self.backend = backend

    def check(self) -> list[DriftSignal]:
        backend = self.backend
        if not backend.needs_refit:
            return []
        tuned = max(1, backend.tuned_n)
        # the same two statistics the backend's own _drifted() bounds:
        # external (alive) drift either way, and internal-row growth
        # from balanced churn — report whichever actually tripped
        external = abs(backend.n - backend.tuned_n) / tuned
        internal = max(0.0, backend.internal_n / tuned - 1.0)
        value = max(external, internal)
        return [
            DriftSignal(
                kind="size-drift",
                severity=_severity(value, backend.refit_drift),
                value=float(value),
                threshold=float(backend.refit_drift),
                action="refit",
                detector=self.name,
                details={
                    "n": backend.n,
                    "internal_n": backend.internal_n,
                    "tuned_n": backend.tuned_n,
                },
            )
        ]


class TombstoneDetector(DriftDetector):
    """Tombstones occupy too large a fraction of the index rows.

    Tombstoned rows cost memory, inflate candidate scans, and — left
    unchecked — push the internal row count over the refit band even
    when the alive count never moves.  Compaction
    (:meth:`~repro.engine.backends.LSHNeighborBackend.compact`) is
    result-preserving, so this signal is always safe to act on.
    """

    name = "tombstone-pressure"

    def __init__(
        self, backend: LSHNeighborBackend, max_ratio: float = 0.1
    ) -> None:
        if not 0 < max_ratio < 1:
            raise ParameterError(
                f"max_ratio must lie in (0, 1), got {max_ratio}"
            )
        self.backend = backend
        self.max_ratio = float(max_ratio)

    def check(self) -> list[DriftSignal]:
        ratio = self.backend.tombstone_ratio
        if ratio <= self.max_ratio:
            return []
        return [
            DriftSignal(
                kind="tombstone-pressure",
                severity=_severity(ratio, self.max_ratio),
                value=float(ratio),
                threshold=self.max_ratio,
                action="compact",
                detector=self.name,
                details={"tombstone_ratio": float(ratio)},
            )
        ]


class ContrastDriftDetector(DriftDetector):
    """The tuned contrast estimate no longer describes the data.

    Re-runs :func:`~repro.lsh.contrast.estimate_relative_contrast` on
    the *current* data against the telemetry query reservoir — a
    bounded, uniform sample of recent traffic — and compares with the
    estimate the live parameters were tuned from
    (:func:`~repro.lsh.contrast.contrast_drift` covers both the
    relative contrast and the normalization scale).  When the fresh
    estimate would also change the *discrete* parameters
    (:func:`~repro.lsh.tuning.retune_lsh`), the signal escalates to
    critical: the index is provably mis-tuned, not just drifting.

    ``hysteresis`` (``>= 1``) puts a dead band above the threshold:
    after the detector fires, the effective trip level becomes
    ``rel_tol * hysteresis`` and only re-arms to ``rel_tol`` once the
    measured drift drops back below ``rel_tol``.  A workload hovering
    exactly at the threshold — the pathological re-tune-every-cycle
    case — fires once instead of on every check.  ``1.0`` disables
    the band.
    """

    name = "contrast-drift"

    def __init__(
        self,
        backend: LSHNeighborBackend,
        hub: TelemetryHub,
        rel_tol: float = 0.25,
        min_queries: int = 8,
        reservoir: str = "queries",
        seed: SeedLike = 0,
        hysteresis: float = 1.0,
    ) -> None:
        if rel_tol <= 0:
            raise ParameterError(f"rel_tol must be positive, got {rel_tol}")
        if hysteresis < 1.0:
            raise ParameterError(f"hysteresis must be >= 1, got {hysteresis}")
        self.backend = backend
        self.hub = hub
        self.rel_tol = float(rel_tol)
        self.min_queries = int(min_queries)
        self.reservoir = reservoir
        self._seed = seed
        self.hysteresis = float(hysteresis)
        self._armed = True

    def check(self) -> list[DriftSignal]:
        backend = self.backend
        params = backend.params
        if params is None:
            return []
        sample = self.hub.reservoir(self.reservoir)
        if sample.shape[0] < self.min_queries:
            return []
        data = backend.data
        k = min(params.contrast.k, max(1, data.shape[0] - 1))
        fresh = estimate_relative_contrast(
            data, sample, k=k, seed=self._seed
        )
        value = contrast_drift(params.contrast, fresh, scale=backend.scale)
        self.hub.record("backend.lsh.contrast_drift", value)
        trip = self.rel_tol if self._armed else self.rel_tol * self.hysteresis
        if value <= trip:
            if value <= self.rel_tol:
                self._armed = True  # back inside the band: re-arm
            return []
        self._armed = False
        retuned = retune_lsh(
            params,
            # compare in the fresh normalized space, as a rebuild would
            ContrastEstimate(
                d_mean=1.0,
                d_k=fresh.d_k / fresh.d_mean if fresh.d_mean > 0 else fresh.d_k,
                contrast=fresh.contrast,
                k=fresh.k,
            ),
            n=data.shape[0],
            k_star=max(1, backend.built_k),
            delta=backend.delta,
            alpha=backend.alpha,
        )
        params_changed = retuned is not params
        severity = "critical" if params_changed else _severity(value, self.rel_tol)
        return [
            DriftSignal(
                kind="contrast-drift",
                severity=severity,
                value=float(value),
                threshold=float(trip),
                action="retune",
                detector=self.name,
                details={
                    "tuned_contrast": params.contrast.contrast,
                    "fresh_contrast": fresh.contrast,
                    "fresh_d_mean": fresh.d_mean,
                    "scale": backend.scale,
                    "params_changed": params_changed,
                    "sample_size": int(sample.shape[0]),
                    "hysteresis": self.hysteresis,
                },
            )
        ]


class CandidateDriftDetector(DriftDetector):
    """The candidate-set-size distribution moved away from its baseline.

    The cheapest drift proxy: every LSH query already counts its
    candidates (:class:`~repro.lsh.tables.LSHQueryStats`), the backend
    streams the per-batch mean into the hub, and the post-build
    baseline is the reference.  Collapsing candidate counts mean the
    effective width is now too narrow (queries hash away from their
    neighbors); exploding counts mean the index degenerated toward a
    linear scan.  Either way the tuning is stale.
    """

    name = "candidate-drift"

    def __init__(
        self,
        backend: LSHNeighborBackend,
        hub: TelemetryHub,
        rel_tol: float = 0.5,
        min_batches: int = 3,
        window: int = 8,
        metric: str = "backend.lsh.mean_candidates",
    ) -> None:
        if rel_tol <= 0:
            raise ParameterError(f"rel_tol must be positive, got {rel_tol}")
        self.backend = backend
        self.hub = hub
        self.rel_tol = float(rel_tol)
        self.min_batches = int(min_batches)
        self.window = int(window)
        self.metric = metric

    def check(self) -> list[DriftSignal]:
        baseline = self.backend.baseline_candidates
        if baseline is None or baseline <= 0:
            return []
        series = self.hub.series(self.metric)
        if series.size < self.min_batches:
            return []
        recent = float(series[-self.window:].mean())
        value = abs(recent / baseline - 1.0)
        if value <= self.rel_tol:
            return []
        return [
            DriftSignal(
                kind="candidate-drift",
                severity=_severity(value, self.rel_tol),
                value=float(value),
                threshold=self.rel_tol,
                action="retune",
                detector=self.name,
                details={
                    "baseline_candidates": float(baseline),
                    "recent_candidates": recent,
                    "batches": int(series.size),
                },
            )
        ]


class RecallProxyDetector(DriftDetector):
    """Periodic brute-force spot check of the index's effective recall.

    Draws a bounded sample from the query reservoir, computes the true
    top-``k`` by brute force (O(sample x n) — why this runs at
    maintenance cadence), retrieves through the backend's
    telemetry-silent :meth:`~repro.engine.backends.NeighborBackend.spot_query`,
    and compares.  The measured proxy is streamed back into the hub as
    ``"backend.lsh.recall_proxy"`` so operators can chart it.
    """

    name = "recall-proxy"

    def __init__(
        self,
        backend: LSHNeighborBackend,
        hub: TelemetryHub,
        k: Optional[int] = None,
        floor: float = 0.85,
        sample_size: int = 16,
        min_queries: int = 4,
        reservoir: str = "queries",
        seed: SeedLike = 0,
    ) -> None:
        if not 0 < floor <= 1:
            raise ParameterError(f"floor must lie in (0, 1], got {floor}")
        self.backend = backend
        self.hub = hub
        self.k = k
        self.floor = float(floor)
        self.sample_size = int(sample_size)
        self.min_queries = int(min_queries)
        self.reservoir = reservoir
        self._seed = seed

    def measure(self) -> float | None:
        """The current recall proxy, or ``None`` when unmeasurable."""
        backend = self.backend
        k = self.k or backend.built_k
        if k <= 0:
            return None
        sample = self.hub.reservoir(self.reservoir)
        if sample.shape[0] < self.min_queries:
            return None
        if sample.shape[0] > self.sample_size:
            rng = ensure_rng(self._seed)
            sel = rng.choice(sample.shape[0], size=self.sample_size, replace=False)
            sample = sample[sel]
        data = backend.data
        k_eff = min(k, data.shape[0])
        true_idx, _ = top_k(sample, data, k_eff)
        got_idx, _ = backend.spot_query(sample, k_eff)
        hits = 0
        for j in range(true_idx.shape[0]):
            hits += int(np.isin(true_idx[j], got_idx[j]).sum())
        recall = hits / float(true_idx.size)
        self.hub.record("backend.lsh.recall_proxy", recall)
        return recall

    def check(self) -> list[DriftSignal]:
        recall = self.measure()
        if recall is None or recall >= self.floor:
            return []
        shortfall = self.floor - recall
        return [
            DriftSignal(
                kind="recall-degraded",
                severity=_severity(shortfall, max(1e-9, 1.0 - self.floor)),
                value=float(recall),
                threshold=self.floor,
                action="retune",
                detector=self.name,
                details={"recall": float(recall), "k": int(self.k or self.backend.built_k)},
            )
        ]


def default_detectors(
    backend,
    hub: TelemetryHub,
    k: Optional[int] = None,
    contrast_tol: float = 0.25,
    candidate_tol: float = 0.5,
    tombstone_ratio: float = 0.1,
    recall_floor: float = 0.85,
    seed: SeedLike = 0,
    contrast_hysteresis: float = 1.0,
) -> list[DriftDetector]:
    """The standard detector battery for a backend.

    LSH backends get the full set; exact backends have no tuned
    parameters to drift, so they get none (their serving health is
    visible through the hub's latency series instead).
    ``contrast_hysteresis`` forwards to the
    :class:`ContrastDriftDetector` dead band.
    """
    if not isinstance(backend, LSHNeighborBackend):
        return []
    return [
        SizeDriftDetector(backend),
        TombstoneDetector(backend, max_ratio=tombstone_ratio),
        ContrastDriftDetector(
            backend,
            hub,
            rel_tol=contrast_tol,
            seed=seed,
            hysteresis=contrast_hysteresis,
        ),
        CandidateDriftDetector(backend, hub, rel_tol=candidate_tol),
        RecallProxyDetector(
            backend, hub, k=k, floor=recall_floor, seed=seed
        ),
    ]
