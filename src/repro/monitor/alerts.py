"""Alert rules, firing/resolved state, dedup, and pluggable sinks.

The decision layer between raw telemetry and an operator: an
:class:`AlertManager` owns a set of rules over
:class:`~repro.monitor.telemetry.TelemetryHub` streams, adopts the
burn-rate verdicts of an attached
:class:`~repro.monitor.slo.SLOTracker`, and ingests point-in-time
events (:class:`~repro.monitor.drift.DriftSignal` firings, executed
maintenance actions, shard-degraded/timeout increments from the
:class:`~repro.engine.sharding.ShardRouter`'s counters).

Alerts are *level-triggered with edge notification*: every
:meth:`~AlertManager.evaluate` recomputes each rule's condition, but
sinks only hear transitions — ``ok → firing`` and ``firing →
resolved`` — while a condition that stays true merely bumps the
active alert's ``count``/``last_seen`` (dedup).  Events are
edge-only by nature and always notified.

Sinks are plain callables receiving one JSON-clean payload per
notification; :class:`JsonlSink` appends them to a log file (one JSON
object per line, the same greppable shape as the trace log), and any
callback — a pager shim, a test list — plugs in via
:meth:`~AlertManager.add_sink`.  A sink that raises is counted
(``alerts.sink_errors``) and skipped, never allowed to take down
serving.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Callable, Optional, Sequence

from ..exceptions import ParameterError
from ..stats import component_stats

__all__ = [
    "AlertManager",
    "AlertRule",
    "CounterIncreaseRule",
    "JsonlSink",
    "ThresholdRule",
    "router_rules",
    "service_rules",
]

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

_SEVERITY_RANK = {"info": 0, "warn": 1, "critical": 2}


class AlertRule:
    """One named condition over a hub; subclass or wrap a callable.

    ``check(hub)`` returns a human-readable message while the
    condition holds and ``None`` while it does not.
    """

    def __init__(
        self,
        name: str,
        check: Optional[Callable[[object], Optional[str]]] = None,
        severity: str = "warn",
    ) -> None:
        if not name:
            raise ParameterError("an AlertRule needs a non-empty name")
        if severity not in _SEVERITY_RANK:
            raise ParameterError(
                f"severity must be one of {sorted(_SEVERITY_RANK)}, "
                f"got {severity!r}"
            )
        self.name = str(name)
        self.severity = severity
        self._check = check

    def check(self, hub) -> Optional[str]:
        if self._check is None:
            raise NotImplementedError
        return self._check(hub)


class ThresholdRule(AlertRule):
    """Fire while a series statistic or counter crosses a bound.

    ``stat`` applies to series: ``"last"``, ``"mean"`` (rolling
    window), or ``"p<NN>"`` (all-time histogram percentile).  Exactly
    one of ``series``/``counter`` must be given.
    """

    def __init__(
        self,
        name: str,
        *,
        series: Optional[str] = None,
        counter: Optional[str] = None,
        stat: str = "last",
        op: str = ">",
        value: float,
        severity: str = "warn",
    ) -> None:
        super().__init__(name, severity=severity)
        if (series is None) == (counter is None):
            raise ParameterError("pass exactly one of series= or counter=")
        if op not in _OPS:
            raise ParameterError(f"op must be one of {sorted(_OPS)}, got {op!r}")
        if series is not None and stat != "last" and stat != "mean":
            if not (stat.startswith("p") and stat[1:].replace(".", "", 1).isdigit()):
                raise ParameterError(
                    f"stat must be 'last', 'mean', or 'pNN', got {stat!r}"
                )
        self.series = series
        self.counter = counter
        self.stat = stat
        self.op = op
        self.value = float(value)

    def _current(self, hub) -> float:
        if self.counter is not None:
            return float(hub.counter(self.counter))
        if self.stat == "last":
            return hub.last(self.series)
        if self.stat == "mean":
            return hub.mean(self.series)
        return hub.percentile(self.series, float(self.stat[1:]))

    def check(self, hub) -> Optional[str]:
        current = self._current(hub)
        if current != current:  # NaN: stream empty or unknown
            return None
        if _OPS[self.op](current, self.value):
            subject = self.counter or f"{self.series} {self.stat}"
            return f"{subject} = {current:.6g} {self.op} {self.value:g}"
        return None


class CounterIncreaseRule(AlertRule):
    """Fire on any evaluation where a counter grew since the last one.

    The shape for fault counters (``router.shard_timeouts``,
    ``router.shard_errors``, ``maintenance.errors``): the *level* of
    such a counter is meaningless, the *increments* are the incidents.
    The rule resolves on the first evaluation without growth, so a
    burst shows up as one firing/resolved pair, not a stuck alert.
    The first evaluation seeds the baseline without firing.
    """

    def __init__(
        self,
        name: str,
        counter: str,
        severity: str = "warn",
        min_increase: int = 1,
    ) -> None:
        super().__init__(name, severity=severity)
        if min_increase < 1:
            raise ParameterError(
                f"min_increase must be >= 1, got {min_increase}"
            )
        self.counter = str(counter)
        self.min_increase = int(min_increase)
        self._previous: Optional[int] = None

    def check(self, hub) -> Optional[str]:
        current = int(hub.counter(self.counter))
        previous, self._previous = self._previous, current
        if previous is None:
            return None
        delta = current - previous
        if delta >= self.min_increase:
            return f"{self.counter} +{delta} (now {current})"
        return None


def router_rules(prefix: str = "router") -> list[AlertRule]:
    """The stock rule battery for a :class:`ShardRouter`'s counters.

    Degraded answers and shard faults are already typed, counted
    outcomes (see ``docs/OPERATIONS.md``); these rules turn their
    increments into alert traffic.
    """
    return [
        CounterIncreaseRule(
            f"{prefix}.degraded",
            f"{prefix}.degraded_requests",
            severity="critical",
        ),
        CounterIncreaseRule(
            f"{prefix}.shard_timeouts",
            f"{prefix}.shard_timeouts",
            severity="warn",
        ),
        CounterIncreaseRule(
            f"{prefix}.shard_errors",
            f"{prefix}.shard_errors",
            severity="warn",
        ),
    ]


def service_rules(prefix: str = "service") -> list[AlertRule]:
    """The stock rule battery for a :class:`ValuationService`'s counters.

    Sustained shedding is the page-worthy signal: under
    ``admission="shed"`` every rejected request increments
    ``service.jobs_shed``, so growth across consecutive evaluations
    means the queue has been at its bound for a whole evaluation
    interval — the degradation ladder alone no longer absorbs the
    load.  Deadline misses and degraded answers are warn-level
    context for the same episode.
    """
    return [
        CounterIncreaseRule(
            f"{prefix}.shedding",
            f"{prefix}.jobs_shed",
            severity="critical",
        ),
        CounterIncreaseRule(
            f"{prefix}.deadline_misses",
            f"{prefix}.jobs_deadline_exceeded",
            severity="warn",
        ),
        CounterIncreaseRule(
            f"{prefix}.degraded",
            f"{prefix}.jobs_degraded",
            severity="warn",
        ),
    ]


class JsonlSink:
    """Append every notification as one JSON line to ``path``."""

    def __init__(self, path) -> None:
        self.path = str(path)
        self._lock = threading.Lock()

    def __call__(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True)
        with self._lock, open(self.path, "a") as fh:
            fh.write(line + "\n")


class AlertManager:
    """Firing/resolved alert state over rules, SLO burn, and events.

    Parameters
    ----------
    hub:
        The telemetry hub the rules read.
    rules:
        Initial :class:`AlertRule` battery (extend with
        :meth:`add_rule`).
    slo:
        Optional :class:`~repro.monitor.slo.SLOTracker`; each
        :meth:`evaluate` adopts its burn-rate verdicts as alerts named
        ``slo.<name>``.
    history:
        Bounded length of the notification history ring.
    clock:
        Wall-clock source for payload timestamps (injectable).
    """

    def __init__(
        self,
        hub,
        rules: Sequence[AlertRule] = (),
        slo=None,
        history: int = 512,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if history <= 0:
            raise ParameterError(f"history must be positive, got {history}")
        self.hub = hub
        self.slo = slo
        self.clock = clock
        self._rules: list[AlertRule] = []
        self._sinks: list[Callable[[dict], None]] = []
        self._lock = threading.RLock()
        #: alert name -> active-state dict (present while firing)
        self._active: dict[str, dict] = {}
        self.history: deque[dict] = deque(maxlen=int(history))
        self._counts = {
            "evaluations": 0,
            "fired": 0,
            "resolved": 0,
            "events": 0,
            "sink_errors": 0,
        }
        self._batch: Optional[list[dict]] = None
        for rule in rules:
            self.add_rule(rule)

    # ------------------------------------------------------------------
    def add_rule(self, rule: AlertRule) -> "AlertManager":
        with self._lock:
            if any(r.name == rule.name for r in self._rules):
                raise ParameterError(f"alert rule {rule.name!r} already exists")
            self._rules.append(rule)
        return self

    def add_sink(self, sink: Callable[[dict], None]) -> "AlertManager":
        with self._lock:
            self._sinks.append(sink)
        return self

    def log_to(self, path) -> JsonlSink:
        """Attach (and return) a :class:`JsonlSink` writing to ``path``."""
        sink = JsonlSink(path)
        self.add_sink(sink)
        return sink

    # ------------------------------------------------------------------
    def _notify(self, payload: dict) -> None:
        """Fan one payload out to every sink (lock held)."""
        self.history.append(payload)
        if self._batch is not None:
            self._batch.append(payload)
        for sink in self._sinks:
            try:
                sink(payload)
            except Exception:  # noqa: BLE001 - a broken pager shim must
                # not take down serving; the counter is the signal
                self._counts["sink_errors"] += 1
        if self.hub is not None:
            self.hub.count(f"alerts.{payload['state']}")

    def _fire(self, name: str, severity: str, message: str, labels: dict) -> dict:
        now = self.clock()
        active = self._active.get(name)
        if active is not None:
            active["count"] += 1
            active["last_seen"] = now
            active["message"] = message
            return active
        active = self._active[name] = {
            "name": name,
            "state": "firing",
            "severity": severity,
            "message": message,
            "labels": dict(labels),
            "since": now,
            "last_seen": now,
            "count": 1,
        }
        self._counts["fired"] += 1
        self._notify(dict(active, ts=now))
        return active

    def _resolve(self, name: str) -> None:
        active = self._active.pop(name, None)
        if active is None:
            return
        now = self.clock()
        self._counts["resolved"] += 1
        self._notify(
            {
                "name": name,
                "state": "resolved",
                "severity": active["severity"],
                "message": active["message"],
                "labels": active["labels"],
                "since": active["since"],
                "ts": now,
                "count": active["count"],
                "duration_seconds": now - active["since"],
            }
        )

    # ------------------------------------------------------------------
    def record_event(
        self,
        name: str,
        message: str = "",
        severity: str = "info",
        **labels,
    ) -> dict:
        """Record a point-in-time event (no firing state, always notified)."""
        if severity not in _SEVERITY_RANK:
            raise ParameterError(f"unknown severity {severity!r}")
        payload = {
            "name": str(name),
            "state": "event",
            "severity": severity,
            "message": str(message),
            "labels": {k: str(v) for k, v in labels.items()},
            "ts": self.clock(),
        }
        with self._lock:
            self._counts["events"] += 1
            self._notify(payload)
        return payload

    def observe_signal(self, signal) -> dict:
        """Ingest one :class:`~repro.monitor.drift.DriftSignal` as an event."""
        labels = {"detector": signal.detector, "action": signal.action}
        shard = signal.details.get("shard") if signal.details else None
        if shard is not None:
            labels["shard"] = shard
        return self.record_event(
            f"drift.{signal.kind}",
            message=(
                f"{signal.kind}: value {signal.value:.6g} vs threshold "
                f"{signal.threshold:.6g} → {signal.action}"
            ),
            severity=signal.severity,
            **labels,
        )

    # ------------------------------------------------------------------
    def evaluate(self) -> list[dict]:
        """Run every rule (and the SLO tracker) once; return transitions.

        The returned list holds exactly the notifications produced by
        this evaluation — newly fired, newly resolved — in order.
        """
        slo_statuses = self.slo.evaluate() if self.slo is not None else []
        with self._lock:
            self._counts["evaluations"] += 1
            self._batch = []
            for rule in self._rules:
                try:
                    message = rule.check(self.hub)
                except Exception as exc:  # noqa: BLE001 - a buggy rule
                    # degrades to an alert about itself, not a crash
                    message = f"rule error: {exc!r}"
                if message is not None:
                    self._fire(rule.name, rule.severity, message, {})
                else:
                    self._resolve(rule.name)
            for status in slo_statuses:
                name = f"slo.{status['name']}"
                if status["firing"]:
                    firing = [
                        f"{key} burn {w['burn_short']:.1f}x/{w['burn_long']:.1f}x"
                        for key, w in status["windows"].items()
                        if w["firing"]
                    ]
                    self._fire(
                        name,
                        status["severity"] or "critical",
                        f"{status['objective']}: {'; '.join(firing)}",
                        {"stream": status["stream"], "kind": status["kind"]},
                    )
                else:
                    self._resolve(name)
            batch, self._batch = self._batch, None
            return batch

    # ------------------------------------------------------------------
    def active(self) -> list[dict]:
        """Currently firing alerts, most severe first."""
        with self._lock:
            return sorted(
                (dict(a) for a in self._active.values()),
                key=lambda a: (
                    -_SEVERITY_RANK.get(a["severity"], 0),
                    a["since"],
                ),
            )

    def snapshot(self, last: int = 64) -> dict:
        """JSON-clean state (the ``/alerts`` endpoint body)."""
        with self._lock:
            return {
                "schema": 1,
                "active": self.active(),
                "history": list(self.history)[-int(last):],
                "counts": dict(self._counts),
                "n_rules": len(self._rules),
            }

    def stats(self) -> dict:
        """Unified-schema snapshot of the manager."""
        with self._lock:
            return component_stats(
                "alert_manager",
                counters=dict(self._counts),
                gauges={
                    "n_rules": len(self._rules),
                    "n_sinks": len(self._sinks),
                    "n_active": len(self._active),
                    "slo_attached": int(self.slo is not None),
                },
            )
