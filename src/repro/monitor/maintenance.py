"""Background maintenance: mapping drift signals to corrective actions.

The closing layer of the monitoring subsystem.  A
:class:`MaintenanceScheduler` owns a detector battery
(:mod:`repro.monitor.drift`) and a worker thread (the same shape as
:class:`repro.engine.service.ValuationService`'s workers) that wakes on
an interval — or immediately, when the backend's mutation path trips
its drift check — runs the detectors, plans *one* corrective action,
and executes it under the engine's exclusive lock:

=================== ==================================================
signal action       executed as
=================== ==================================================
``refit``/``retune`` :meth:`LSHNeighborBackend.retune` — fresh
                    contrast estimate from the telemetry query
                    reservoir, Section 6.1 re-selection, rebuild
                    (which also compacts)
``compact``         :meth:`LSHNeighborBackend.compact` — tombstone
                    scrub, bit-identical results
=================== ==================================================

Because a retune rebuilds (and a rebuild compacts), the planner
collapses the signal set to the strongest applicable action instead of
running them all.  Execution goes through
:meth:`~repro.engine.ValuationEngine.run_exclusive` when an engine is
attached, so concurrent ``valuate`` requests never observe a
half-swapped index and stale cache entries are pre-invalidated the
moment the backend's result semantics change.

Attaching a scheduler also *replaces the warned-refit escape hatch*:
it installs itself as the backend's ``on_drift`` hook, so a mutation
that leaves the tuned band no longer emits a ``RuntimeWarning`` and
pays an inline refit — it keeps absorbing in place and the scheduler
re-tunes in the background.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..engine.backends import LSHNeighborBackend, NeighborBackend
from ..exceptions import ParameterError
from ..stats import component_stats
from .drift import SEVERITIES, DriftDetector, DriftSignal, default_detectors
from .telemetry import TelemetryHub

if TYPE_CHECKING:  # imported lazily: engine.engine imports this package
    from ..engine.engine import ValuationEngine
    from ..engine.sharding import ShardRouter

__all__ = ["MaintenanceEvent", "MaintenanceScheduler", "attach_monitoring"]

#: Actions the planner knows, strongest first.  ``retune`` subsumes
#: ``refit`` (it *is* a refit, with a fresh contrast estimate) and both
#: subsume ``compact`` (a rebuild starts from scratch, tombstone-free).
ACTION_ORDER = ("retune", "refit", "compact")


@dataclass(frozen=True)
class MaintenanceEvent:
    """One executed (or failed) maintenance action, for the audit log."""

    action: str
    signals: tuple[DriftSignal, ...]
    seconds: float
    ok: bool
    error: Optional[str] = None
    details: dict = field(default_factory=dict)


@dataclass
class _MaintUnit:
    """One maintained engine/backend pair (a shard, or the whole deployment).

    ``label`` is ``None`` for the classic single-engine scheduler and
    the shard label under a router; ``view`` is the (possibly labeled)
    hub the unit's streams live under.
    """

    label: Optional[str]
    engine: Optional["ValuationEngine"]
    backend: NeighborBackend
    detectors: list
    view: object  # TelemetryHub or LabeledHub


class MaintenanceScheduler:
    """Detect-plan-act loop keeping a live deployment tuned.

    Parameters
    ----------
    engine:
        The served :class:`~repro.engine.ValuationEngine`; maintenance
        then runs under its exclusive lock and its backend is the
        maintained index.  Omit to maintain a bare ``backend``.
    backend:
        The maintained backend when no engine is given.
    hub:
        Telemetry hub; a private one is created when omitted.  If the
        engine/backend has no hub attached yet, this one is attached,
        so ``MaintenanceScheduler(engine=engine)`` alone instruments a
        deployment end to end.
    detectors:
        Detector battery; defaults to
        :func:`~repro.monitor.drift.default_detectors` for the
        backend.
    interval:
        Seconds between background cycles once :meth:`start` ed.  The
        loop also wakes immediately when the backend defers a drifted
        mutation to it.
    history:
        Audit-log length (:attr:`log`).
    min_retune_interval:
        Debounce: minimum seconds between two executed re-tunes.  A
        re-tune planned sooner is *deferred*, not dropped — the intent
        stays pending and executes once the spacing has elapsed — so a
        pathological workload (e.g. traffic oscillating around a drift
        threshold) cannot make the scheduler rebuild the index every
        cycle.  ``0`` (default) keeps the historical immediate
        behavior.  Compactions are never debounced: they are
        result-preserving and cheap.
    contrast_hysteresis:
        Hysteresis factor (``>= 1``) on the contrast-drift threshold,
        forwarded to the default
        :class:`~repro.monitor.drift.ContrastDriftDetector` battery:
        after the detector fires once, the effective trip level is
        raised to ``rel_tol * contrast_hysteresis`` until the measured
        drift falls back below ``rel_tol`` — a workload hovering right
        at the threshold fires once, not every cycle.  ``1.0``
        (default) disables the band.  Ignored when an explicit
        ``detectors`` battery is supplied.

    alerts:
        Optional :class:`~repro.monitor.alerts.AlertManager`.  When
        attached, every fired :class:`DriftSignal` and every executed
        (or failed) maintenance action lands there as an event, so the
        operator's alert feed narrates what the loop did and why.
    slo:
        Optional :class:`~repro.monitor.slo.SLOTracker`.  When
        attached, the fleet planner breaks severity ties by each
        shard's current short-window burn rate — among equally drifted
        shards, the one spending its error budget fastest is repaired
        first.

    Use as a context manager (starts/stops the thread), drive manually
    with :meth:`run_once`, or :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        engine: Optional[ValuationEngine] = None,
        backend: Optional[NeighborBackend] = None,
        hub: Optional[TelemetryHub] = None,
        detectors: Optional[Sequence[DriftDetector]] = None,
        interval: float = 60.0,
        history: int = 256,
        min_retune_interval: float = 0.0,
        contrast_hysteresis: float = 1.0,
        router: Optional["ShardRouter"] = None,
        alerts=None,
        slo=None,
    ) -> None:
        if router is not None and (engine is not None or backend is not None):
            raise ParameterError(
                "pass either a router or an engine/backend, not both"
            )
        if router is not None and detectors is not None:
            raise ParameterError(
                "an explicit detector battery cannot be split across "
                "shards; omit `detectors` when maintaining a router"
            )
        if router is None and engine is None and backend is None:
            raise ParameterError(
                "a MaintenanceScheduler needs an engine, backend, or router "
                "to maintain"
            )
        if interval <= 0:
            raise ParameterError(f"interval must be positive, got {interval}")
        if min_retune_interval < 0:
            raise ParameterError(
                f"min_retune_interval must be non-negative, got "
                f"{min_retune_interval}"
            )
        if contrast_hysteresis < 1.0:
            raise ParameterError(
                f"contrast_hysteresis must be >= 1, got {contrast_hysteresis}"
            )
        self.router = router
        self.alerts = alerts
        self.slo = slo
        self.min_retune_interval = float(min_retune_interval)
        self.contrast_hysteresis = float(contrast_hysteresis)
        # one hub end to end — and it must be the hub the components
        # already publish into, or the stream-based detectors would
        # watch an empty private hub and monitoring would be silently
        # inert.  Precedence: an explicit `hub`, then whatever is
        # already attached, then a fresh one.
        if router is not None:
            self.engine = None
            self.backend = None
            if hub is None:
                hub = router.telemetry
            self.hub = hub if hub is not None else TelemetryHub()
            if router.telemetry is not self.hub:
                router.attach_telemetry(self.hub)
            self._units: list[_MaintUnit] = []
            for shard in router.shards:
                view = self.hub.labeled(shard.label)
                self._units.append(
                    _MaintUnit(
                        label=shard.label,
                        engine=shard.engine,
                        backend=shard.engine.backend,
                        detectors=list(
                            default_detectors(
                                shard.engine.backend,
                                view,
                                k=shard.engine.k,
                                contrast_hysteresis=self.contrast_hysteresis,
                            )
                        ),
                        view=view,
                    )
                )
            self.detectors = [d for u in self._units for d in u.detectors]
        else:
            self.engine = engine
            self.backend = backend if backend is not None else engine.backend
            if hub is None:
                hub = engine.telemetry if engine is not None else None
            if hub is None:
                hub = self.backend.telemetry
            self.hub = hub if hub is not None else TelemetryHub()
            if engine is not None:
                if engine.telemetry is not self.hub:
                    engine.attach_telemetry(self.hub)
            elif self.backend.telemetry is not self.hub:
                self.backend.telemetry = self.hub
            if detectors is None:
                k = engine.k if engine is not None else None
                detectors = default_detectors(
                    self.backend,
                    self.hub,
                    k=k,
                    contrast_hysteresis=self.contrast_hysteresis,
                )
            self.detectors = list(detectors)
            self._units = [
                _MaintUnit(
                    label=None,
                    engine=self.engine,
                    backend=self.backend,
                    detectors=self.detectors,
                    view=self.hub,
                )
            ]
        self.interval = float(interval)
        self.log: deque[MaintenanceEvent] = deque(maxlen=history)
        self.last_signals: list[DriftSignal] = []
        self._pending: set[str] = set()
        #: deferred actions of labeled (shard) units, keyed by label
        self._shard_pending: dict[str, set[str]] = {}
        self._unit_signals: dict[Optional[str], list[DriftSignal]] = {}
        self._pending_lock = threading.Lock()
        self._wake = threading.Event()
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None
        self._cycles = 0
        self._last_retune_monotonic: float | None = None
        self._debounced = 0
        # silence the warned-refit escape hatch: drifted mutations are
        # now this scheduler's problem (satellite of the monitor PR)
        self._install_hook()

    def _install_hook(self) -> None:
        for unit in self._units:
            if isinstance(unit.backend, LSHNeighborBackend):
                unit.backend.on_drift = self._defer_refit

    def _uninstall_hook(self) -> None:
        for unit in self._units:
            if getattr(unit.backend, "on_drift", None) == self._defer_refit:
                unit.backend.on_drift = None

    # ------------------------------------------------------------------
    def _unit_for_backend(self, backend: NeighborBackend) -> _MaintUnit:
        for unit in self._units:
            if unit.backend is backend:
                return unit
        return self._units[0]

    def _defer_refit(self, backend: NeighborBackend) -> bool:
        """Backend drift hook: schedule a silent re-tune, wake the loop.

        Under a router the deferral is tagged with the owning shard's
        label so the planner re-tunes that shard, not shard 0.
        """
        unit = self._unit_for_backend(backend)
        with self._pending_lock:
            if unit.label is None:
                self._pending.add("refit")
            else:
                self._shard_pending.setdefault(unit.label, set()).add("refit")
        self.hub.count("maintenance.deferred_refits")
        self._wake.set()
        return True

    def _exclusive(self, fn: Callable, unit: Optional[_MaintUnit] = None):
        engine = unit.engine if unit is not None else self.engine
        if engine is not None:
            return engine.run_exclusive(fn)
        return fn()

    # ------------------------------------------------------------------
    def check(self) -> list[DriftSignal]:
        """Run every detector once; returns (and records) the signals.

        Under a router the detectors run per shard; each firing counts
        both into the shard's labeled view (``shard<i>.drift.{kind}``)
        and the fleet-wide ``drift.{kind}`` counter.  The flat
        :attr:`last_signals` list spans every unit.
        """
        signals: list[DriftSignal] = []
        self._unit_signals = {}
        for unit in self._units:
            unit_signals: list[DriftSignal] = []
            for detector in unit.detectors:
                unit_signals.extend(detector.check())
            for signal in unit_signals:
                unit.view.count(f"drift.{signal.kind}")
                if unit.label is not None:
                    self.hub.count(f"drift.{signal.kind}")
            self._unit_signals[unit.label] = unit_signals
            signals.extend(unit_signals)
        self.last_signals = signals
        if self.alerts is not None:
            for signal in signals:
                try:
                    self.alerts.observe_signal(signal)
                except Exception:  # noqa: BLE001 - the alert feed is
                    # best-effort; maintenance must keep cycling
                    self.hub.count("maintenance.alert_errors")
        return signals

    def plan(self, signals: Sequence[DriftSignal]) -> Optional[str]:
        """Collapse signals (plus deferred refits) to one action."""
        with self._pending_lock:
            wanted = set(self._pending)
            self._pending.clear()
        wanted.update(s.action for s in signals if s.action != "none")
        for action in ACTION_ORDER:
            if action in wanted:
                # refit and retune both execute as a retune: the whole
                # point of the subsystem is that a refit forced by size
                # drift should refresh the contrast estimate too
                return "retune" if action in ("refit", "retune") else action
        return None

    def _plan_fleet(
        self,
    ) -> tuple[Optional[_MaintUnit], Optional[str], list[DriftSignal]]:
        """Pick the worst-drifted unit and its action (one per cycle).

        Worst-drift-first: units are ranked by the highest severity
        among their actionable signals (``critical`` > ``warn`` >
        ``info``; a pending deferred refit counts as ``warn``), ties
        broken by the stronger action (``retune`` > ``compact``), then
        by unit order.  Exactly one unit acts per cycle — maintenance
        is serialized so at most one shard is under its exclusive lock
        at a time and the fleet keeps serving.
        """
        severity_rank = {name: i for i, name in enumerate(SEVERITIES)}
        best: tuple[int, float, int, int] | None = None
        chosen: tuple[_MaintUnit, str, list[DriftSignal]] | None = None
        with self._pending_lock:
            shard_pending = {
                label: set(actions)
                for label, actions in self._shard_pending.items()
            }
            legacy_pending = set(self._pending)
            self._shard_pending.clear()
            self._pending.clear()
        for order, unit in enumerate(self._units):
            signals = self._unit_signals.get(unit.label, [])
            actionable = [s for s in signals if s.action != "none"]
            wanted = {s.action for s in actionable}
            if unit.label is None:
                wanted |= legacy_pending
            else:
                wanted |= shard_pending.get(unit.label, set())
            action = None
            for candidate in ACTION_ORDER:
                if candidate in wanted:
                    action = (
                        "retune"
                        if candidate in ("refit", "retune")
                        else candidate
                    )
                    break
            if action is None:
                continue
            severity = max(
                [severity_rank.get(s.severity, 0) for s in actionable],
                # a deferred refit arrives without a signal: rank it
                # between a fired info and a fired warn signal
                default=severity_rank["warn"],
            )
            score = (
                severity,
                # worst-burn-first among equally severe units: the
                # shard spending its error budget fastest (per the
                # attached SLO tracker) is repaired first
                self._unit_burn(unit),
                len(ACTION_ORDER) - ACTION_ORDER.index(
                    "retune" if action == "retune" else action
                ),
                -order,
            )
            if best is None or score > best:
                best = score
                chosen = (unit, action, actionable)
        if chosen is None:
            return None, None, []
        return chosen

    def _unit_burn(self, unit: _MaintUnit) -> float:
        """The unit's current worst short-window burn rate (0 without SLOs).

        Labeled (shard) units match SLOs whose stream lives under
        their label prefix (``shard0.engine.request_seconds`` …); the
        unlabeled single-engine unit matches every tracked SLO.
        """
        if self.slo is None:
            return 0.0
        try:
            return float(self.slo.worst_burn(prefix=unit.label or ""))
        except Exception:  # noqa: BLE001 - a tracker bug must not
            # stall planning; burn then simply stops influencing order
            self.hub.count("maintenance.slo_errors")
            return 0.0

    def _debounce_retune(self, unit: Optional[_MaintUnit] = None) -> bool:
        """Whether a planned re-tune must wait for the minimum spacing.

        When debounced, the intent is re-queued as a pending refit (for
        the requesting unit) so a later cycle — past the fleet-wide
        spacing — still acts on it: deferral, not loss.
        """
        if self.min_retune_interval <= 0 or self._last_retune_monotonic is None:
            return False
        elapsed = time.monotonic() - self._last_retune_monotonic
        if elapsed >= self.min_retune_interval:
            return False
        with self._pending_lock:
            if unit is None or unit.label is None:
                self._pending.add("refit")
            else:
                self._shard_pending.setdefault(unit.label, set()).add("refit")
        self._debounced += 1
        self.hub.count("maintenance.debounced_retunes")
        return True

    def run_once(self) -> list[MaintenanceEvent]:
        """One synchronous detect-plan-act cycle; returns what ran.

        Each cycle also routes the latest component snapshots into the
        hub via :meth:`~repro.monitor.telemetry.TelemetryHub.consume`
        — the engine's (whose counters carry the ``weighted_path_*``
        execution-path tallies) and the scheduler's own — so the hub's
        export surfaces describe the whole deployment, not just the
        raw streams.  Drift-signal firings land as ``drift.{kind}``
        counters inside :meth:`check`.
        """
        self._cycles += 1
        self._publish_snapshots()
        self.check()
        unit, action, unit_signals = self._plan_fleet()
        if unit is None or action is None:
            return []
        if action == "retune" and self._debounce_retune(unit):
            # compaction is result-preserving and exempt from the
            # debounce — a cycle whose re-tune is deferred must not
            # also swallow a requested compact (the retune would have
            # subsumed it; without it, tombstones keep accumulating)
            if not any(s.action == "compact" for s in unit_signals):
                return []
            action = "compact"
        event = self._execute(action, tuple(unit_signals), unit)
        if event.ok and action == "retune":
            self._last_retune_monotonic = time.monotonic()
        self.log.append(event)
        if self.alerts is not None:
            try:
                labels = {"seconds": f"{event.seconds:.6f}"}
                if unit.label is not None:
                    labels["shard"] = unit.label
                self.alerts.record_event(
                    f"maintenance.{event.action}",
                    message=(
                        f"{event.action} ok in {event.seconds * 1e3:.1f} ms"
                        if event.ok
                        else f"{event.action} FAILED: {event.error}"
                    ),
                    severity="info" if event.ok else "warn",
                    **labels,
                )
            except Exception:  # noqa: BLE001 - see check(): best-effort
                self.hub.count("maintenance.alert_errors")
        return [event]

    def _publish_snapshots(self) -> None:
        """Consume the stack's unified-schema snapshots into the hub."""
        if self.router is not None:
            sources = [self.router]
        elif self.engine is not None:
            sources = [self.engine]
        else:
            sources = [self.backend]
        sources.append(self)
        for source in sources:
            try:
                self.hub.consume(source.stats())
            except Exception:  # noqa: BLE001 - a stats() bug must not
                # starve maintenance; the error counter is the signal
                self.hub.count("maintenance.snapshot_errors")

    def _execute(
        self,
        action: str,
        signals: tuple[DriftSignal, ...],
        unit: Optional[_MaintUnit] = None,
    ) -> MaintenanceEvent:
        if unit is None:
            unit = self._units[0]
        backend = unit.backend
        start = time.perf_counter()
        details: dict = {}
        if unit.label is not None:
            details["shard"] = unit.label
        try:
            if action == "retune":
                if isinstance(backend, LSHNeighborBackend):
                    # the query reservoir the *unit's* streams feed —
                    # under a router that is the shard's labeled view
                    sample = unit.view.reservoir("queries")
                    queries = sample if sample.shape[0] else None
                    params = self._exclusive(
                        lambda: backend.retune(queries=queries), unit
                    )
                    if params is not None:
                        details.update(
                            width=params.width,
                            n_bits=params.n_bits,
                            n_tables=params.n_tables,
                        )
                else:
                    # exact backends have nothing tuned; refitting is a
                    # no-op beyond re-validating the data pointer
                    self._exclusive(lambda: None, unit)
            elif action == "compact":
                scrubbed = self._exclusive(
                    lambda: backend.compact()
                    if isinstance(backend, LSHNeighborBackend)
                    else 0,
                    unit,
                )
                details["scrubbed"] = int(scrubbed)
            else:
                raise ParameterError(f"unknown maintenance action {action!r}")
            seconds = time.perf_counter() - start
            self.hub.count(f"maintenance.{action}")
            self.hub.record("maintenance.seconds", seconds)
            return MaintenanceEvent(
                action=action,
                signals=signals,
                seconds=seconds,
                ok=True,
                details=details,
            )
        except Exception as exc:  # noqa: BLE001 - background robustness:
            # a failed action must not kill the loop; it lands in the
            # audit log and the error counter instead
            self.hub.count("maintenance.errors")
            return MaintenanceEvent(
                action=action,
                signals=signals,
                seconds=time.perf_counter() - start,
                ok=False,
                error=repr(exc),
            )

    # ------------------------------------------------------------------
    # the background thread
    def start(self) -> "MaintenanceScheduler":
        """Start the background loop (idempotent); returns ``self``."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._install_hook()  # re-arm after a previous stop()
        self._stopped.clear()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="maintenance"
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the background loop, join it, and re-arm the warnings.

        A stopped scheduler must not keep swallowing the backend's
        drift escape hatch — nothing would drain the deferrals and the
        backend would serve a mis-tuned index forever, silently — so
        the ``on_drift`` hook is uninstalled and the legacy warned
        refit applies again.  (Driving :meth:`run_once` manually
        without ever starting the thread keeps the hook installed;
        whoever calls ``run_once`` is the drain.)
        """
        self._stopped.set()
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None
        self._uninstall_hook()

    def poke(self) -> None:
        """Wake the background loop for an immediate cycle."""
        self._wake.set()

    def _loop(self) -> None:
        while not self._stopped.is_set():
            self._wake.wait(self.interval)
            self._wake.clear()
            if self._stopped.is_set():
                return
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 - detector bugs must not
                # kill the maintenance thread; the error counter is the
                # operator's signal to look at the detector battery
                self.hub.count("maintenance.cycle_errors")

    def __enter__(self) -> "MaintenanceScheduler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Unified-schema snapshot of the maintenance loop."""
        executed: dict[str, int] = {}
        failures = 0
        total_seconds = 0.0
        for event in self.log:
            executed[event.action] = executed.get(event.action, 0) + 1
            failures += 0 if event.ok else 1
            total_seconds += event.seconds
        last = self._last_retune_monotonic
        return component_stats(
            "maintenance_scheduler",
            counters={
                "cycles": self._cycles,
                "failures": failures,
                "debounced_retunes": self._debounced,
                **{f"action_{a}": c for a, c in sorted(executed.items())},
            },
            timings={
                "total_action_seconds": total_seconds,
                "seconds_since_retune": (
                    time.monotonic() - last if last is not None else -1.0
                ),
            },
            gauges={
                "running": int(self.running),
                "n_detectors": len(self.detectors),
                "n_units": len(self._units),
                "alerts_attached": int(self.alerts is not None),
                "slo_attached": int(self.slo is not None),
                "interval": self.interval,
                "min_retune_interval": self.min_retune_interval,
                "contrast_hysteresis": self.contrast_hysteresis,
            },
        )


def attach_monitoring(
    engine: ValuationEngine,
    interval: float = 60.0,
    hub: Optional[TelemetryHub] = None,
    detectors: Optional[Sequence[DriftDetector]] = None,
    start: bool = True,
    min_retune_interval: float = 0.0,
    contrast_hysteresis: float = 1.0,
    alerts=None,
    slo=None,
) -> MaintenanceScheduler:
    """One-call instrumentation of a served engine.

    Creates (or adopts) a hub, attaches it through the engine to the
    backend and cache, builds the default detector battery, installs
    the silent-refit hook, and — by default — starts the background
    loop.  Returns the scheduler; its :attr:`~MaintenanceScheduler.hub`
    is the telemetry handle.  ``min_retune_interval``,
    ``contrast_hysteresis``, ``alerts`` and ``slo`` forward to
    :class:`MaintenanceScheduler` (re-tune debounce, contrast-threshold
    hysteresis, and the ops-plane hookups).
    """
    scheduler = MaintenanceScheduler(
        engine=engine,
        hub=hub,
        detectors=detectors,
        interval=interval,
        min_retune_interval=min_retune_interval,
        contrast_hysteresis=contrast_hysteresis,
        alerts=alerts,
        slo=slo,
    )
    if start:
        scheduler.start()
    return scheduler
