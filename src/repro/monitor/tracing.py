"""Dependency-free request tracing across the valuation stack.

A served valuation crosses many layers — facade, engine, chunk worker
threads, kernel dispatch, neighbor backend, rank cache — and a latency
number per layer is not enough to answer *where did this request's
40 ms go?*.  This module is a minimal distributed-tracing substrate in
the OpenTelemetry shape (trace/span/parent ids, monotonic timings,
typed attributes) with none of the dependency:

* :class:`Tracer` — creates :class:`Span` s as context managers and
  tracks the *current* span per thread of control through a
  :class:`contextvars.ContextVar`.  Nested ``with tracer.span(...)``
  blocks therefore parent automatically; crossing an explicit thread
  boundary (the engine's chunk pool, the service's worker threads)
  takes an explicit ``parent=`` or :meth:`Tracer.activate`, because
  worker threads do not inherit the submitting thread's context.
* :class:`Span` — one timed operation.  ``seconds`` is measured with
  :func:`time.perf_counter`; ``ts`` is the wall-clock start for log
  correlation.  Finished children aggregate into their parent, so a
  request's root span yields a complete tree via :meth:`Span.summary`
  — that tree is what the engine puts in
  ``ValuationResult.extra["trace"]``.
* :class:`TraceContext` — the immutable ``(trace_id, span_id)`` pair
  that travels on :class:`~repro.engine.service.ValuationRequest` /
  ``MutationRequest`` across the service's queue, so a job executed on
  a worker thread attaches to the submitting caller's trace.
* :class:`TraceLog` — a bounded ring buffer of finished span records
  with an eviction counter (``dropped``), optionally appending each
  record to a JSONL file for live inspection with
  ``python -m repro.monitor.dump``.
* :class:`NullTracer` / :data:`NOOP_TRACER` — the zero-cost-when-off
  default.  Every ``with tracer.span(...)`` on the null tracer returns
  one shared no-op context manager and one shared falsy span; no ids,
  no clock reads, no allocation per call beyond the argument tuple.
  The ``bench_engine`` gate (``trace_overhead_margin``) holds the
  *enabled* overhead under 5% of untraced serving.

Everything here is standard library only (``threading``, ``time``,
``contextvars``, ``json``); the module deliberately imports nothing
from the rest of the package so any layer can import it without
cycles.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import IO, NamedTuple, Optional, Union

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "NullTracer",
    "NOOP_TRACER",
    "TraceLog",
]

#: Process-wide span-id source: cheap, unique, and ordered — a hex
#: counter, not a uuid4 per span (id generation sits on the traced hot
#: path).
_SPAN_IDS = itertools.count(1)


def _new_trace_id() -> str:
    return os.urandom(8).hex()


def _new_span_id() -> str:
    return format(next(_SPAN_IDS), "x")


class TraceContext(NamedTuple):
    """The portable identity of a point in a trace.

    Carried by value across queue/thread boundaries (it is immutable
    and picklable); a span started under ``parent=ctx`` records
    ``ctx.span_id`` as its parent and joins ``ctx.trace_id``.
    """

    trace_id: str
    span_id: str


def _json_default(value):
    """Best-effort JSON coercion for attribute payloads (numpy scalars)."""
    for cast in (int, float):
        try:
            return cast(value)
        except (TypeError, ValueError):
            continue
    return repr(value)


class Span:
    """One timed, attributed operation inside a trace.

    Created by :meth:`Tracer.span`; truthy (the :class:`NullTracer`'s
    span is falsy, so ``if span:`` gates optional work like building a
    summary).  Attributes are plain ``key=value`` pairs; :meth:`set`
    adds them after entry (e.g. a cache hit/miss known only
    mid-request).  ``children`` holds the finished summaries of child
    spans — appended by the tracer when each child closes, which is
    thread-safe under the GIL's atomic ``list.append`` even when
    children run on pool threads.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attributes",
        "ts",
        "start_s",
        "seconds",
        "children",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        attributes: dict,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.ts = time.time()
        self.start_s = time.perf_counter()
        self.seconds: float = 0.0
        self.children: list[dict] = []

    def __bool__(self) -> bool:
        return True

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute on the live span."""
        self.attributes[key] = value

    def context(self) -> TraceContext:
        """This span's identity, for crossing a thread/queue boundary."""
        return TraceContext(self.trace_id, self.span_id)

    def summary(self) -> dict:
        """The finished subtree rooted here, as plain dicts.

        Children appear in completion order.  Call after the ``with``
        block closed (inside it, ``seconds`` is still 0).
        """
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "seconds": self.seconds,
            "attributes": dict(self.attributes),
            "children": list(self.children),
        }

    def record(self) -> dict:
        """The flat JSONL form (no children — linked by ``parent_id``)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "ts": self.ts,
            "seconds": self.seconds,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.seconds * 1e3:.3f} ms)"
        )


class TraceLog:
    """Bounded ring buffer of finished span records.

    Parameters
    ----------
    capacity:
        Maximum records retained in memory; the oldest record is
        evicted FIFO once full, counted in :attr:`dropped` (the same
        bounded-plus-eviction-counter idiom as the engine's FIFO
        memos) — a long-lived deployment cannot grow the log without
        bound.
    path:
        Optional JSONL file; every record is also appended (and
        flushed) there as it finishes, so ``python -m
        repro.monitor.dump path`` inspects a live service.  The file
        itself is *not* ring-bounded — rotate it externally like any
        log.
    """

    def __init__(self, capacity: int = 4096, path: Optional[str] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.path = path
        #: spans evicted from the ring since construction
        self.dropped = 0
        self._records: deque[dict] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._fh: Optional[IO[str]] = open(path, "a") if path else None

    def append(self, record: dict) -> None:
        """Retain one finished span record (thread-safe)."""
        with self._lock:
            if len(self._records) == self.capacity:
                self.dropped += 1
            self._records.append(record)
            if self._fh is not None:
                self._fh.write(json.dumps(record, default=_json_default) + "\n")
                self._fh.flush()

    def records(self, trace_id: Optional[str] = None) -> list[dict]:
        """Buffered records, oldest first, optionally for one trace."""
        with self._lock:
            records = list(self._records)
        if trace_id is None:
            return records
        return [r for r in records if r["trace_id"] == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids currently buffered, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.records():
            seen.setdefault(record["trace_id"], None)
        return list(seen)

    def clear(self) -> None:
        """Drop the buffered records (the JSONL file is untouched)."""
        with self._lock:
            self._records.clear()

    def close(self) -> None:
        """Close the JSONL file handle, if any."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __enter__(self) -> "TraceLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _SpanHandle:
    """The context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_parent", "_attributes", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, parent, attributes: dict):
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attributes = attributes
        self._span: Optional[Span] = None
        self._token = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        parent = self._parent
        if parent is None:
            parent = tracer._current.get()
        if isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif isinstance(parent, TraceContext):
            trace_id, parent_id = parent.trace_id, parent.span_id
            parent = None  # remote parent: nothing to aggregate into
        else:
            trace_id, parent_id, parent = _new_trace_id(), None, None
        span = Span(self._name, trace_id, _new_span_id(), parent_id, self._attributes)
        self._span = span
        self._parent = parent  # the local Span to aggregate into, or None
        self._token = tracer._current.set(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.seconds = time.perf_counter() - span.start_s
        if exc_type is not None:
            span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._current.reset(self._token)
        if isinstance(self._parent, Span):
            self._parent.children.append(span.summary())
        self._tracer._finish(span)
        return False


class _Activation:
    """Context manager installing a remote :class:`TraceContext`."""

    __slots__ = ("_tracer", "_ctx", "_token")

    def __init__(self, tracer: "Tracer", ctx: TraceContext) -> None:
        self._tracer = tracer
        self._ctx = ctx
        self._token = None

    def __enter__(self) -> TraceContext:
        self._token = self._tracer._current.set(self._ctx)
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._current.reset(self._token)
        return False


class Tracer:
    """Span factory and current-span bookkeeping.

    Parameters
    ----------
    log:
        Optional :class:`TraceLog`; every finished span's flat record
        is appended to it.
    hub:
        Optional :class:`~repro.monitor.telemetry.TelemetryHub`; every
        finished span's duration is recorded into the series
        ``span.{name}.seconds``.  Span *names* are a small fixed
        vocabulary (``engine.request``, ``engine.chunk``, ...), so
        this stays bounded-cardinality by construction.

    Notes
    -----
    The current span lives in a :class:`contextvars.ContextVar`:
    thread- and task-local.  Threads started *after* the var is set do
    not see it — that is why the engine passes ``parent=`` explicitly
    into chunk workers and the service calls :meth:`activate` with the
    request's carried :class:`TraceContext` on its worker threads.
    """

    enabled = True

    def __init__(self, log: Optional[TraceLog] = None, hub=None) -> None:
        self.log = log
        self.hub = hub
        self._current: ContextVar[Union[Span, TraceContext, None]] = ContextVar(
            "repro_current_span", default=None
        )

    # ------------------------------------------------------------------
    def span(self, name: str, parent=None, **attributes) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("engine.request") as sp:``.

        ``parent`` may be a live :class:`Span` (cross-thread
        parenting: the child's summary aggregates into it), a
        :class:`TraceContext` (cross-process/queue parenting: ids link
        but nothing aggregates), or ``None`` to use the calling
        context's current span — falling back to starting a fresh
        trace.
        """
        return _SpanHandle(self, name, parent, attributes)

    def activate(self, ctx: Optional[TraceContext]):
        """Install ``ctx`` as the current trace position for a block.

        The service worker's entry point: jobs carry their submitter's
        :class:`TraceContext`, and everything traced inside the
        ``with`` joins that trace.  ``None`` deactivates nothing and
        returns a no-op (jobs submitted outside any trace start their
        own).
        """
        if ctx is None:
            return _NULL_HANDLE
        return _Activation(self, ctx)

    def current(self) -> Optional[TraceContext]:
        """The calling context's trace position, as a portable context."""
        current = self._current.get()
        if current is None:
            return None
        if isinstance(current, Span):
            return current.context()
        return current

    # ------------------------------------------------------------------
    def _finish(self, span: Span) -> None:
        if self.log is not None:
            self.log.append(span.record())
        hub = self.hub
        if hub is not None:
            hub.record(f"span.{span.name}.seconds", span.seconds)


class _NullSpan:
    """Falsy, attribute-swallowing stand-in for a :class:`Span`."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass

    def context(self) -> None:
        return None

    def summary(self) -> None:
        return None


class _NullHandle:
    """Shared no-op context manager (one instance for the process)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_HANDLE = _NullHandle()


class NullTracer:
    """The zero-cost-when-off tracer: every call is a shared no-op.

    Installed by default on every engine; :meth:`span` and
    :meth:`activate` hand back one preallocated context manager, so an
    untraced request pays a method call and nothing else.
    """

    enabled = False
    log = None
    hub = None

    def span(self, name: str, parent=None, **attributes) -> _NullHandle:
        return _NULL_HANDLE

    def activate(self, ctx) -> _NullHandle:
        return _NULL_HANDLE

    def current(self) -> None:
        return None


#: The process-wide default tracer (engines share it until one of
#: their own is attached).
NOOP_TRACER = NullTracer()
