"""Monitoring and adaptive maintenance for long-lived deployments.

The paper's fast paths are tuned once — LSH width/bits/tables from a
one-shot relative-contrast estimate (Section 6.1), truncation ranks
from an epsilon target — but a production valuation service keeps
serving while its training set churns and its query distribution
shifts.  This package keeps such a deployment *self-maintaining*, in
three layers:

* :mod:`~repro.monitor.telemetry` — :class:`TelemetryHub`, the
  lock-safe stream registry (counters, rolling windows with
  :class:`Histogram` percentiles, query reservoirs) that backends, the
  engine, the cache, and the service publish into — shareable across
  several components via :meth:`TelemetryHub.labeled` views and
  exportable as Prometheus text or a JSON snapshot;
* :mod:`~repro.monitor.tracing` — :class:`Tracer` / :class:`Span`
  request tracing across facade, engine, chunk workers, kernels and
  backends, with a bounded :class:`TraceLog` (JSONL-backed; inspect
  with ``python -m repro.monitor.dump``) and a zero-cost
  :data:`NOOP_TRACER` default;
* :mod:`~repro.monitor.drift` — typed :class:`DriftSignal` s from
  detectors over those streams: size drift, tombstone pressure,
  reservoir-based contrast re-estimation, candidate-set-size shift,
  brute-force recall spot checks;
* :mod:`~repro.monitor.maintenance` — :class:`MaintenanceScheduler`,
  the background detect-plan-act loop executing re-tunes and
  compactions under the engine's exclusive lock, so valuations keep
  serving (bit-identically, on unchanged data) throughout;
* the live ops plane — :mod:`~repro.monitor.slo`
  (:class:`SLOTracker`: declarative objectives, error budgets,
  multi-window burn-rate alerts), :mod:`~repro.monitor.alerts`
  (:class:`AlertManager`: rules, dedup, JSONL/callback sinks),
  :mod:`~repro.monitor.profiler` (:class:`SamplingProfiler` and
  span-tree :func:`phase_attribution`), and
  :mod:`~repro.monitor.server` (:class:`ObservabilityServer`:
  ``/metrics`` ``/health`` ``/ready`` ``/slo`` ``/alerts``
  ``/profile`` over stdlib HTTP);
* :mod:`~repro.monitor.faults` — :class:`FaultInjector`, reversible
  fault injection (slow/failing shards, dropped jobs, crashed
  workers, clock skew) for chaos-testing the degradation ladder and
  the circuit breakers against real failure episodes.

The one-liner::

    from repro.monitor import attach_monitoring
    scheduler = attach_monitoring(engine, interval=30.0)

instruments an engine end to end and silences the LSH backend's
warned-refit escape hatch in favor of scheduled background re-tuning.
"""

from .alerts import (
    AlertManager,
    AlertRule,
    CounterIncreaseRule,
    JsonlSink,
    ThresholdRule,
    router_rules,
    service_rules,
)
from .drift import (
    CandidateDriftDetector,
    ContrastDriftDetector,
    DriftDetector,
    DriftSignal,
    RecallProxyDetector,
    SizeDriftDetector,
    TombstoneDetector,
    default_detectors,
)
from .faults import FaultInjector
from .maintenance import (
    MaintenanceEvent,
    MaintenanceScheduler,
    attach_monitoring,
)
from .profiler import SamplingProfiler, phase_attribution, phase_of
from .server import ObservabilityServer
from .slo import (
    DEFAULT_BURN_POLICIES,
    BurnPolicy,
    ErrorRateObjective,
    LatencyObjective,
    SLOTracker,
    parse_objective,
)
from .telemetry import Histogram, LabeledHub, Reservoir, TelemetryHub
from .tracing import (
    NOOP_TRACER,
    NullTracer,
    Span,
    TraceContext,
    TraceLog,
    Tracer,
)

__all__ = [
    "TelemetryHub",
    "LabeledHub",
    "Histogram",
    "Reservoir",
    "Tracer",
    "NullTracer",
    "NOOP_TRACER",
    "Span",
    "TraceContext",
    "TraceLog",
    "DriftSignal",
    "DriftDetector",
    "SizeDriftDetector",
    "TombstoneDetector",
    "ContrastDriftDetector",
    "CandidateDriftDetector",
    "RecallProxyDetector",
    "default_detectors",
    "MaintenanceEvent",
    "MaintenanceScheduler",
    "attach_monitoring",
    "SLOTracker",
    "LatencyObjective",
    "ErrorRateObjective",
    "BurnPolicy",
    "DEFAULT_BURN_POLICIES",
    "parse_objective",
    "AlertManager",
    "AlertRule",
    "ThresholdRule",
    "CounterIncreaseRule",
    "JsonlSink",
    "router_rules",
    "service_rules",
    "FaultInjector",
    "SamplingProfiler",
    "phase_attribution",
    "phase_of",
    "ObservabilityServer",
]
