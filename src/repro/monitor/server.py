"""A dependency-free HTTP observability endpoint for a served stack.

:class:`ObservabilityServer` binds a stdlib
:class:`~http.server.ThreadingHTTPServer` (default: loopback, an
ephemeral port) in front of whatever the deployment runs — a
:class:`~repro.engine.service.ValuationService`, a
:class:`~repro.engine.sharding.ShardRouter`, or a bare engine — and
serves the monitor package's surfaces over GET:

==============  ====================================================
``/metrics``    Prometheus text exposition of the attached hub
                (:meth:`TelemetryHub.export_text`); a shared labeled
                hub means one scrape covers the whole fleet
``/health``     liveness: 200 with uptime while the server runs
``/ready``      readiness of the *target*: 200 while it accepts work,
                503 after ``shutdown()``/``close()``
``/slo``        :meth:`SLOTracker.snapshot` — objectives, attainment,
                error budgets, per-policy burn rates and firing state
``/alerts``     :meth:`AlertManager.snapshot` — active alerts plus the
                recent notification history (evaluates first, so a
                scrape is also an evaluation heartbeat)
``/profile``    :meth:`SamplingProfiler.collapsed` text (or
                ``?format=json`` for the snapshot with the top table)
==============  ====================================================

Surfaces that were not attached answer 404 with a JSON hint, never a
crash; request counts land in the hub (``ops.http.<route>``).  The
server is for operators on a trusted network: it exposes telemetry
read-only, binds loopback by default, and serves no mutation of any
kind.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from ..stats import component_stats

__all__ = ["ObservabilityServer"]

_ENDPOINTS = ("/metrics", "/health", "/ready", "/slo", "/alerts", "/profile")


class ObservabilityServer:
    """Serve a hub/SLO/alerts/profiler bundle over loopback HTTP.

    Parameters
    ----------
    hub:
        The telemetry hub behind ``/metrics``.  Defaults to the
        target's attached ``telemetry`` when omitted.
    target:
        The served component behind ``/ready`` — anything exposing a
        boolean ``ready`` property (``ValuationService``,
        ``ShardRouter``) or nothing (always ready).
    slo, alerts, profiler:
        Optional :class:`~repro.monitor.slo.SLOTracker`,
        :class:`~repro.monitor.alerts.AlertManager`,
        :class:`~repro.monitor.profiler.SamplingProfiler` behind their
        endpoints.
    host, port:
        Bind address; port ``0`` (default) picks a free ephemeral port
        — read it back from :attr:`port` / :attr:`url`.

    ``start()``/``stop()`` or a ``with`` block manage the daemon
    serving thread.
    """

    def __init__(
        self,
        hub=None,
        target=None,
        slo=None,
        alerts=None,
        profiler=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if hub is None and target is not None:
            hub = getattr(target, "telemetry", None)
        self.hub = hub
        self.target = target
        self.slo = slo
        self.alerts = alerts
        self.profiler = profiler
        self.host = host
        self._requested_port = int(port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_monotonic: Optional[float] = None
        self._requests = 0
        self._errors = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _resilience(self) -> Optional[dict]:
        """The target's ``resilience()`` snapshot, when it exposes one."""
        probe = getattr(self.target, "resilience", None)
        if not callable(probe):
            return None
        try:
            snap = probe()
        except Exception:  # noqa: BLE001 - a probe bug must not break
            return None  # the endpoint; readiness falls back to `ready`
        return snap if isinstance(snap, dict) else None

    def _ready(self) -> tuple[bool, str]:
        target = self.target
        if target is None:
            return True, "no target attached; server alive"
        ready = getattr(target, "ready", None)
        if ready is None:
            return True, f"{type(target).__name__} exposes no readiness"
        if not ready:
            return False, f"{type(target).__name__} shut down"
        snap = self._resilience()
        if snap is not None:
            if snap.get("shedding"):
                return False, (
                    f"{type(target).__name__} admission control is "
                    f"shedding (queue_depth="
                    f"{snap.get('queue_depth', '?')}, "
                    f"max_queue={snap.get('max_queue', '?')})"
                )
            open_circuits = snap.get("open_circuits") or []
            if open_circuits:
                return False, (
                    f"{type(target).__name__} shard circuit(s) open: "
                    + ", ".join(str(c) for c in open_circuits)
                )
        return True, f"{type(target).__name__} accepting work"

    # ------------------------------------------------------------------
    def start(self) -> "ObservabilityServer":
        """Bind the socket and start the serving thread (idempotent)."""
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            # one scrape must not serialize behind a slow peer
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
                pass  # telemetry counts requests; stderr stays quiet

            def _send(
                self, status: int, body: bytes, content_type: str
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _send_json(self, status: int, payload: dict) -> None:
                body = json.dumps(payload, sort_keys=True).encode()
                self._send(status, body, "application/json")

            def do_GET(self):  # noqa: N802 - stdlib name
                try:
                    server._handle(self)
                except BrokenPipeError:  # peer went away mid-response
                    pass
                except Exception as exc:  # noqa: BLE001 - a handler bug
                    # answers 500 instead of killing the serving thread
                    with server._lock:
                        server._errors += 1
                    try:
                        self._send_json(500, {"error": repr(exc)})
                    except Exception:  # noqa: BLE001
                        pass

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._started_monotonic = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            daemon=True,
            name="observability-server",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        httpd, self._httpd = self._httpd, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(5.0)

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when ``port=0`` was asked)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(request.path)
        path = parsed.path.rstrip("/") or "/health"
        query = parse_qs(parsed.query)
        with self._lock:
            self._requests += 1
        if self.hub is not None:
            self.hub.count(f"ops.http.{path.lstrip('/')}")

        if path == "/metrics":
            if self.hub is None:
                request._send_json(404, {"error": "no telemetry hub attached"})
                return
            body = self.hub.export_text().encode()
            request._send(200, body, "text/plain; version=0.0.4")
        elif path == "/health":
            uptime = (
                time.monotonic() - self._started_monotonic
                if self._started_monotonic is not None
                else 0.0
            )
            payload = {
                "status": "ok",
                "uptime_seconds": uptime,
                "endpoints": list(_ENDPOINTS),
            }
            snap = self._resilience()
            if snap is not None:
                payload["resilience"] = snap
            request._send_json(200, payload)
        elif path == "/ready":
            ready, reason = self._ready()
            request._send_json(
                200 if ready else 503,
                {"status": "ready" if ready else "unready", "reason": reason},
            )
        elif path == "/slo":
            if self.slo is None:
                request._send_json(404, {"error": "no SLO tracker attached"})
                return
            request._send_json(200, self.slo.snapshot())
        elif path == "/alerts":
            if self.alerts is None:
                request._send_json(404, {"error": "no alert manager attached"})
                return
            self.alerts.evaluate()
            request._send_json(200, self.alerts.snapshot())
        elif path == "/profile":
            if self.profiler is None:
                request._send_json(404, {"error": "no profiler attached"})
                return
            if query.get("format", [""])[0] == "json":
                request._send_json(200, self.profiler.snapshot())
            else:
                body = (self.profiler.collapsed() + "\n").encode()
                request._send(200, body, "text/plain")
        else:
            with self._lock:
                self._errors += 1
            request._send_json(
                404,
                {"error": f"unknown path {path!r}", "endpoints": list(_ENDPOINTS)},
            )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Unified-schema snapshot of the endpoint."""
        with self._lock:
            counters = {"requests": self._requests, "errors": self._errors}
        return component_stats(
            "observability_server",
            counters=counters,
            gauges={
                "running": int(self._httpd is not None),
                "port": self.port,
                "surfaces": sum(
                    x is not None
                    for x in (self.hub, self.slo, self.alerts, self.profiler)
                ),
            },
        )
