"""Deterministic fault injection for chaos-testing the serving stack.

Resilience claims that are never exercised are fiction.  This module
is the harness the chaos suite (``tests/engine/test_resilience.py``)
and the ``examples/bursty_market.py`` smoke drive use to *prove* the
degradation ladder, the circuit breakers, and the shutdown paths: a
:class:`FaultInjector` patches live components in place — no
subclassing, no special test doubles — and restores every patch on
:meth:`clear` (or on ``with`` exit), so a fault is always a bounded
episode.

Supported faults map one-to-one onto the failure modes the serving
layer hardens against:

==================  ================================================
:meth:`slow_shard`   one :class:`~repro.engine.sharding.ShardRouter`
                     member answers late → hedged retries, breaker
                     trips, deadline propagation
:meth:`slow_engine`  a single engine answers late → queue builds,
                     the precision ladder engages
:meth:`fail_backend` an engine raises on every entry point → typed
                     shard errors, breaker opens
:meth:`drop_job`     a queued job vanishes without a worker seeing
                     it → ``shutdown()`` must settle the orphan
:meth:`crash_worker  the worker pool dies with work still queued →
s`                   queued jobs fail typed, never hang
:meth:`skew_clock`   an SLO tracker's clock jumps → burn windows
                     must not wedge the ladder down
==================  ================================================

Faults take an optional ``times``: the fault auto-expires after that
many triggerings (the patch stays in place but passes through), which
lets a test script a *transient* episode — e.g. "the shard is slow
for exactly 3 calls, then healthy" — and assert recovery.

Every injection and clear lands in the target's telemetry hub when
one is attached (``faults.injected`` / ``faults.cleared`` counters),
so a chaos run is legible in the same ``/metrics`` scrape operators
already watch.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Optional

from ..exceptions import ParameterError, ShardError

__all__ = ["FaultInjector"]


class _Fault:
    """One applied patch: the undo record plus the trigger budget."""

    def __init__(
        self,
        label: str,
        obj,
        attr: str,
        had_own: bool,
        original,
        times: Optional[int],
    ) -> None:
        self.label = label
        self.obj = obj
        self.attr = attr
        self.had_own = had_own
        self.original = original
        self.times = times  # None: until clear(); int: remaining triggers
        self.triggered = 0
        self.lock = threading.Lock()

    def consume(self) -> bool:
        """True while the fault should still apply (and count the hit)."""
        with self.lock:
            if self.times is not None and self.triggered >= self.times:
                return False
            self.triggered += 1
            return True

    def undo(self) -> None:
        if self.had_own:
            setattr(self.obj, self.attr, self.original)
        else:
            try:
                delattr(self.obj, self.attr)
            except AttributeError:
                pass


class FaultInjector:
    """Inject bounded, reversible faults into live serving components.

    Use as a context manager so no fault outlives its test::

        with FaultInjector() as chaos:
            chaos.slow_shard(router, 0, seconds=2.0, times=3)
            ...  # drive load, assert hedging/breaker behavior
        # all patches restored here

    The injector never touches private state destructively: every
    fault is an attribute patch recorded with enough information to
    restore the object exactly (including removing the instance
    attribute again when the original was a class method).
    """

    def __init__(self) -> None:
        self._faults: list[_Fault] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _hub_of(self, obj):
        return getattr(obj, "telemetry", None)

    def _count(self, obj, name: str) -> None:
        hub = self._hub_of(obj)
        if hub is not None:
            try:
                hub.count(name)
            except Exception:  # noqa: BLE001 - telemetry is best-effort
                pass

    def _patch(
        self, label: str, obj, attr: str, make, times: Optional[int]
    ) -> _Fault:
        if not hasattr(obj, attr):
            raise ParameterError(
                f"{type(obj).__name__} has no attribute {attr!r} to fault"
            )
        original = getattr(obj, attr)
        fault = _Fault(
            label, obj, attr, attr in vars(obj), original, times
        )
        setattr(obj, attr, make(original, fault))
        with self._lock:
            self._faults.append(fault)
        self._count(obj, "faults.injected")
        return fault

    # -- latency faults -------------------------------------------------
    def _slow_wrapper(self, seconds: float):
        def make(original, fault):
            def slow(*args, **kwargs):
                if fault.consume():
                    time.sleep(seconds)
                return original(*args, **kwargs)

            return slow

        return make

    def slow_engine(
        self, engine, seconds: float, times: Optional[int] = None
    ) -> "FaultInjector":
        """Delay every engine entry point (``value``/``retrieve``/
        ``distances``) by ``seconds`` for the next ``times`` calls."""
        if seconds < 0:
            raise ParameterError(f"seconds must be >= 0, got {seconds}")
        make = self._slow_wrapper(seconds)
        for attr in ("value", "retrieve", "distances"):
            if hasattr(engine, attr):
                self._patch(
                    f"slow_engine[{attr}]", engine, attr, make, times
                )
        return self

    def slow_shard(
        self,
        router,
        shard_idx: int,
        seconds: float,
        times: Optional[int] = None,
    ) -> "FaultInjector":
        """Delay one shard of a :class:`ShardRouter` — the canonical
        straggler: hedges should win, the breaker should eventually
        open if the delay exceeds the shard timeout."""
        shards = getattr(router, "shards", None)
        if not shards or not 0 <= shard_idx < len(shards):
            raise ParameterError(
                f"router has no shard index {shard_idx}"
            )
        return self.slow_engine(
            shards[shard_idx].engine, seconds, times=times
        )

    # -- failure faults -------------------------------------------------
    def fail_backend(
        self,
        engine,
        exc: Optional[Exception] = None,
        times: Optional[int] = None,
    ) -> "FaultInjector":
        """Make every engine entry point raise (default: a typed
        :class:`~repro.exceptions.ShardError`)."""
        error = exc if exc is not None else ShardError(
            "injected backend fault"
        )

        def make(original, fault):
            def failing(*args, **kwargs):
                if fault.consume():
                    raise error
                return original(*args, **kwargs)

            return failing

        for attr in ("value", "retrieve", "distances"):
            if hasattr(engine, attr):
                self._patch(
                    f"fail_backend[{attr}]", engine, attr, make, times
                )
        return self

    def fail_shard(
        self,
        router,
        shard_idx: int,
        exc: Optional[Exception] = None,
        times: Optional[int] = None,
    ) -> "FaultInjector":
        """Make one shard's engine raise on every entry point."""
        shards = getattr(router, "shards", None)
        if not shards or not 0 <= shard_idx < len(shards):
            raise ParameterError(
                f"router has no shard index {shard_idx}"
            )
        return self.fail_backend(
            shards[shard_idx].engine, exc=exc, times=times
        )

    # -- queue faults ---------------------------------------------------
    def drop_job(self, service):
        """Steal one queued job out of a
        :class:`~repro.engine.service.ValuationService` queue without
        any worker seeing it — the "lost write" a broken queue
        implementation would produce.  Returns the orphaned job (still
        ``status == "queued"``); ``service.shutdown()`` must settle
        it with a typed failure rather than hang."""
        import queue as _queue

        from ..engine.service import _SENTINEL

        q = service._queue
        stolen = []
        dropped = None
        try:
            while True:
                prio, seq, item = q.get_nowait()
                if dropped is None and item is not _SENTINEL:
                    dropped = item
                    q.task_done()
                else:
                    stolen.append((prio, seq, item))
        except _queue.Empty:
            pass
        for entry in stolen:
            # re-enqueue is a fresh put with its own unfinished-task
            # count; settle the steal's get_nowait or the service's
            # shutdown(wait=True) join never converges
            q.put(entry)
            q.task_done()
        if dropped is None:
            raise ParameterError("no queued job to drop")
        self._count(service, "faults.injected")
        return dropped

    def crash_workers(self, service, timeout: float = 5.0) -> "FaultInjector":
        """Kill the worker pool with work still queued: jump-the-queue
        sentinels make every worker exit before touching the backlog.
        ``service.shutdown()`` must then fail the queued jobs typed
        instead of blocking forever (the satellite fix)."""
        from ..engine.service import _SENTINEL

        for _ in service._workers:
            service._queue.put(
                (-math.inf, next(service._seq), _SENTINEL)
            )
        deadline = time.monotonic() + timeout
        for worker in service._workers:
            worker.join(max(0.0, deadline - time.monotonic()))
        if any(w.is_alive() for w in service._workers):
            raise ParameterError(
                f"workers did not exit within {timeout}s"
            )
        self._count(service, "faults.injected")
        return self

    # -- clock faults ---------------------------------------------------
    def skew_clock(
        self, target, offset_s: float, times: Optional[int] = None
    ) -> "FaultInjector":
        """Shift a clock-injectable component's time source by
        ``offset_s`` seconds (e.g. an :class:`SLOTracker`'s burn
        windows, a breaker's cooldown clock)."""

        def make(original: Callable[[], float], fault):
            def skewed() -> float:
                if fault.consume():
                    return original() + offset_s
                return original()

            return skewed

        self._patch("skew_clock", target, "clock", make, times)
        return self

    # ------------------------------------------------------------------
    def active(self) -> list[dict]:
        """The live faults: label, target type, trigger counts."""
        with self._lock:
            return [
                {
                    "label": f.label,
                    "target": type(f.obj).__name__,
                    "triggered": f.triggered,
                    "times": f.times,
                }
                for f in self._faults
            ]

    def clear(self) -> None:
        """Restore every patched attribute, newest first."""
        with self._lock:
            faults, self._faults = self._faults, []
        for fault in reversed(faults):
            fault.undo()
            self._count(fault.obj, "faults.cleared")

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.clear()
