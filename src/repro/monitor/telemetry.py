"""Lock-safe rolling telemetry for long-lived valuation deployments.

A production valuation service keeps serving while its data churns,
and the fast paths it serves with (LSH tables, truncation ranks) were
tuned against a distribution observed once, at fit time.  Detecting
that the deployment has drifted away from that snapshot needs *streams*
of runtime observations, not point measurements.  This module is the
collection side of the monitoring subsystem:

* :class:`TelemetryHub` — a thread-safe registry of named monotonic
  counters, rolling scalar windows (query latency, candidate-set
  sizes, recall proxies, merge timings), and row reservoirs, published
  into through a narrow API: :meth:`~TelemetryHub.count`,
  :meth:`~TelemetryHub.record`, :meth:`~TelemetryHub.observe`,
  :meth:`~TelemetryHub.consume`.  One hub can aggregate *several*
  engines/services/schedulers: :meth:`~TelemetryHub.labeled` returns a
  per-component view that prefixes every stream name (and consumed
  component name) with a label, so a sharded tier shares one hub with
  ``shard0.engine.request_seconds`` next to ``shard1.…``.
* :class:`Histogram` — fixed-bucket, log-spaced latency histograms
  beside every rolling series: p50/p95/p99 over the *whole* stream
  without retaining samples, the export shape Prometheus understands.
* :class:`Reservoir` — a uniform sample (Vitter's Algorithm R) over
  every row ever offered, bounded in memory.  The maintained query
  reservoir is what lets the drift layer re-estimate relative contrast
  (:func:`repro.lsh.contrast.estimate_relative_contrast`) on *current*
  traffic without retaining it all.

Export surfaces: :meth:`TelemetryHub.export_text` renders a
Prometheus-style text exposition and :meth:`TelemetryHub.export_json`
a JSON-serializable snapshot of the full hub state — the pull
endpoints a deployment scrapes.

Everything the hub holds is bounded: rolling windows by ``window``,
reservoirs by ``reservoir_size``, and the *number* of distinct
series/counters/reservoirs/components by ``max_*`` limits with FIFO
eviction (oldest-registered stream drops first) counted in the
``telemetry.evicted_*`` counters — the same bounded-plus-eviction-
counter idiom as the engine's FIFO memos, so a long-lived deployment
with pathological stream cardinality degrades measurably instead of
growing without bound.

Producers hold no references to detectors and vice versa: backends,
the engine, the cache, and the service publish named streams into the
hub; :mod:`repro.monitor.drift` reads them back out.  Publishing is a
few dict operations plus one histogram bucket increment under one lock
per call — cheap enough to leave on in the serving hot path (the
``bench_monitor`` gate holds the steady-state overhead under 5%).
"""

from __future__ import annotations

import re
import threading
from collections import deque

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng
from ..stats import component_stats

__all__ = ["Histogram", "LabeledHub", "Reservoir", "TelemetryHub"]


class Reservoir:
    """Bounded uniform sample of the rows offered so far (Algorithm R).

    After ``seen`` rows have been offered, each of them is present in
    the sample with probability ``capacity / seen`` — the classic
    single-pass reservoir.  Rows are copied on entry, so callers may
    reuse their buffers.

    Not thread-safe on its own; the owning :class:`TelemetryHub`
    serializes access.
    """

    def __init__(self, capacity: int, seed: SeedLike = None) -> None:
        if capacity <= 0:
            raise ParameterError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._rng = ensure_rng(seed)
        self._rows: list[np.ndarray] = []
        self.seen = 0

    def offer(self, rows: np.ndarray) -> None:
        """Feed a batch of rows through the reservoir.

        The steady-state path (reservoir already full) is vectorized —
        one RNG draw for the whole batch, then a Python loop only over
        the accepted rows (in expectation ``capacity * ln(...)`` of
        them, a vanishing fraction of a large stream) — because this
        runs under the hub lock on every served query batch.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        i = 0
        # fill phase: everything is kept until the reservoir is full
        while len(self._rows) < self.capacity and i < rows.shape[0]:
            self._rows.append(rows[i].copy())
            self.seen += 1
            i += 1
        rest = rows.shape[0] - i
        if rest <= 0:
            return
        # Algorithm R, batched: the t-th remaining row replaces a slot
        # with probability capacity / (seen + t), via one uniform draw
        # per row taken in a single vectorized call
        seen_at = self.seen + np.arange(1, rest + 1, dtype=np.float64)
        draws = np.floor(self._rng.random(rest) * seen_at).astype(np.intp)
        for t in np.flatnonzero(draws < self.capacity):
            self._rows[draws[t]] = rows[i + t].copy()
        self.seen += rest

    def sample(self) -> np.ndarray:
        """The current sample as a ``(m, d)`` matrix (``m`` may be 0)."""
        if not self._rows:
            return np.empty((0, 0), dtype=np.float64)
        return np.vstack(self._rows)

    def __len__(self) -> int:
        return len(self._rows)


class Histogram:
    """Fixed-bucket, log-spaced histogram of non-negative scalars.

    The memory-bounded dual of a latency sample: ``buckets_per_decade``
    log-spaced bucket upper edges from ``lo`` to ``hi`` (defaults: 1 µs
    to 1000 s at 4 buckets per decade — 37 buckets), one overflow
    bucket past ``hi``, plus exact all-time ``count``/``total`` and
    ``min``/``max``.  Values at or below ``lo`` land in the first
    bucket; a value is never dropped.

    :meth:`quantile` / :meth:`percentile` interpolate linearly inside
    the bucket containing the requested rank, so any quantile estimate
    is off by at most one bucket width — a factor of
    ``10^(1/buckets_per_decade)`` (≈1.78 at the default resolution),
    and exact at the observed ``min``/``max`` (estimates clamp into
    that range).  That trades a constant-factor tolerance for O(1)
    memory over an unbounded stream, which is the p99-under-churn
    question the monitor actually asks.

    Not thread-safe on its own; the owning hub (or service) serializes
    access.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(
        self,
        lo: float = 1e-6,
        hi: float = 1e3,
        buckets_per_decade: int = 4,
        bounds=None,
    ) -> None:
        if bounds is not None:
            bounds = np.asarray(bounds, dtype=np.float64)
            if bounds.ndim != 1 or bounds.size == 0:
                raise ParameterError("bounds must be a non-empty 1-d sequence")
            if np.any(np.diff(bounds) <= 0):
                raise ParameterError("bounds must be strictly increasing")
        else:
            if not 0 < lo < hi:
                raise ParameterError(
                    f"need 0 < lo < hi, got lo={lo}, hi={hi}"
                )
            if buckets_per_decade <= 0:
                raise ParameterError(
                    f"buckets_per_decade must be positive, got {buckets_per_decade}"
                )
            n_edges = int(np.ceil(np.log10(hi / lo) * buckets_per_decade)) + 1
            bounds = lo * 10.0 ** (np.arange(n_edges) / buckets_per_decade)
        self.bounds = bounds
        # counts[i] covers (bounds[i-1], bounds[i]]; counts[-1] is the
        # overflow bucket past bounds[-1]
        self.counts = np.zeros(bounds.size + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        """Bucket one observation (O(log n_buckets))."""
        v = float(value)
        self.counts[int(np.searchsorted(self.bounds, v, side="left"))] += 1
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        """Exact all-time mean (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"q must lie in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        cum = np.cumsum(self.counts)
        b = min(int(np.searchsorted(cum, target, side="left")), self.counts.size - 1)
        lo_edge = 0.0 if b == 0 else float(self.bounds[b - 1])
        hi_edge = (
            float(self.bounds[b]) if b < self.bounds.size else max(self.max, lo_edge)
        )
        prev = float(cum[b - 1]) if b > 0 else 0.0
        frac = (target - prev) / max(1, int(self.counts[b]))
        value = lo_edge + frac * (hi_edge - lo_edge)
        # the exact extremes are known: estimates never leave them
        return float(min(max(value, self.min), self.max))

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (``0 <= p <= 100``)."""
        return self.quantile(p / 100.0)

    def merge(self, other: "Histogram") -> "Histogram":
        """Absorb another histogram with identical bucket bounds.

        The shard-merge primitive: per-shard histograms sum exactly
        (bucket counts are additive), so a tier-level p99 needs no
        sample exchange.  Returns ``self``.
        """
        if self.bounds.size != other.bounds.size or not np.array_equal(
            self.bounds, other.bounds
        ):
            raise ParameterError("cannot merge histograms with different bounds")
        self.counts += other.counts
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def snapshot(self) -> dict:
        """JSON-serializable state: buckets, exact moments, percentiles."""
        empty = self.count == 0
        return {
            "count": int(self.count),
            "total": float(self.total),
            "mean": None if empty else float(self.mean),
            "min": None if empty else float(self.min),
            "max": None if empty else float(self.max),
            "bounds": [float(b) for b in self.bounds],
            "counts": [int(c) for c in self.counts],
            "p50": None if empty else self.percentile(50),
            "p95": None if empty else self.percentile(95),
            "p99": None if empty else self.percentile(99),
        }


class _Series:
    """A rolling window of scalars plus all-time count/sum/histogram."""

    __slots__ = ("window", "count", "total", "hist", "rollouts")

    def __init__(self, maxlen: int) -> None:
        self.window: deque = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0
        self.hist = Histogram()
        self.rollouts = 0

    def add(self, value: float) -> None:
        v = float(value)
        if len(self.window) == self.window.maxlen:
            self.rollouts += 1
        self.window.append(v)
        self.count += 1
        self.total += v
        self.hist.add(v)


def _prom_name(name: str) -> str:
    """Sanitize a dotted stream name into a Prometheus metric name."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_:]", "_", str(name))


def _plain(value):
    """Recursively coerce a stats payload to JSON-serializable types."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (bool, str)) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    return repr(value)


class TelemetryHub:
    """Named counters, rolling windows, and reservoirs behind one lock.

    Parameters
    ----------
    window:
        Rolling-window length for scalar series (:meth:`record`).
    reservoir_size:
        Row capacity of each reservoir (:meth:`observe`).
    seed:
        Seed for reservoir replacement draws (deterministic telemetry
        makes maintenance decisions reproducible in tests).
    max_series, max_counters, max_reservoirs, max_components:
        Caps on the number of *distinct* streams of each kind.  When a
        new name would exceed a cap, the oldest-registered stream of
        that kind is evicted FIFO and the matching
        ``telemetry.evicted_*`` counter (reported by :meth:`stats` and
        both exporters) is bumped.  Well-behaved producers use a fixed
        name vocabulary and never trip these; the caps exist so a
        misbehaving producer (e.g. ids interpolated into names)
        degrades the hub measurably instead of exhausting memory.
    """

    def __init__(
        self,
        window: int = 512,
        reservoir_size: int = 256,
        seed: SeedLike = 0,
        max_series: int = 1024,
        max_counters: int = 4096,
        max_reservoirs: int = 64,
        max_components: int = 256,
    ) -> None:
        if window <= 0:
            raise ParameterError(f"window must be positive, got {window}")
        if reservoir_size <= 0:
            raise ParameterError(
                f"reservoir_size must be positive, got {reservoir_size}"
            )
        for label, value in (
            ("max_series", max_series),
            ("max_counters", max_counters),
            ("max_reservoirs", max_reservoirs),
            ("max_components", max_components),
        ):
            if value <= 0:
                raise ParameterError(f"{label} must be positive, got {value}")
        self.window = int(window)
        self.reservoir_size = int(reservoir_size)
        self._seed = seed
        self.max_series = int(max_series)
        self.max_counters = int(max_counters)
        self.max_reservoirs = int(max_reservoirs)
        self.max_components = int(max_components)
        self._lock = threading.RLock()
        self._counters: dict[str, int] = {}
        self._series: dict[str, _Series] = {}
        self._reservoirs: dict[str, Reservoir] = {}
        self._components: dict[str, dict] = {}
        self._evictions = {
            "series": 0,
            "counters": 0,
            "reservoirs": 0,
            "components": 0,
        }

    # ------------------------------------------------------------------
    def _bound(self, table: dict, limit: int, kind: str) -> None:
        """FIFO-evict the oldest entries past ``limit`` (lock held)."""
        while len(table) > limit:
            table.pop(next(iter(table)))
            self._evictions[kind] += 1

    def labeled(self, label: str) -> "LabeledHub":
        """A view of this hub that prefixes every name with ``label.``.

        The multi-component attachment point: each engine/service/
        scheduler of a sharded tier gets ``hub.labeled("shard0")`` etc.
        and publishes through the same narrow API, so one hub (and one
        export endpoint) aggregates them all with disjoint stream
        names.  Reads through the view are prefixed the same way;
        whole-hub surfaces (:meth:`stats`, the exporters) delegate to
        the shared hub.
        """
        return LabeledHub(self, label)

    # ------------------------------------------------------------------
    # the narrow publishing API
    def count(self, name: str, n: int = 1) -> None:
        """Bump the monotonic counter ``name`` by ``n``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)
            self._bound(self._counters, self.max_counters, "counters")

    def record(self, name: str, value: float) -> None:
        """Append a scalar observation to the rolling series ``name``.

        Every series also feeds a :class:`Histogram`, so
        :meth:`percentile` answers over the *whole* stream while the
        window keeps only the newest ``window`` values.
        """
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = _Series(self.window)
                self._bound(self._series, self.max_series, "series")
            series.add(float(value))

    def observe(self, name: str, rows: np.ndarray) -> None:
        """Feed rows into the reservoir ``name`` (created on first use)."""
        with self._lock:
            reservoir = self._reservoirs.get(name)
            if reservoir is None:
                reservoir = self._reservoirs[name] = Reservoir(
                    self.reservoir_size, seed=self._seed
                )
                self._bound(self._reservoirs, self.max_reservoirs, "reservoirs")
            reservoir.offer(rows)

    def consume(self, stats: dict) -> None:
        """Ingest one component ``stats()`` snapshot (latest wins).

        Components keep their own cumulative counters; re-adding them
        on every consume would double-count, so the hub stores the most
        recent snapshot per component name instead.  Consumed snapshots
        surface in :meth:`stats` (under ``"components"``) and in both
        exporters with ``component.metric``-style names.
        """
        component = stats.get("component")
        if not component:
            raise ParameterError(
                "stats dict lacks the 'component' key of the unified schema"
            )
        with self._lock:
            self._components[str(component)] = stats
            self._bound(self._components, self.max_components, "components")

    # ------------------------------------------------------------------
    # the reading API (the drift layer)
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def series(self, name: str) -> np.ndarray:
        """Copy of the rolling window for ``name`` (empty if unknown)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return np.empty(0, dtype=np.float64)
            return np.asarray(series.window, dtype=np.float64)

    def mean(self, name: str, last: int | None = None) -> float:
        """Mean of the (tail of the) rolling window; NaN when empty."""
        values = self.series(name)
        if last is not None:
            values = values[-int(last):]
        return float(values.mean()) if values.size else float("nan")

    def last(self, name: str) -> float:
        """Most recent observation in series ``name``; NaN when empty."""
        with self._lock:
            series = self._series.get(name)
            if series is None or not series.window:
                return float("nan")
            return float(series.window[-1])

    def n_recorded(self, name: str) -> int:
        """All-time number of observations recorded into ``name``."""
        with self._lock:
            series = self._series.get(name)
            return 0 if series is None else series.count

    def histogram(self, name: str) -> Histogram | None:
        """The all-time :class:`Histogram` behind series ``name``."""
        with self._lock:
            series = self._series.get(name)
            return None if series is None else series.hist

    def percentile(self, name: str, p: float) -> float:
        """Estimated all-time percentile of series ``name``; NaN if unknown."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return float("nan")
            return series.hist.percentile(p)

    def reservoir(self, name: str) -> np.ndarray:
        """Current sample of reservoir ``name`` (``(0, 0)`` if unknown)."""
        with self._lock:
            reservoir = self._reservoirs.get(name)
            if reservoir is None:
                return np.empty((0, 0), dtype=np.float64)
            return reservoir.sample()

    def component(self, name: str) -> dict | None:
        """Latest consumed snapshot for ``name``, or ``None``."""
        with self._lock:
            return self._components.get(name)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The hub's own unified-schema snapshot.

        ``timings`` summarizes each rolling series as its window mean;
        ``gauges`` reports stream shapes; the latest consumed component
        snapshots ride along under ``"components"``; the FIFO-eviction
        counters appear as ``telemetry.evicted_*``.
        """
        with self._lock:
            timings = {
                name: (
                    float(np.mean(series.window)) if series.window else 0.0
                )
                for name, series in self._series.items()
            }
            gauges: dict = {
                f"reservoir.{name}": len(reservoir)
                for name, reservoir in self._reservoirs.items()
            }
            gauges["n_series"] = len(self._series)
            gauges["n_counters"] = len(self._counters)
            counters = dict(self._counters)
            counters.update(
                {
                    f"telemetry.evicted_{kind}": n
                    for kind, n in self._evictions.items()
                }
            )
            return component_stats(
                "telemetry_hub",
                counters=counters,
                timings=timings,
                gauges=gauges,
                components=dict(self._components),
            )

    # ------------------------------------------------------------------
    # export surfaces
    def export_json(self) -> dict:
        """The full hub state as one JSON-serializable dict.

        Counters, per-series summaries (window, all-time moments,
        histogram with percentiles), reservoir shapes, the latest
        consumed component snapshots, the configured limits, and the
        eviction counters — everything :mod:`json` can dump verbatim.
        """
        with self._lock:
            return {
                "schema": 1,
                "limits": {
                    "window": self.window,
                    "reservoir_size": self.reservoir_size,
                    "max_series": self.max_series,
                    "max_counters": self.max_counters,
                    "max_reservoirs": self.max_reservoirs,
                    "max_components": self.max_components,
                },
                "evictions": dict(self._evictions),
                "counters": dict(self._counters),
                "series": {
                    name: {
                        "count": series.count,
                        "total": float(series.total),
                        "mean": (
                            float(np.mean(series.window))
                            if series.window
                            else None
                        ),
                        "last": (
                            float(series.window[-1]) if series.window else None
                        ),
                        "rollouts": series.rollouts,
                        "window": [float(v) for v in series.window],
                        "histogram": series.hist.snapshot(),
                    }
                    for name, series in self._series.items()
                },
                "reservoirs": {
                    name: {
                        "rows": len(reservoir),
                        "seen": reservoir.seen,
                        "capacity": reservoir.capacity,
                    }
                    for name, reservoir in self._reservoirs.items()
                },
                "components": _plain(self._components),
            }

    def export_text(self) -> str:
        """Prometheus-style text exposition of the hub state.

        Dotted stream names sanitize to underscores under a ``repro_``
        namespace: counters as ``*_total``, series as cumulative-bucket
        histograms (``*_bucket{le="..."}`` / ``*_sum`` / ``*_count``,
        plus the exact observed extremes as ``*_min`` / ``*_max``
        gauges), reservoir and eviction state as gauges/counters, and the
        latest consumed component snapshots flattened to
        ``repro_<component>_<metric>`` — so one scrape of a shared hub
        covers every attached component.
        """
        with self._lock:
            counters = dict(self._counters)
            for kind, n in self._evictions.items():
                counters[f"telemetry.evicted_{kind}"] = n
            series = {
                name: (
                    s.hist.bounds.copy(),
                    s.hist.counts.copy(),
                    s.hist.total,
                    s.hist.min,
                    s.hist.max,
                )
                for name, s in self._series.items()
            }
            reservoirs = {
                name: (len(r), r.seen) for name, r in self._reservoirs.items()
            }
            components = _plain(self._components)

        lines: list[str] = []
        for name in sorted(counters):
            metric = _prom_name(name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counters[name]}")
        for name in sorted(series):
            bounds, bucket_counts, total, observed_min, observed_max = series[name]
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} histogram")
            cum = 0
            for bound, c in zip(bounds, bucket_counts[:-1]):
                cum += int(c)
                lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cum}')
            cum += int(bucket_counts[-1])
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cum}')
            lines.append(f"{metric}_sum {total:.9g}")
            lines.append(f"{metric}_count {cum}")
            if cum > 0:
                # the exact observed extremes ride along as gauges, so
                # a scraped percentile report can pin its tails to the
                # real min/max instead of clamping to bucket edges
                lines.append(f"# TYPE {metric}_min gauge")
                lines.append(f"{metric}_min {observed_min:.9g}")
                lines.append(f"# TYPE {metric}_max gauge")
                lines.append(f"{metric}_max {observed_max:.9g}")
        for name in sorted(reservoirs):
            rows, seen = reservoirs[name]
            metric = _prom_name(f"reservoir.{name}")
            lines.append(f"# TYPE {metric}_rows gauge")
            lines.append(f"{metric}_rows {rows}")
            lines.append(f"{metric}_seen_total {seen}")
        for comp_name in sorted(components):
            snapshot = components[comp_name]
            for key in sorted(snapshot.get("counters", {})):
                metric = _prom_name(f"{comp_name}.{key}") + "_total"
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {int(snapshot['counters'][key])}")
            for table in ("timings", "gauges"):
                for key in sorted(snapshot.get(table, {})):
                    value = snapshot[table][key]
                    if not isinstance(value, (int, float)):
                        continue
                    metric = _prom_name(f"{comp_name}.{key}")
                    lines.append(f"# TYPE {metric} gauge")
                    lines.append(f"{metric} {float(value):.9g}")
        return "\n".join(lines) + "\n"


class LabeledHub:
    """A per-component view over a shared :class:`TelemetryHub`.

    Produced by :meth:`TelemetryHub.labeled`.  Exposes the hub's full
    narrow API with every stream name — and every consumed snapshot's
    component name — prefixed ``label.``, so several engines, services
    and schedulers publish into one hub without stream collisions.
    Nested views compose (``hub.labeled("a").labeled("b")`` prefixes
    ``a.b.``); whole-hub surfaces (:meth:`stats`,
    :meth:`export_text`, :meth:`export_json`) delegate to the shared
    hub unprefixed, because they describe the aggregate.
    """

    def __init__(self, hub, label: str) -> None:
        if not label or not isinstance(label, str):
            raise ParameterError(f"label must be a non-empty string, got {label!r}")
        if label.endswith(".") or label.startswith("."):
            raise ParameterError(f"label must not start/end with '.', got {label!r}")
        if isinstance(hub, LabeledHub):
            label = f"{hub.label}.{label}"
            hub = hub.hub
        self.hub: TelemetryHub = hub
        self.label = label

    def _name(self, name: str) -> str:
        return f"{self.label}.{name}"

    def labeled(self, label: str) -> "LabeledHub":
        """A further-nested view (prefixes compose)."""
        return LabeledHub(self, label)

    # narrow publishing API, prefixed --------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.hub.count(self._name(name), n)

    def record(self, name: str, value: float) -> None:
        self.hub.record(self._name(name), value)

    def observe(self, name: str, rows) -> None:
        self.hub.observe(self._name(name), rows)

    def consume(self, stats: dict) -> None:
        component = stats.get("component")
        if not component:
            raise ParameterError(
                "stats dict lacks the 'component' key of the unified schema"
            )
        stats = dict(stats)
        stats["component"] = self._name(str(component))
        self.hub.consume(stats)

    # reading API, prefixed ------------------------------------------
    def counter(self, name: str) -> int:
        return self.hub.counter(self._name(name))

    def series(self, name: str):
        return self.hub.series(self._name(name))

    def mean(self, name: str, last: int | None = None) -> float:
        return self.hub.mean(self._name(name), last=last)

    def last(self, name: str) -> float:
        return self.hub.last(self._name(name))

    def n_recorded(self, name: str) -> int:
        return self.hub.n_recorded(self._name(name))

    def histogram(self, name: str):
        return self.hub.histogram(self._name(name))

    def percentile(self, name: str, p: float) -> float:
        return self.hub.percentile(self._name(name), p)

    def reservoir(self, name: str):
        return self.hub.reservoir(self._name(name))

    def component(self, name: str):
        return self.hub.component(self._name(name))

    # whole-hub surfaces delegate unprefixed -------------------------
    def stats(self) -> dict:
        return self.hub.stats()

    def export_text(self) -> str:
        return self.hub.export_text()

    def export_json(self) -> dict:
        return self.hub.export_json()
