"""Lock-safe rolling telemetry for long-lived valuation deployments.

A production valuation service keeps serving while its data churns,
and the fast paths it serves with (LSH tables, truncation ranks) were
tuned against a distribution observed once, at fit time.  Detecting
that the deployment has drifted away from that snapshot needs *streams*
of runtime observations, not point measurements.  This module is the
collection side of the monitoring subsystem:

* :class:`TelemetryHub` — a thread-safe registry of named monotonic
  counters, rolling scalar windows (query latency, candidate-set
  sizes, recall proxies, merge timings), and row reservoirs, published
  into through a narrow API: :meth:`~TelemetryHub.count`,
  :meth:`~TelemetryHub.record`, :meth:`~TelemetryHub.observe`.
* :class:`Reservoir` — a uniform sample (Vitter's Algorithm R) over
  every row ever offered, bounded in memory.  The maintained query
  reservoir is what lets the drift layer re-estimate relative contrast
  (:func:`repro.lsh.contrast.estimate_relative_contrast`) on *current*
  traffic without retaining it all.

Producers hold no references to detectors and vice versa: backends,
the engine, the cache, and the service publish named streams into the
hub; :mod:`repro.monitor.drift` reads them back out.  Publishing is a
few dict operations under one lock per call — cheap enough to leave on
in the serving hot path (the ``bench_monitor`` gate holds the
steady-state overhead under 5%).
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng
from ..stats import component_stats

__all__ = ["Reservoir", "TelemetryHub"]


class Reservoir:
    """Bounded uniform sample of the rows offered so far (Algorithm R).

    After ``seen`` rows have been offered, each of them is present in
    the sample with probability ``capacity / seen`` — the classic
    single-pass reservoir.  Rows are copied on entry, so callers may
    reuse their buffers.

    Not thread-safe on its own; the owning :class:`TelemetryHub`
    serializes access.
    """

    def __init__(self, capacity: int, seed: SeedLike = None) -> None:
        if capacity <= 0:
            raise ParameterError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._rng = ensure_rng(seed)
        self._rows: list[np.ndarray] = []
        self.seen = 0

    def offer(self, rows: np.ndarray) -> None:
        """Feed a batch of rows through the reservoir.

        The steady-state path (reservoir already full) is vectorized —
        one RNG draw for the whole batch, then a Python loop only over
        the accepted rows (in expectation ``capacity * ln(...)`` of
        them, a vanishing fraction of a large stream) — because this
        runs under the hub lock on every served query batch.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        i = 0
        # fill phase: everything is kept until the reservoir is full
        while len(self._rows) < self.capacity and i < rows.shape[0]:
            self._rows.append(rows[i].copy())
            self.seen += 1
            i += 1
        rest = rows.shape[0] - i
        if rest <= 0:
            return
        # Algorithm R, batched: the t-th remaining row replaces a slot
        # with probability capacity / (seen + t), via one uniform draw
        # per row taken in a single vectorized call
        seen_at = self.seen + np.arange(1, rest + 1, dtype=np.float64)
        draws = np.floor(self._rng.random(rest) * seen_at).astype(np.intp)
        for t in np.flatnonzero(draws < self.capacity):
            self._rows[draws[t]] = rows[i + t].copy()
        self.seen += rest

    def sample(self) -> np.ndarray:
        """The current sample as a ``(m, d)`` matrix (``m`` may be 0)."""
        if not self._rows:
            return np.empty((0, 0), dtype=np.float64)
        return np.vstack(self._rows)

    def __len__(self) -> int:
        return len(self._rows)


class _Series:
    """A rolling window of scalars plus all-time count/sum."""

    __slots__ = ("window", "count", "total")

    def __init__(self, maxlen: int) -> None:
        self.window: deque = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0

    def add(self, value: float) -> None:
        self.window.append(value)
        self.count += 1
        self.total += value


class TelemetryHub:
    """Named counters, rolling windows, and reservoirs behind one lock.

    Parameters
    ----------
    window:
        Rolling-window length for scalar series (:meth:`record`).
    reservoir_size:
        Row capacity of each reservoir (:meth:`observe`).
    seed:
        Seed for reservoir replacement draws (deterministic telemetry
        makes maintenance decisions reproducible in tests).
    """

    def __init__(
        self,
        window: int = 512,
        reservoir_size: int = 256,
        seed: SeedLike = 0,
    ) -> None:
        if window <= 0:
            raise ParameterError(f"window must be positive, got {window}")
        if reservoir_size <= 0:
            raise ParameterError(
                f"reservoir_size must be positive, got {reservoir_size}"
            )
        self.window = int(window)
        self.reservoir_size = int(reservoir_size)
        self._seed = seed
        self._lock = threading.RLock()
        self._counters: dict[str, int] = {}
        self._series: dict[str, _Series] = {}
        self._reservoirs: dict[str, Reservoir] = {}
        self._components: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # the narrow publishing API
    def count(self, name: str, n: int = 1) -> None:
        """Bump the monotonic counter ``name`` by ``n``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    def record(self, name: str, value: float) -> None:
        """Append a scalar observation to the rolling series ``name``."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = _Series(self.window)
            series.add(float(value))

    def observe(self, name: str, rows: np.ndarray) -> None:
        """Feed rows into the reservoir ``name`` (created on first use)."""
        with self._lock:
            reservoir = self._reservoirs.get(name)
            if reservoir is None:
                reservoir = self._reservoirs[name] = Reservoir(
                    self.reservoir_size, seed=self._seed
                )
            reservoir.offer(rows)

    def consume(self, stats: dict) -> None:
        """Ingest one component ``stats()`` snapshot (latest wins).

        Components keep their own cumulative counters; re-adding them
        on every consume would double-count, so the hub stores the most
        recent snapshot per component name instead.
        """
        component = stats.get("component")
        if not component:
            raise ParameterError(
                "stats dict lacks the 'component' key of the unified schema"
            )
        with self._lock:
            self._components[str(component)] = stats

    # ------------------------------------------------------------------
    # the reading API (the drift layer)
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def series(self, name: str) -> np.ndarray:
        """Copy of the rolling window for ``name`` (empty if unknown)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return np.empty(0, dtype=np.float64)
            return np.asarray(series.window, dtype=np.float64)

    def mean(self, name: str, last: int | None = None) -> float:
        """Mean of the (tail of the) rolling window; NaN when empty."""
        values = self.series(name)
        if last is not None:
            values = values[-int(last):]
        return float(values.mean()) if values.size else float("nan")

    def last(self, name: str) -> float:
        """Most recent observation in series ``name``; NaN when empty."""
        with self._lock:
            series = self._series.get(name)
            if series is None or not series.window:
                return float("nan")
            return float(series.window[-1])

    def n_recorded(self, name: str) -> int:
        """All-time number of observations recorded into ``name``."""
        with self._lock:
            series = self._series.get(name)
            return 0 if series is None else series.count

    def reservoir(self, name: str) -> np.ndarray:
        """Current sample of reservoir ``name`` (``(0, 0)`` if unknown)."""
        with self._lock:
            reservoir = self._reservoirs.get(name)
            if reservoir is None:
                return np.empty((0, 0), dtype=np.float64)
            return reservoir.sample()

    def component(self, name: str) -> dict | None:
        """Latest consumed snapshot for ``name``, or ``None``."""
        with self._lock:
            return self._components.get(name)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The hub's own unified-schema snapshot.

        ``timings`` summarizes each rolling series as its window mean;
        ``gauges`` reports stream shapes; the latest consumed component
        snapshots ride along under ``"components"``.
        """
        with self._lock:
            timings = {
                name: (
                    float(np.mean(series.window)) if series.window else 0.0
                )
                for name, series in self._series.items()
            }
            gauges: dict = {
                f"reservoir.{name}": len(reservoir)
                for name, reservoir in self._reservoirs.items()
            }
            gauges["n_series"] = len(self._series)
            gauges["n_counters"] = len(self._counters)
            return component_stats(
                "telemetry_hub",
                counters=dict(self._counters),
                timings=timings,
                gauges=gauges,
                components=dict(self._components),
            )
