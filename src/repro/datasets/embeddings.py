"""Calibrated stand-ins for the paper's deep-feature datasets.

The paper's experiments use deep features of five image corpora.  We
cannot ship those features, but the valuation algorithms only see the
data through distance ranks and relative contrast, so each dataset is
replaced by a class-conditional Gaussian embedding whose *dimension*
matches the original feature extractor and whose *relative contrast*
is calibrated to the value the paper reports (Figure 7 / Figure 9):

======================  =========  ==========  ===================
paper dataset           dimension  # classes   target contrast
======================  =========  ==========  ===================
dog-fish (Inception)    2048       2           low  (~1.17 @ K*=100)
MNIST deep features     1024       10          high (~1.57 @ K*=100)
MNIST gist features     960        10          mid  (~1.48 @ K*=100)
CIFAR-10 (ResNet-50)    2048       10          ~1.28 @ K=1
ImageNet (ResNet-50)    2048       100*        ~1.22 @ K=1
Yahoo10m                4096       10          ~1.35 @ K=1
======================  =========  ==========  ===================

(*1000 in the paper; reduced so benchmark-scale training sets still
contain several points per class.)

Contrast is controlled by the ``separation / noise`` ratio (higher →
peakier within-class distances → higher contrast) and by dimension
(higher → distance concentration → lower contrast).  The defaults were
calibrated empirically at the benchmark training sizes; tests assert
the *ordering* deep > gist > dog-fish that Figure 9 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..exceptions import ParameterError
from ..rng import SeedLike
from ..types import Dataset
from .synthetic import gaussian_blobs

__all__ = [
    "EmbeddingSpec",
    "EMBEDDING_SPECS",
    "make_embedding_dataset",
    "dogfish_like",
    "mnist_deep_like",
    "mnist_gist_like",
    "cifar10_like",
    "imagenet_like",
    "yahoo10m_like",
]


@dataclass(frozen=True)
class EmbeddingSpec:
    """Generator recipe for one paper-dataset stand-in."""

    name: str
    n_features: int
    n_classes: int
    separation: float
    noise: float
    description: str


EMBEDDING_SPECS: Dict[str, EmbeddingSpec] = {
    "dogfish": EmbeddingSpec(
        name="dogfish",
        n_features=2048,
        n_classes=2,
        separation=1.6,
        noise=1.0,
        description="dog-fish Inception-v3 stand-in: 2 classes, low contrast",
    ),
    "mnist-deep": EmbeddingSpec(
        name="mnist-deep",
        n_features=64,
        n_classes=10,
        separation=4.5,
        noise=1.0,
        description="MNIST convnet-feature stand-in: compact, high contrast",
    ),
    "mnist-gist": EmbeddingSpec(
        name="mnist-gist",
        n_features=512,
        n_classes=10,
        separation=3.0,
        noise=1.0,
        description="MNIST gist-feature stand-in: mid contrast",
    ),
    "cifar10": EmbeddingSpec(
        name="cifar10",
        n_features=256,
        n_classes=10,
        separation=5.5,
        noise=1.0,
        description="CIFAR-10 ResNet-50 stand-in (1NN ~0.86, contrast ~1.17)",
    ),
    "imagenet": EmbeddingSpec(
        name="imagenet",
        n_features=256,
        n_classes=20,
        separation=5.5,
        noise=1.0,
        description=(
            "ImageNet ResNet-50 stand-in (reduced classes; lowest "
            "contrast of the Fig 7 trio, 1NN ~0.79)"
        ),
    ),
    "yahoo10m": EmbeddingSpec(
        name="yahoo10m",
        n_features=128,
        n_classes=10,
        separation=6.0,
        noise=1.0,
        description=(
            "Yahoo10m deep-feature stand-in (highest contrast of the "
            "Fig 7 trio, 1NN ~0.98)"
        ),
    ),
}


def make_embedding_dataset(
    spec_name: str,
    n_train: int,
    n_test: int,
    seed: SeedLike = None,
) -> Dataset:
    """Instantiate a calibrated stand-in dataset by spec name."""
    try:
        spec = EMBEDDING_SPECS[spec_name]
    except KeyError:
        raise ParameterError(
            f"unknown embedding spec {spec_name!r}; available: "
            f"{sorted(EMBEDDING_SPECS)}"
        ) from None
    return gaussian_blobs(
        n_train=n_train,
        n_test=n_test,
        n_classes=spec.n_classes,
        n_features=spec.n_features,
        separation=spec.separation,
        noise=spec.noise,
        name=spec.name,
        seed=seed,
    )


def _maker(spec_name: str) -> Callable[..., Dataset]:
    def make(n_train: int, n_test: int, seed: SeedLike = None) -> Dataset:
        return make_embedding_dataset(spec_name, n_train, n_test, seed=seed)

    make.__name__ = f"{spec_name.replace('-', '_')}_like"
    make.__doc__ = (
        f"Stand-in for the paper's {spec_name} dataset: "
        f"{EMBEDDING_SPECS[spec_name].description}."
    )
    return make


dogfish_like = _maker("dogfish")
mnist_deep_like = _maker("mnist-deep")
mnist_gist_like = _maker("mnist-gist")
cifar10_like = _maker("cifar10")
imagenet_like = _maker("imagenet")
yahoo10m_like = _maker("yahoo10m")
