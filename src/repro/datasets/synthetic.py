"""Synthetic dataset generators.

The paper evaluates on deep features extracted from public image
corpora.  Every algorithm here touches data only through (a) distance
*ranks* and (b) the *relative contrast* of the distance distribution —
so class-conditional Gaussian embeddings with controllable dimension,
class separation and noise reproduce the relevant structure (see
DESIGN.md, "Substitutions").

:func:`gaussian_blobs` is the workhorse; :func:`regression_dataset`
produces a smooth regression target for the Theorem 6 experiments, and
:func:`inject_label_noise` flips labels to create the "low-value
points" the valuation methods are supposed to flag.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng
from ..types import Dataset, GroupedDataset

__all__ = [
    "gaussian_blobs",
    "regression_dataset",
    "inject_label_noise",
    "assign_sellers",
    "train_test_split",
]


def gaussian_blobs(
    n_train: int,
    n_test: int,
    n_classes: int = 2,
    n_features: int = 32,
    separation: float = 2.0,
    noise: float = 1.0,
    name: str = "blobs",
    seed: SeedLike = None,
) -> Dataset:
    """Class-conditional Gaussian embedding dataset.

    Each class gets a mean vector drawn on a sphere of radius
    ``separation``; points are the mean plus isotropic N(0, noise^2)
    noise.  Raising ``separation / noise`` raises the relative
    contrast; raising ``n_features`` at fixed separation lowers it
    (distance concentration), which is how the "gist-like" and
    "dog-fish-like" variants in :mod:`repro.datasets.embeddings` are
    produced.

    Parameters
    ----------
    n_train, n_test:
        Split sizes.  Test labels follow the same mixture.
    n_classes:
        Number of classes (uniform mixture).
    n_features:
        Embedding dimension.
    separation:
        Radius of the sphere the class means live on.
    noise:
        Within-class standard deviation.
    name:
        Dataset name recorded on the result.
    seed:
        Generator seed.
    """
    if n_train <= 0 or n_test <= 0:
        raise ParameterError("n_train and n_test must be positive")
    if n_classes < 2:
        raise ParameterError(f"need at least 2 classes, got {n_classes}")
    if noise <= 0:
        raise ParameterError(f"noise must be positive, got {noise}")
    rng = ensure_rng(seed)
    means = rng.standard_normal((n_classes, n_features))
    means /= np.linalg.norm(means, axis=1, keepdims=True)
    means *= separation

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        x = means[labels] + noise * rng.standard_normal((n, n_features))
        return x, labels

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return Dataset(
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        name=name,
    )


def regression_dataset(
    n_train: int,
    n_test: int,
    n_features: int = 8,
    noise: float = 0.1,
    name: str = "regression",
    seed: SeedLike = None,
) -> Dataset:
    """Smooth nonlinear regression target on Gaussian features.

    ``y = sin(w . x) + 0.5 * (v . x)^2 / d + noise`` — locally smooth,
    so nearby points have similar targets and KNN regression is a
    sensible model (the precondition for Theorem 6's values to be
    interesting).
    """
    if n_train <= 0 or n_test <= 0:
        raise ParameterError("n_train and n_test must be positive")
    rng = ensure_rng(seed)
    w = rng.standard_normal(n_features) / np.sqrt(n_features)
    v = rng.standard_normal(n_features) / np.sqrt(n_features)

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        x = rng.standard_normal((n, n_features))
        y = (
            np.sin(x @ w)
            + 0.5 * (x @ v) ** 2 / n_features
            + noise * rng.standard_normal(n)
        )
        return x, y

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return Dataset(
        x_train=x_train,
        y_train=y_train.astype(np.float64),
        x_test=x_test,
        y_test=y_test.astype(np.float64),
        name=name,
    )


def inject_label_noise(
    dataset: Dataset, fraction: float, seed: SeedLike = None
) -> tuple[Dataset, np.ndarray]:
    """Flip a fraction of training labels to a different class.

    Returns the corrupted dataset and the indices that were flipped.
    Used by the mislabel-detection example: flipped points should
    receive low (often negative) Shapley values.
    """
    if not 0 <= fraction <= 1:
        raise ParameterError(f"fraction must lie in [0, 1], got {fraction}")
    rng = ensure_rng(seed)
    y = np.array(dataset.y_train, copy=True)
    classes = np.unique(y)
    if classes.size < 2:
        raise ParameterError("label noise needs at least two classes")
    n_flip = int(round(fraction * y.shape[0]))
    flip_idx = rng.choice(y.shape[0], size=n_flip, replace=False)
    for i in flip_idx:
        choices = classes[classes != y[i]]
        y[i] = rng.choice(choices)
    corrupted = Dataset(
        x_train=dataset.x_train,
        y_train=y,
        x_test=dataset.x_test,
        y_test=dataset.y_test,
        name=f"{dataset.name}-noisy",
    )
    return corrupted, np.sort(flip_idx)


def assign_sellers(
    dataset: Dataset, n_sellers: int, seed: SeedLike = None
) -> GroupedDataset:
    """Randomly partition training points among ``n_sellers`` sellers.

    Every seller receives at least one point (the first ``n_sellers``
    points are dealt round-robin, the rest uniformly).
    """
    if n_sellers <= 0:
        raise ParameterError(f"n_sellers must be positive, got {n_sellers}")
    n = dataset.n_train
    if n_sellers > n:
        raise ParameterError(
            f"cannot split {n} points among {n_sellers} sellers"
        )
    rng = ensure_rng(seed)
    groups = np.concatenate(
        [
            np.arange(n_sellers, dtype=np.intp),
            rng.integers(0, n_sellers, size=n - n_sellers),
        ]
    )
    rng.shuffle(groups)
    return GroupedDataset(dataset=dataset, groups=groups)


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    name: str = "split",
    seed: SeedLike = None,
) -> Dataset:
    """Shuffle and split a feature/label pair into a :class:`Dataset`."""
    if not 0 < test_fraction < 1:
        raise ParameterError(
            f"test_fraction must lie in (0, 1), got {test_fraction}"
        )
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y)
    n = x.shape[0]
    n_test = max(1, int(round(test_fraction * n)))
    if n_test >= n:
        raise ParameterError("split leaves no training data")
    rng = ensure_rng(seed)
    perm = rng.permutation(n)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return Dataset(
        x_train=x[train_idx],
        y_train=y[train_idx],
        x_test=x[test_idx],
        y_test=y[test_idx],
        name=name,
    )
