"""Dataset generators: synthetic embeddings calibrated to the paper's corpora."""

from .embeddings import (
    EMBEDDING_SPECS,
    EmbeddingSpec,
    cifar10_like,
    dogfish_like,
    imagenet_like,
    make_embedding_dataset,
    mnist_deep_like,
    mnist_gist_like,
    yahoo10m_like,
)
from .iris import iris_like
from .synthetic import (
    assign_sellers,
    gaussian_blobs,
    inject_label_noise,
    regression_dataset,
    train_test_split,
)

__all__ = [
    "gaussian_blobs",
    "regression_dataset",
    "inject_label_noise",
    "assign_sellers",
    "train_test_split",
    "EmbeddingSpec",
    "EMBEDDING_SPECS",
    "make_embedding_dataset",
    "dogfish_like",
    "mnist_deep_like",
    "mnist_gist_like",
    "cifar10_like",
    "imagenet_like",
    "yahoo10m_like",
    "iris_like",
]
