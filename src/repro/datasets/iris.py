"""An Iris-like 3-class, 4-feature dataset (for the Figure 16 experiment).

Figure 16 of the paper compares KNN Shapley values against logistic-
regression Shapley values on Iris, claiming only that the two are
*correlated*.  Any low-dimensional dataset with Iris' qualitative
structure — one linearly separable class and two partially overlapping
ones — exercises that claim, so we generate one rather than ship UCI
data.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..rng import SeedLike, ensure_rng
from ..types import Dataset

__all__ = ["iris_like"]

# Class means chosen to mimic Iris' geometry: class 0 well separated,
# classes 1 and 2 adjacent with overlap along two of the four features.
_CLASS_MEANS = np.array(
    [
        [5.0, 3.4, 1.5, 0.2],
        [5.9, 2.8, 4.3, 1.3],
        [6.6, 3.0, 5.6, 2.0],
    ]
)
_CLASS_STDS = np.array(
    [
        [0.35, 0.38, 0.17, 0.10],
        [0.52, 0.31, 0.47, 0.20],
        [0.64, 0.32, 0.55, 0.27],
    ]
)


def iris_like(
    n_train: int = 120,
    n_test: int = 30,
    seed: SeedLike = None,
) -> Dataset:
    """Generate an Iris-like dataset (3 balanced classes, 4 features).

    Parameters
    ----------
    n_train, n_test:
        Split sizes; classes are balanced up to rounding.
    seed:
        Generator seed.
    """
    if n_train < 3 or n_test < 3:
        raise ParameterError("need at least one point per class per split")
    rng = ensure_rng(seed)

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = np.arange(n) % 3
        rng.shuffle(labels)
        x = _CLASS_MEANS[labels] + _CLASS_STDS[labels] * rng.standard_normal(
            (n, 4)
        )
        return x, labels

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return Dataset(
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        name="iris-like",
    )
