"""Seeding helpers.

Every stochastic routine in the library accepts a ``seed`` argument that
may be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalizes all three
forms so algorithm code never touches global numpy random state.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["ensure_rng", "SeedLike", "spawn"]

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged, which lets a
    caller thread one generator through a pipeline of stochastic steps
    and keep the whole pipeline reproducible from a single integer.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used by experiments that run several stochastic sub-procedures (for
    example one Monte Carlo chain per test point) and want each to be
    independently reproducible.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
