"""Abstract utility-function interface.

A utility function ``v`` maps a coalition of players (a subset of
``0..n_players-1``) to a real number — in the data-valuation setting,
players are training points (or sellers) and ``v(S)`` is the
performance of the model trained on ``S`` (Section 2.1 of the paper).

Concrete implementations precompute whatever they can (distance
rankings, label matches) at construction so a single evaluation costs
O(|S|) per test point rather than a fresh O(N log N) sort.  That speed
matters: the brute-force Shapley oracle performs ``2^N`` evaluations
and the Monte Carlo baseline performs ``T * N``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence, Union

import numpy as np

from ..exceptions import UtilityError

__all__ = ["UtilityFunction", "CoalitionLike", "coalition_to_indices"]

CoalitionLike = Union[Sequence[int], np.ndarray, frozenset, set, range]


def coalition_to_indices(subset: CoalitionLike, n_players: int) -> np.ndarray:
    """Normalize a coalition to a sorted, duplicate-free index array.

    Accepts any iterable of player indices or a boolean mask of length
    ``n_players``.  Raises :class:`UtilityError` on out-of-range or
    duplicate members, because a silent duplicate would double-count a
    player's data and corrupt every downstream Shapley computation.
    """
    arr = np.asarray(list(subset) if isinstance(subset, (set, frozenset)) else subset)
    if arr.dtype == np.bool_:
        if arr.shape != (n_players,):
            raise UtilityError(
                f"boolean coalition mask must have shape ({n_players},), "
                f"got {arr.shape}"
            )
        return np.flatnonzero(arr)
    arr = arr.astype(np.intp, copy=False).ravel()
    if arr.size:
        if arr.min() < 0 or arr.max() >= n_players:
            raise UtilityError(
                f"coalition members must lie in [0, {n_players}); got "
                f"range [{arr.min()}, {arr.max()}]"
            )
        uniq = np.unique(arr)
        if uniq.size != arr.size:
            raise UtilityError("coalition contains duplicate players")
        return uniq
    return arr.astype(np.intp)


class UtilityFunction(ABC):
    """Base class for coalition utility functions.

    Subclasses must set :attr:`n_players` and implement
    :meth:`_evaluate` on a normalized index array.
    """

    #: number of players in the grand coalition
    n_players: int

    @abstractmethod
    def _evaluate(self, members: np.ndarray) -> float:
        """Evaluate the utility of the coalition given as an index array."""

    def __call__(self, subset: CoalitionLike) -> float:
        """Evaluate ``v(subset)``."""
        return self._evaluate(coalition_to_indices(subset, self.n_players))

    def marginal(self, subset: CoalitionLike, player: int) -> float:
        """Marginal contribution ``v(S ∪ {player}) − v(S)``.

        Raises
        ------
        UtilityError
            If ``player`` is already a member of ``subset``.
        """
        members = coalition_to_indices(subset, self.n_players)
        if player in members:
            raise UtilityError(f"player {player} already in coalition")
        with_player = np.sort(np.append(members, player))
        return self._evaluate(with_player) - self._evaluate(members)

    def empty_value(self) -> float:
        """``v(∅)`` — the baseline the Shapley values distribute from."""
        return self._evaluate(np.empty(0, dtype=np.intp))

    def grand_value(self) -> float:
        """``v(I)`` — the utility of the full coalition."""
        return self._evaluate(np.arange(self.n_players, dtype=np.intp))

    def total_gain(self) -> float:
        """``v(I) − v(∅)`` — what group rationality says the values sum to."""
        return self.grand_value() - self.empty_value()

    def difference_range(self) -> float:
        """Half-width ``r`` such that marginal contributions lie in [−r, r].

        Used by the Monte Carlo sample-complexity bounds (Section 2.2 and
        Theorem 5).  The default is conservative: the full utility range.
        Subclasses override with tighter, utility-specific values (the
        unweighted KNN classification utility has ``r = 1/K``).
        """
        lo, hi = self.value_bounds()
        return float(hi - lo)

    def value_bounds(self) -> tuple[float, float]:
        """Bounds ``(lo, hi)`` on the utility over all coalitions.

        The default is the trivially correct but loose ``(-inf, inf)``
        replacement computed from the empty and grand coalitions; most
        subclasses override.
        """
        return (min(self.empty_value(), self.grand_value()),
                max(self.empty_value(), self.grand_value()))

    def evaluate_many(self, subsets: Iterable[CoalitionLike]) -> np.ndarray:
        """Vectorized convenience: evaluate a sequence of coalitions."""
        return np.array([self(s) for s in subsets], dtype=np.float64)
