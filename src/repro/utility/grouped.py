"""Seller-level utility for the multiple-data-per-curator setting.

Section 4 of the paper ("Multiple Data Per Contributor") values
*sellers* rather than individual points: a coalition of sellers
contributes the union of their training points, and the utility is the
base (point-level) utility of that union.  :class:`GroupedUtility`
wraps any point-level :class:`~repro.utility.base.UtilityFunction` and
re-indexes players from points to sellers.
"""

from __future__ import annotations

import numpy as np

from ..types import GroupedDataset
from .base import UtilityFunction

__all__ = ["GroupedUtility"]


class GroupedUtility(UtilityFunction):
    """Utility over seller coalitions.

    Parameters
    ----------
    base:
        A point-level utility whose players are the ``N`` training
        points.
    grouped:
        The ownership map.  ``grouped.dataset`` must be the dataset the
        base utility was built from (same training order).
    """

    def __init__(self, base: UtilityFunction, grouped: GroupedDataset) -> None:
        self.base = base
        self.grouped = grouped
        self.n_players = grouped.n_sellers
        # Pre-split membership lists so evaluation is a concatenation.
        self._members = [grouped.members(m) for m in range(self.n_players)]

    def points_of(self, sellers: np.ndarray) -> np.ndarray:
        """Union of training-point indices owned by ``sellers``."""
        if len(sellers) == 0:
            return np.empty(0, dtype=np.intp)
        return np.concatenate([self._members[int(m)] for m in sellers])

    def _evaluate(self, members: np.ndarray) -> float:
        return self.base._evaluate(np.sort(self.points_of(members)))

    def value_bounds(self) -> tuple[float, float]:
        return self.base.value_bounds()

    def difference_range(self) -> float:
        """A seller can flip the entire top-K, so use the utility range."""
        lo, hi = self.base.value_bounds()
        return float(hi - lo)
