"""The unweighted KNN regression utility of eq (25).

For a single test point the utility of coalition ``S`` is the negative
squared error of the "divide by K" neighbor average::

    v(S) = - ( (1/K) * sum_{k=1}^{min(K, |S|)} y_{alpha_k(S)}  -  y_test )^2

As in the classification case, the divisor stays ``K`` even when
``|S| < K``.  This is the convention under which Theorem 6's recursion
is exact, and it gives ``v(∅) = -y_test^2``.  For several test points
the utility is the average over test points.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..knn.search import argsort_by_distance
from ..types import Dataset
from .base import UtilityFunction

__all__ = ["KNNRegressionUtility"]


class KNNRegressionUtility(UtilityFunction):
    """Unweighted KNN regression utility (eq 25), averaged over tests."""

    def __init__(self, dataset: Dataset, k: int, metric: str = "euclidean") -> None:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        self.dataset = dataset
        self.k = int(k)
        self.metric = metric
        self.n_players = dataset.n_train
        self.y_train = np.asarray(dataset.y_train, dtype=np.float64)
        self.y_test = np.asarray(dataset.y_test, dtype=np.float64)
        order, sorted_dist = argsort_by_distance(
            dataset.x_test, dataset.x_train, metric=metric
        )
        self.order = order
        self.sorted_distances = sorted_dist
        inv = np.empty_like(order)
        rows = np.arange(order.shape[0])[:, None]
        inv[rows, order] = np.arange(order.shape[1])[None, :]
        self._inv_order = inv

    def _evaluate(self, members: np.ndarray) -> float:
        if members.size == 0:
            return float(-(self.y_test**2).mean())
        m = members.size
        kk = min(self.k, m)
        ranks = self._inv_order[:, members]
        if kk < m:
            sel = np.argpartition(ranks, kk - 1, axis=1)[:, :kk]
        else:
            sel = np.broadcast_to(np.arange(m), ranks.shape).copy()
        chosen = members[sel]
        preds = self.y_train[chosen].sum(axis=1) / self.k
        return float(-np.mean((preds - self.y_test) ** 2))

    def value_bounds(self) -> tuple[float, float]:
        """Bounds derived from the label ranges.

        The prediction lies in ``[min(0, K*y_min/K), ...]``; we bound by
        the widest possible squared deviation between a prediction built
        from training labels (including the truncated ``|S| < K`` case,
        where the prediction can be as small as 0) and any test label.
        """
        y = self.y_train
        lo_pred = min(0.0, float(y.min()))
        hi_pred = max(0.0, float(y.max()))
        worst = 0.0
        for t in self.y_test:
            worst = max(worst, (lo_pred - t) ** 2, (hi_pred - t) ** 2)
        return (-worst, 0.0)

    def difference_range(self) -> float:
        """Conservative range of one-point marginal contributions."""
        lo, hi = self.value_bounds()
        return float(hi - lo)

    def per_test_value(self, members: np.ndarray, test_index: int) -> float:
        """Utility of ``members`` w.r.t. a single test point (eq 25)."""
        members = np.asarray(members, dtype=np.intp)
        t = float(self.y_test[test_index])
        if members.size == 0:
            return -(t**2)
        kk = min(self.k, members.size)
        ranks = self._inv_order[test_index, members]
        nearest = members[np.argsort(ranks, kind="stable")[:kk]]
        pred = float(self.y_train[nearest].sum() / self.k)
        return -((pred - t) ** 2)
