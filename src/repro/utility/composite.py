"""The composite-game utility ν_c of eq (28).

In the composite game there are ``M + 1`` players: ``M`` data sellers
(players ``0 .. M-1``) and one analyst (player ``M``) who contributes
the computation.  A coalition creates value only when it contains both
data *and* the analyst::

    v_c(S) = 0                     if S == {analyst} or S ⊆ sellers
    v_c(S) = v(S \\ {analyst})      otherwise

where ``v`` is the data-only utility.  The analyst's Shapley value under
``v_c`` is what Theorems 9-12 compute in closed form; this class is the
reference implementation used by the brute-force oracle and the Monte
Carlo estimators.
"""

from __future__ import annotations

import numpy as np

from .base import UtilityFunction

__all__ = ["CompositeUtility"]


class CompositeUtility(UtilityFunction):
    """Wrap a data-only utility into the composite game of eq (28).

    Parameters
    ----------
    base:
        The data-only utility ``v`` whose players are the sellers (or
        training points, in the one-point-per-seller case).
    """

    def __init__(self, base: UtilityFunction) -> None:
        self.base = base
        self.n_players = base.n_players + 1

    @property
    def analyst(self) -> int:
        """Index of the analyst player (always the last index)."""
        return self.n_players - 1

    def _evaluate(self, members: np.ndarray) -> float:
        has_analyst = members.size > 0 and members[-1] == self.analyst
        if not has_analyst:
            return 0.0
        sellers = members[:-1]
        if sellers.size == 0:
            return 0.0
        return self.base._evaluate(sellers)

    def value_bounds(self) -> tuple[float, float]:
        lo, hi = self.base.value_bounds()
        return (min(lo, 0.0), max(hi, 0.0))

    def difference_range(self) -> float:
        """The analyst's marginal can be the full utility range."""
        lo, hi = self.value_bounds()
        return float(hi - lo)
