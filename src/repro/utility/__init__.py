"""Utility functions v(S) for the data-valuation games of the paper.

* :class:`KNNClassificationUtility` — eqs (5), (8)
* :class:`KNNRegressionUtility` — eq (25)
* :class:`WeightedKNNClassificationUtility` — eq (26)
* :class:`WeightedKNNRegressionUtility` — eq (27)
* :class:`GroupedUtility` — seller-level wrapper (Section 4)
* :class:`CompositeUtility` — composite game ν_c (eq 28)
"""

from .base import CoalitionLike, UtilityFunction, coalition_to_indices
from .composite import CompositeUtility
from .grouped import GroupedUtility
from .knn_utility import KNNClassificationUtility
from .regression_utility import KNNRegressionUtility
from .weighted_utility import (
    WeightedKNNClassificationUtility,
    WeightedKNNRegressionUtility,
)

__all__ = [
    "UtilityFunction",
    "CoalitionLike",
    "coalition_to_indices",
    "KNNClassificationUtility",
    "KNNRegressionUtility",
    "WeightedKNNClassificationUtility",
    "WeightedKNNRegressionUtility",
    "GroupedUtility",
    "CompositeUtility",
]
