"""Weighted KNN utilities (eqs 26 and 27).

Classification::

    v(S) = sum_{k=1}^{min(K,|S|)} w_{alpha_k(S)} * 1[y_{alpha_k(S)} = y_test]

Regression::

    v(S) = - ( sum_{k=1}^{min(K,|S|)} w_{alpha_k(S)} * y_{alpha_k(S)} - y_test )^2

The weight of a neighbor is produced by a weight function applied to
the sorted distance vector of the coalition's selected neighbors (see
:mod:`repro.knn.weights`), so a point's weight depends on which
coalition it appears in — this coalition-dependence is exactly why the
weighted Shapley value costs O(N^K) instead of O(N log N) (Theorem 7).
"""

from __future__ import annotations


import numpy as np

from ..exceptions import ParameterError
from ..knn.search import argsort_by_distance
from ..knn.weights import (
    WeightFunction,
    apply_weights_batched,
    get_weight_function,
)
from ..types import Dataset
from .base import UtilityFunction

__all__ = [
    "WeightedKNNClassificationUtility",
    "WeightedKNNRegressionUtility",
]


class _WeightedKNNUtilityBase(UtilityFunction):
    """Shared machinery: distance ranking + per-coalition neighbor pick."""

    def __init__(
        self,
        dataset: Dataset,
        k: int,
        weights: str | WeightFunction = "inverse_distance",
        metric: str = "euclidean",
    ) -> None:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        self.dataset = dataset
        self.k = int(k)
        self.metric = metric
        if callable(weights):
            self.weight_fn: WeightFunction = weights
            self.weights_name = getattr(weights, "__name__", "custom")
        else:
            self.weight_fn = get_weight_function(weights)
            self.weights_name = weights
        self.n_players = dataset.n_train
        order, sorted_dist = argsort_by_distance(
            dataset.x_test, dataset.x_train, metric=metric
        )
        self.order = order
        self.sorted_distances = sorted_dist
        inv = np.empty_like(order)
        rows = np.arange(order.shape[0])[:, None]
        inv[rows, order] = np.arange(order.shape[1])[None, :]
        self._inv_order = inv
        # distance of training point i to test point j, in original index order
        dist_by_index = np.empty_like(sorted_dist)
        np.put_along_axis(dist_by_index, order, sorted_dist, axis=1)
        self._dist = dist_by_index

    def _topk_for_test(
        self, members: np.ndarray, test_index: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Selected neighbor indices and their distances, nearest first."""
        kk = min(self.k, members.size)
        ranks = self._inv_order[test_index, members]
        nearest = members[np.argsort(ranks, kind="stable")[:kk]]
        return nearest, self._dist[test_index, nearest]

    def _per_test(self, members: np.ndarray, test_index: int) -> float:
        raise NotImplementedError

    def _evaluate(self, members: np.ndarray) -> float:
        n_test = self.dataset.n_test
        total = 0.0
        for j in range(n_test):
            total += self._per_test(members, j)
        return total / n_test

    def per_test_value(self, members: np.ndarray, test_index: int) -> float:
        """Single-test-point utility (used by the exact weighted SV)."""
        return self._per_test(np.asarray(members, dtype=np.intp), test_index)

    # ------------------------------------------------------------------
    # batched evaluation (the vectorized configuration engine)
    def _topk_for_test_many(
        self, members: np.ndarray, test_index: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise :meth:`_topk_for_test` over an ``(M, m)`` block."""
        kk = min(self.k, members.shape[1])
        ranks = self._inv_order[test_index, members]
        sel = np.argsort(ranks, axis=1, kind="stable")[:, :kk]
        nearest = np.take_along_axis(members, sel, axis=1)
        return nearest, self._dist[test_index, nearest]

    def _per_test_many(
        self, members: np.ndarray, test_index: int
    ) -> np.ndarray:
        raise NotImplementedError

    def per_test_value_many(
        self, members_matrix: np.ndarray, test_index: int
    ) -> np.ndarray:
        """Single-test utilities for a whole block of coalitions.

        ``members_matrix`` is an ``(M, m)`` integer array — ``M``
        equal-size coalitions of training indices (``m`` may be 0: the
        empty coalition).  One numpy pass ranks every row, selects the
        per-row top-``min(K, m)`` neighbors, and applies the weight
        function batched (:func:`repro.knn.weights.apply_weights_batched`)
        — elementwise equal to calling :meth:`per_test_value` per row,
        without the per-coalition Python overhead.  This is the oracle
        the vectorized Theorem 7 configuration engine
        (:class:`repro.core.kernels.BatchedWeightedRecursion`) drives.
        """
        members = np.asarray(members_matrix, dtype=np.intp)
        if members.ndim != 2:
            raise ParameterError(
                f"members_matrix must be 2-D (M coalitions x m members), "
                f"got shape {members.shape}"
            )
        return self._per_test_many(members, test_index)


class WeightedKNNClassificationUtility(_WeightedKNNUtilityBase):
    """Weighted KNN classification utility (eq 26)."""

    def _per_test(self, members: np.ndarray, test_index: int) -> float:
        if members.size == 0:
            return 0.0
        nearest, dists = self._topk_for_test(members, test_index)
        w = self.weight_fn(dists)
        match = (
            self.dataset.y_train[nearest] == self.dataset.y_test[test_index]
        ).astype(np.float64)
        return float(np.dot(w, match))

    def _per_test_many(
        self, members: np.ndarray, test_index: int
    ) -> np.ndarray:
        if members.shape[1] == 0:
            return np.zeros(members.shape[0], dtype=np.float64)
        nearest, dists = self._topk_for_test_many(members, test_index)
        w = apply_weights_batched(self.weight_fn, dists)
        match = (
            self.dataset.y_train[nearest] == self.dataset.y_test[test_index]
        ).astype(np.float64)
        return (w * match).sum(axis=1)

    def value_bounds(self) -> tuple[float, float]:
        """Normalized weights keep the utility inside ``[0, 1]``."""
        return (0.0, 1.0)

    def difference_range(self) -> float:
        """Conservative: a marginal can swing the whole normalized vote."""
        return 1.0


class WeightedKNNRegressionUtility(_WeightedKNNUtilityBase):
    """Weighted KNN regression utility (eq 27)."""

    def _per_test(self, members: np.ndarray, test_index: int) -> float:
        t = float(self.dataset.y_test[test_index])
        if members.size == 0:
            return -(t**2)
        nearest, dists = self._topk_for_test(members, test_index)
        w = self.weight_fn(dists)
        pred = float(np.dot(w, np.asarray(self.dataset.y_train, dtype=np.float64)[nearest]))
        return -((pred - t) ** 2)

    def _per_test_many(
        self, members: np.ndarray, test_index: int
    ) -> np.ndarray:
        t = float(self.dataset.y_test[test_index])
        if members.shape[1] == 0:
            return np.full(members.shape[0], -(t**2))
        nearest, dists = self._topk_for_test_many(members, test_index)
        w = apply_weights_batched(self.weight_fn, dists)
        y = np.asarray(self.dataset.y_train, dtype=np.float64)[nearest]
        pred = (w * y).sum(axis=1)
        return -((pred - t) ** 2)

    def value_bounds(self) -> tuple[float, float]:
        y = np.asarray(self.dataset.y_train, dtype=np.float64)
        lo_pred = min(0.0, float(y.min()))
        hi_pred = max(0.0, float(y.max()))
        worst = 0.0
        for t in np.asarray(self.dataset.y_test, dtype=np.float64):
            worst = max(worst, (lo_pred - t) ** 2, (hi_pred - t) ** 2)
        return (-worst, 0.0)

    def difference_range(self) -> float:
        lo, hi = self.value_bounds()
        return float(hi - lo)
