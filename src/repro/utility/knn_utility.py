"""The KNN classification utility of eqs (5) and (8).

For a single test point ``(x_test, y_test)`` the utility of a coalition
``S`` of training points is the likelihood the unweighted KNN classifier
trained on ``S`` assigns to the correct label::

    v(S) = (1/K) * sum_{k=1}^{min(K, |S|)} 1[y_{alpha_k(S)} = y_test]

where ``alpha_k(S)`` indexes the k-th nearest member of ``S``.  Note the
``1/K`` normalization even when ``|S| < K`` — this convention is what
makes the recursions of Theorems 1 and 2 exact, and it makes
``v(∅) = 0``.  For multiple test points the utility is the average of
the single-test utilities (eq 8), matching the additivity property.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..knn.search import argsort_by_distance
from ..types import Dataset
from .base import UtilityFunction

__all__ = ["KNNClassificationUtility"]


class KNNClassificationUtility(UtilityFunction):
    """Unweighted KNN classification utility (eqs 5, 8).

    Parameters
    ----------
    dataset:
        Training and test data.  Players are training points.
    k:
        The K of KNN.
    metric:
        Distance metric name.

    Notes
    -----
    Construction performs the full ``(n_test, n_train)`` distance
    ranking once; each subsequent evaluation costs
    ``O(n_test * |S|)``.
    """

    def __init__(self, dataset: Dataset, k: int, metric: str = "euclidean") -> None:
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        self.dataset = dataset
        self.k = int(k)
        self.metric = metric
        self.n_players = dataset.n_train
        order, sorted_dist = argsort_by_distance(
            dataset.x_test, dataset.x_train, metric=metric
        )
        #: ranking of training points per test point, nearest first
        self.order = order
        #: sorted distances matching :attr:`order`
        self.sorted_distances = sorted_dist
        # inverse permutation: rank of training point i w.r.t. test j
        inv = np.empty_like(order)
        rows = np.arange(order.shape[0])[:, None]
        inv[rows, order] = np.arange(order.shape[1])[None, :]
        self._inv_order = inv
        # match[j, i] = 1 if y_train[i] == y_test[j]
        self.match = (
            dataset.y_train[None, :] == dataset.y_test[:, None]
        ).astype(np.float64)

    def _evaluate(self, members: np.ndarray) -> float:
        if members.size == 0:
            return 0.0
        m = members.size
        kk = min(self.k, m)
        ranks = self._inv_order[:, members]  # (n_test, m)
        if kk < m:
            sel = np.argpartition(ranks, kk - 1, axis=1)[:, :kk]
        else:
            sel = np.broadcast_to(np.arange(m), ranks.shape).copy()
        chosen = members[sel]  # (n_test, kk) training indices
        rows = np.arange(ranks.shape[0])[:, None]
        correct = self.match[rows, chosen].sum(axis=1)
        return float(correct.mean() / self.k)

    def value_bounds(self) -> tuple[float, float]:
        """The utility lies in ``[0, 1]``."""
        return (0.0, 1.0)

    def difference_range(self) -> float:
        """Adding one point changes at most one of K votes: ``r = 1/K``."""
        return 1.0 / self.k

    def per_test_value(self, members: np.ndarray, test_index: int) -> float:
        """Utility of ``members`` w.r.t. a single test point (eq 5)."""
        members = np.asarray(members, dtype=np.intp)
        if members.size == 0:
            return 0.0
        kk = min(self.k, members.size)
        ranks = self._inv_order[test_index, members]
        nearest = members[np.argsort(ranks, kind="stable")[:kk]]
        return float(self.match[test_index, nearest].sum() / self.k)
