"""Resilience: burst tail latency under the precision ladder.

Not a figure from the paper — the acceptance bar of the
deadline-aware serving tier (PR 10): a data-market burst (every
buyer's query batch arriving at once, the Section 3.2 serving
scenario at its worst moment) is driven through two identical
single-worker services, one exact-only and one carrying a
:class:`~repro.engine.degradation.DegradationController`.  Three
claims are measured and gated in ``BENCH_engine.json``:

* ``burst_p99_latency_margin`` — p99 total job latency (queue wait +
  compute) of the exact-only service over the degrading one.  The
  ladder must buy at least 2x on the tail, or shedding precision
  bought nothing;
* ``degraded_value_error_within_certificate`` — every degraded
  answer is compared against the exact oracle *for its own batch*
  (the exact-only run computes it anyway), and its max-norm error
  must sit within the certificate it published.  1.0 means every
  certificate held; anything else fails the gate hard;
* ``burst_recovered_to_exact`` — one request submitted after the
  burst drains must serve exact and unmarked: the ladder releases as
  soon as pressure clears (the recovery rule).

The queue is the only control signal: both services run the same
engine build, the same request stream, cache off, one worker — the
measured margin is purely the ladder trading certified precision for
tail latency.
"""

from __future__ import annotations

import numpy as np

from ..engine import DegradationController, ValuationEngine
from ..engine.service import ValuationRequest, ValuationService
from ..market import Seller
from ..rng import SeedLike
from .reporting import ExperimentResult

__all__ = ["burst_serving"]


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def burst_serving(
    n_train: int = 40000,
    n_features: int = 8,
    k: int = 5,
    n_sellers: int = 8,
    burst: int = 24,
    n_test_per_request: int = 8,
    queue_high: int | None = None,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Measure burst p99 with and without the degradation ladder.

    Parameters
    ----------
    n_train, n_features, k:
        Workload shape.  The default N is serving-scale: the exact
        rung pays a full argsort per test row, which is what the
        truncated rungs avoid.
    n_sellers:
        The training set is split into this many seller contributions
        (the data-market framing); burst requests cycle over distinct
        buyer query batches, so the rank cache could never help even
        if it were on.
    burst:
        Requests submitted back-to-back before the first result is
        awaited — the queue depth the ladder reacts to.
    n_test_per_request:
        Query batch size per request.
    queue_high:
        Saturation depth of the controller (default ``2 * burst``:
        the burst drives pressure into the truncated band; the Monte
        Carlo rung, whose win over exact grows with N, stays reserved
        for deeper overload).
    """
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n_train, n_features))
    y = rng.integers(0, 2, n_train)
    # the market framing: sellers own contiguous slices of the
    # training set; each burst request is one buyer's query batch
    sellers = [
        Seller(seller_id=i, point_indices=idx)
        for i, idx in enumerate(
            np.array_split(np.arange(n_train, dtype=np.intp), n_sellers)
        )
    ]
    batches = [
        (
            rng.standard_normal((n_test_per_request, n_features)),
            rng.integers(0, 2, n_test_per_request),
        )
        for _ in range(burst)
    ]

    def run_burst(service: ValuationService):
        jobs = [
            service.submit(ValuationRequest(bx, by, tag=f"buyer-{i}"))
            for i, (bx, by) in enumerate(batches)
        ]
        results = [job.result(timeout=600) for job in jobs]
        latencies = [job.finished_at - job.submitted_at for job in jobs]
        return results, latencies

    # -- exact-only control (and, per batch, the oracle) ---------------
    exact_engine = ValuationEngine(x, y, k, cache=False)
    with ValuationService(exact_engine, n_workers=1) as service:
        exact_results, exact_latencies = run_burst(service)

    # -- the degrading service -----------------------------------------
    controller = DegradationController(
        queue_low=0,
        queue_high=int(queue_high) if queue_high is not None else 2 * burst,
    )
    ladder_engine = ValuationEngine(x, y, k, cache=False)
    with ValuationService(
        ladder_engine, n_workers=1, degradation=controller
    ) as service:
        ladder_results, ladder_latencies = run_burst(service)
        # the recovery criterion: after the burst drains, the very
        # next request must serve exact, unmarked
        bx, by = batches[0]
        calm = service.submit(ValuationRequest(bx, by)).result(timeout=600)

    exact_p99 = _percentile(exact_latencies, 99)
    ladder_p99 = _percentile(ladder_latencies, 99)

    degraded = [
        (i, r)
        for i, r in enumerate(ladder_results)
        if "degraded" in r.extra
    ]
    worst_slack = -np.inf
    certificates_held = bool(degraded)
    for i, result in degraded:
        cert = result.extra["degraded"]["certificate"]
        err = float(
            np.max(np.abs(result.values - exact_results[i].values))
        )
        worst_slack = max(worst_slack, err - float(cert["epsilon"]))
        if err > float(cert["epsilon"]):
            certificates_held = False
    rung_counts = controller.snapshot()["picks"]
    recovered = (
        "degraded" not in calm.extra
        and float(
            np.max(np.abs(calm.values - exact_results[0].values))
        )
        < 1e-10
    )

    row = {
        "n_train": n_train,
        "burst": burst,
        "exact_p99_s": exact_p99,
        "ladder_p99_s": ladder_p99,
        "burst_p99_latency_margin": exact_p99 / max(ladder_p99, 1e-12),
        "degraded_requests": len(degraded),
        "rung_picks": dict(rung_counts),
        "degraded_value_error_within_certificate": float(certificates_held),
        "worst_certificate_slack": float(worst_slack),
        "burst_recovered_to_exact": float(recovered),
        "n_sellers": len(sellers),
    }
    return ExperimentResult(
        experiment_id="burst-resilience",
        title="Overload burst: p99 with the precision ladder vs exact-only",
        columns=(
            "n_train",
            "burst",
            "exact_p99_s",
            "ladder_p99_s",
            "burst_p99_latency_margin",
            "degraded_requests",
            "degraded_value_error_within_certificate",
            "burst_recovered_to_exact",
        ),
        rows=[row],
        paper_claim=(
            "not a paper figure — the serving tier's overload bar: "
            "degrading precision along the Theorem 1/2/5 ladder must "
            "cut burst p99 latency at least 2x versus exact-only "
            "serving, while every degraded answer stays within its "
            "published error certificate"
        ),
        observed=(
            "under a full-queue burst the controller serves Theorem-2 "
            "truncations whose certificates hold against the exact "
            "oracle batch-for-batch, and the first post-burst request "
            "returns to exact"
        ),
        metadata={
            "n_features": n_features,
            "k": k,
            "n_test_per_request": n_test_per_request,
            "queue_high": queue_high,
            "seed": seed,
        },
    )
