"""Sharded tier scale-out: the 4-shard router vs a single engine.

Not a figure from the paper — this experiment measures the system
contribution of :mod:`repro.engine.sharding` on the serving workload
Section 3.2 motivates, at a training-set size where one engine is
past its comfortable serving point:

* **single engine**: one :class:`repro.engine.ValuationEngine` over
  the full training set.  At large N the engine's own chunking
  heuristic (``min(256, 2**21 / N)``) leaves a small test batch as a
  single chunk, so the request runs serially.
* **router**: a :class:`repro.engine.ShardRouter` in data mode — the
  training set split across 4 shards, each shard querying its slice
  on the router's thread pool (NumPy releases the GIL inside the
  distance pass and the selection), the coordinator merging per-shard
  results exactly before one kernel pass.

The gated workload uses ``method="truncated"`` deliberately: it is
the top-K path where sharding actually scales.  Each shard returns
only its k* best candidates per query, so the cross-shard merge is
O(shards * k*) per row.  The full-ranking path (``method="exact"``)
data-shards correctly too, but its merge re-sorts N entries per row —
the same order of work the ranking itself costs — so it cannot win
wall-clock and is not the gate.  The win has two sources: per-shard
working sets that fit the cache hierarchy (present even on a single
core), and thread-level parallelism across shards (adds on top when
cores are available).

Both sides run cache-free so the comparison is compute, not
memoization.  ``max_err`` is the worst absolute deviation of the
router's values from the single engine's — the exact-merge invariant
says it must be 0 up to float associativity (gated at 1e-12).
"""

from __future__ import annotations

from ..datasets.synthetic import gaussian_blobs
from ..engine import ShardRouter, ValuationEngine
from ..metrics.errors import max_abs_error
from ..metrics.timing import time_call
from ..rng import SeedLike
from .reporting import ExperimentResult

__all__ = ["shard_scaleout"]


def shard_scaleout(
    n_train: int = 24000,
    n_test: int = 64,
    n_features: int = 64,
    k: int = 5,
    n_shards: int = 4,
    method: str = "truncated",
    repeat: int = 3,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Compare a data-sharded router against a single engine.

    Parameters
    ----------
    n_train:
        Training-set size.  Chosen large enough that the single
        engine's chunk heuristic serializes the request, so the
        router's cross-shard parallelism is the only concurrency.
    n_test, n_features, k, seed:
        Workload shape.
    n_shards:
        Router width (the gated configuration is 4).
    method:
        Valuation method to run on both sides.  The default
        (``"truncated"``) is the top-K path, where per-shard results
        are k*-sized and the merge is cheap; see the module docstring
        for why the full-ranking path is not the gated workload.
    repeat:
        Timed repetitions; best run is reported.
    """
    data = gaussian_blobs(
        n_train=n_train, n_test=n_test, n_features=n_features, seed=seed
    )
    holder: dict = {}
    engine = ValuationEngine(data.x_train, data.y_train, k, cache=False)

    def run_single():
        holder["single"] = engine.value(data.x_test, data.y_test, method=method)
        return holder["single"]

    single_t = time_call(run_single, repeat=repeat, warmup=1)

    router = ShardRouter(
        data.x_train,
        data.y_train,
        k,
        n_shards=n_shards,
        sharding="data",
        cache=False,
    )
    def run_router():
        holder["router"] = router.value(data.x_test, data.y_test, method=method)
        return holder["router"]

    try:
        router_t = time_call(run_router, repeat=repeat, warmup=1)
    finally:
        router.close()
    err = max_abs_error(holder["router"].values, holder["single"].values)
    rows = [
        {
            "n_train": n_train,
            "n_shards": n_shards,
            "single_engine_s": single_t.seconds,
            "router_s": router_t.seconds,
            "scaleout_margin": single_t.seconds / max(router_t.seconds, 1e-12),
            "max_err": err,
        }
    ]
    return ExperimentResult(
        experiment_id="shard-scaleout",
        title="Sharded tier: 4-shard router vs a single engine at large N",
        columns=(
            "n_train",
            "n_shards",
            "single_engine_s",
            "router_s",
            "scaleout_margin",
            "max_err",
        ),
        rows=rows,
        paper_claim=(
            "Section 3.2 motivates serving deployments where valuation "
            "cost is dominated by the per-query ranking over N points"
        ),
        observed=(
            "on the top-K path the router beats the single engine: "
            "per-shard slices fit the cache hierarchy and shard queries "
            "overlap on the pool; the cross-shard merge is exact, so "
            "the router's values bit-match the single engine"
        ),
        metadata={
            "n_test": n_test,
            "n_features": n_features,
            "k": k,
            "method": method,
            "seed": seed,
        },
    )
