"""Monitoring subsystem: serving overhead and drift recovery.

Not a figure from the paper — this experiment measures the system
contribution of :mod:`repro.monitor` on the long-lived deployment
scenario the ROADMAP's top open item described (stale LSH tuning under
distribution shift):

* **overhead**: the steady-state serving path with full telemetry and
  an (idle) maintenance scheduler attached vs the bare engine — the
  monitoring must cost ≤ 5% wall-clock to be leave-on-able;
* **recovery**: a synthetic cluster migration at constant ``n`` (every
  seller replaced by one drawn from a ``shift_scale``-times wider
  distribution, through in-band add/remove churn) degrades the live
  index's recall; one background maintenance cycle re-tunes from the
  telemetry query reservoir, and the recovered recall is compared to a
  freshly tuned index given the same information — the two must agree
  within 2%.

:func:`tracing_overhead` measures the second leave-on-able bar of the
observability layer: serving with a *fully enabled* tracer (span log
and hub streaming attached, caching off so every request does real
ranking work) vs the default :data:`~repro.monitor.NOOP_TRACER`, with
the same interleaved best-of-N protocol.  The per-request span count
rides along so a regression is attributable (more spans vs slower
spans).

The migration runs under ``warnings.simplefilter("error")``: the
scheduler's deferred-refit hook must keep the whole scenario free of
the legacy ``RuntimeWarning`` escape hatch.
"""

from __future__ import annotations

import gc
import time
import warnings

import numpy as np

from ..engine import LSHNeighborBackend, ValuationEngine
from ..knn.search import top_k
from ..monitor import MaintenanceScheduler, TelemetryHub, TraceLog, Tracer
from ..rng import SeedLike
from .reporting import ExperimentResult

__all__ = ["monitor_maintenance", "tracing_overhead"]


def _recall(backend, queries: np.ndarray, k: int) -> float:
    """Brute-force recall proxy of ``backend`` on held-out queries."""
    data = backend.data
    k_eff = min(k, data.shape[0])
    true_idx, _ = top_k(queries, data, k_eff)
    got_idx, _ = backend.spot_query(queries, k_eff)
    hits = sum(
        int(np.isin(true_idx[j], got_idx[j]).sum())
        for j in range(true_idx.shape[0])
    )
    return hits / float(true_idx.size)


def monitor_maintenance(
    n_train: int = 4000,
    n_test: int = 64,
    n_features: int = 16,
    k: int = 5,
    n_requests: int = 6,
    repeat: int = 5,
    migrate_batches: int = 5,
    shift_scale: float = 6.0,
    n_eval: int = 64,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Measure monitoring overhead and re-tune recall recovery.

    Parameters
    ----------
    n_train, n_test, n_features, k:
        Workload shape (LSH serving path throughout).
    n_requests:
        Valuation requests per timed serving loop (overhead row).
    repeat:
        Timed repetitions; best run is reported.
    migrate_batches:
        The migration replaces ``n_train / migrate_batches`` points per
        batch, keeping ``n`` constant.
    shift_scale:
        Width multiplier of the post-shift distribution.
    n_eval:
        Held-out queries the recall proxies are measured on.
    """
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n_train, n_features))
    y = rng.integers(0, 2, n_train)
    x_test = rng.standard_normal((n_test, n_features))
    y_test = rng.integers(0, 2, n_test)

    # ------------------------------------------------------------------
    # row 1: steady-state serving overhead of leaving monitoring on
    def build_engine() -> ValuationEngine:
        return ValuationEngine(
            x, y, k, backend="lsh", backend_options={"seed": seed}, cache=False
        )

    def serve(engine: ValuationEngine) -> None:
        for _ in range(n_requests):
            engine.value(x_test, y_test, method="lsh")

    plain_engine = build_engine()
    serve(plain_engine)  # warm up: builds + tunes the index
    monitored_engine = build_engine()
    scheduler = MaintenanceScheduler(engine=monitored_engine, interval=3600.0)
    serve(monitored_engine)  # warm up with telemetry attached

    # interleaved best-of-N with the cyclic collector off: alternating
    # the two loops round by round keeps machine-state drift (page
    # cache, thermal, background load) out of the ratio, and pausing
    # gc keeps its arbitrary collection points from landing inside one
    # side of a round — both swing a sequential measurement by several
    # percent, far more than the telemetry itself costs
    plain_s = monitored_s = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeat):
            start = time.perf_counter()
            serve(plain_engine)
            plain_s = min(plain_s, time.perf_counter() - start)
            start = time.perf_counter()
            serve(monitored_engine)
            monitored_s = min(monitored_s, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    idle_events = scheduler.run_once()  # stable workload: must be a no-op

    overhead_row = {
        "n_train": n_train,
        "plain_s": plain_s,
        "monitored_s": monitored_s,
        "overhead_ratio": monitored_s / max(plain_s, 1e-12),
        "overhead_margin": plain_s / max(monitored_s, 1e-12),
        "idle_actions": len(idle_events),
    }

    # ------------------------------------------------------------------
    # row 2: injected distribution shift at constant n, then recovery
    engine = ValuationEngine(
        x.copy(), y.copy(), k, backend="lsh", backend_options={"seed": seed}
    )
    scheduler = MaintenanceScheduler(engine=engine, interval=3600.0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the scenario must stay silent
        engine.value(x_test, y_test, method="lsh")  # tune + build + reservoir
        batch = n_train // migrate_batches
        for _ in range(migrate_batches):
            x_new = rng.standard_normal((batch, n_features)) * shift_scale
            engine.add_points(x_new, rng.integers(0, 2, batch))
            engine.remove_points(np.arange(batch))
            q_new = rng.standard_normal((16, n_features)) * shift_scale
            engine.value(q_new, rng.integers(0, 2, 16), method="lsh")
        backend = engine.backend
        k_built = backend.built_k
        eval_q = rng.standard_normal((n_eval, n_features)) * shift_scale
        recall_degraded = _recall(backend, eval_q, k_built)
        events = scheduler.run_once()  # the background maintenance cycle
        recall_after = _recall(backend, eval_q, k_built)

    # control: a freshly tuned index given the same information — the
    # same migrated data and the same reservoir sample of live traffic
    assert isinstance(backend, LSHNeighborBackend)
    sample = scheduler.hub.reservoir("queries")
    fresh = LSHNeighborBackend(seed=seed).fit(backend.data)
    fresh.prepare(sample, k_built)
    recall_fresh = _recall(fresh, eval_q, k_built)

    retunes = backend.stats()["counters"]["retunes"]
    recovery_row = {
        "n_train": n_train,
        "recall_degraded": recall_degraded,
        "recall_after": recall_after,
        "recall_fresh": recall_fresh,
        "recovery_ratio": recall_after / max(recall_fresh, 1e-12),
        "n_signals": len(events[0].signals) if events else 0,
        "retunes": retunes,
    }

    return ExperimentResult(
        experiment_id="monitor-maintenance",
        title="Monitoring: serving overhead and drift-triggered re-tuning",
        columns=(
            "n_train",
            "plain_s",
            "monitored_s",
            "overhead_ratio",
            "recall_degraded",
            "recall_after",
            "recall_fresh",
            "recovery_ratio",
            "retunes",
        ),
        rows=[overhead_row, recovery_row],
        paper_claim=(
            "Section 6.1 tunes the LSH index from a one-shot relative-"
            "contrast estimate; the tuning is only valid for the "
            "distribution it was measured on"
        ),
        observed=(
            "telemetry + an idle scheduler cost a few percent on the "
            "serving path; after a full cluster migration at constant n "
            "the drift detectors trigger a background re-tune whose "
            "recall matches a freshly tuned index, with zero warnings"
        ),
        metadata={
            "n_test": n_test,
            "n_features": n_features,
            "k": k,
            "shift_scale": shift_scale,
            "migrate_batches": migrate_batches,
            "seed": seed,
        },
    )


def tracing_overhead(
    n_train: int = 4000,
    n_test: int = 64,
    n_features: int = 16,
    k: int = 5,
    n_requests: int = 6,
    repeat: int = 5,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Measure the serving cost of fully enabled request tracing.

    Two identical engines serve the same exact-valuation loop with the
    rank cache off (so every request ranks, runs the kernel, and
    merges — the worst case for per-span cost); one keeps the default
    :data:`~repro.monitor.NOOP_TRACER`, the other a :class:`Tracer`
    with both sinks attached (a bounded :class:`TraceLog` and a
    :class:`TelemetryHub` receiving every span duration).  The
    ``trace_overhead_margin`` (plain over traced wall-clock) is the
    leave-on-able bar: 1.0 means tracing is free, 0.95 means 5%
    overhead — the gate in ``BENCH_engine.json``.

    Parameters
    ----------
    n_train, n_test, n_features, k:
        Workload shape (brute backend, exact method, cache off).
    n_requests:
        Valuation requests per timed loop.
    repeat:
        Timed repetitions; best run is reported.
    """
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n_train, n_features))
    y = rng.integers(0, 2, n_train)
    x_test = rng.standard_normal((n_test, n_features))
    y_test = rng.integers(0, 2, n_test)

    def build_engine() -> ValuationEngine:
        return ValuationEngine(x, y, k, cache=False)

    def serve(engine: ValuationEngine) -> None:
        for _ in range(n_requests):
            engine.value(x_test, y_test, method="exact")

    plain_engine = build_engine()
    log = TraceLog()
    traced_engine = build_engine().attach_tracer(
        Tracer(log=log, hub=TelemetryHub())
    )
    serve(plain_engine)  # warm up both sides identically
    serve(traced_engine)
    spans_per_request = len(log.records()) / float(n_requests)

    # same interleaved best-of-N, gc-paused protocol as the telemetry
    # overhead row above, and for the same reason: the effect under
    # measurement is smaller than sequential machine-state drift
    plain_s = traced_s = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeat):
            start = time.perf_counter()
            serve(plain_engine)
            plain_s = min(plain_s, time.perf_counter() - start)
            start = time.perf_counter()
            serve(traced_engine)
            traced_s = min(traced_s, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()

    row = {
        "n_train": n_train,
        "plain_s": plain_s,
        "traced_s": traced_s,
        "overhead_ratio": traced_s / max(plain_s, 1e-12),
        "trace_overhead_margin": plain_s / max(traced_s, 1e-12),
        "spans_per_request": spans_per_request,
        "log_dropped": log.dropped,
    }
    return ExperimentResult(
        experiment_id="tracing-overhead",
        title="Tracing: serving overhead of fully enabled span collection",
        columns=(
            "n_train",
            "plain_s",
            "traced_s",
            "overhead_ratio",
            "trace_overhead_margin",
            "spans_per_request",
        ),
        rows=[row],
        paper_claim=(
            "not a paper figure — the observability layer's leave-on-able "
            "bar: enabled tracing must cost <= 5% of untraced serving"
        ),
        observed=(
            "a traced exact-valuation request emits a bounded span tree "
            "(request, per-chunk rank/kernel, merge) whose collection "
            "cost stays within a few percent of the untraced engine"
        ),
        metadata={
            "n_test": n_test,
            "n_features": n_features,
            "k": k,
            "n_requests": n_requests,
            "seed": seed,
        },
    )
