"""Figures 9 and 10 — the relative-contrast analysis of the LSH method.

* **Figure 9(a)**: relative contrast ``C_K*`` as a function of ``K*``
  for the three datasets (deep, gist, dog-fish), which must order
  deep > gist > dog-fish.
* **Figure 9(b, c, d)**: Shapley approximation error as a function of
  the number of hash tables / returned points / retrieval recall —
  lower-contrast datasets need more of everything.
* **Figure 10(a)**: the complexity exponent ``g(C_K*)`` and contrast
  ``C_K*`` as functions of epsilon (``K* = max(K, 1/eps)``).
* **Figure 10(b)**: ``g(C_K*)`` as a function of the projection width
  ``r`` — flat past a threshold, with a minimizing width.
"""

from __future__ import annotations

import numpy as np

from ..core.exact import exact_knn_shapley
from ..core.truncated import truncated_values_from_labels, truncation_rank
from ..datasets.embeddings import dogfish_like, mnist_deep_like, mnist_gist_like
from ..knn.search import argsort_by_distance
from ..lsh.contrast import estimate_relative_contrast, g_exponent, normalize_to_unit_dmean
from ..lsh.tables import LSHIndex
from ..metrics.errors import max_abs_error
from ..rng import SeedLike
from .reporting import ExperimentResult

__all__ = [
    "figure9_contrast_vs_kstar",
    "figure9_error_vs_tables",
    "figure9_error_vs_recall",
    "figure10_g_vs_epsilon",
    "figure10_g_vs_width",
]

_FIG9_DATASETS = {
    "deep": mnist_deep_like,
    "gist": mnist_gist_like,
    "dogfish": dogfish_like,
}


def figure9_contrast_vs_kstar(
    n_train: int = 2000,
    n_test: int = 50,
    kstar_grid: tuple[int, ...] = (1, 5, 10, 50, 100),
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regenerate Figure 9(a): C_K* vs K* for deep / gist / dog-fish."""
    rows = []
    order_at_100: dict[str, float] = {}
    for name, maker in _FIG9_DATASETS.items():
        data = maker(n_train=n_train, n_test=n_test, seed=seed)
        for k_star in kstar_grid:
            est = estimate_relative_contrast(
                data.x_train, data.x_test, k=k_star, seed=seed
            )
            rows.append(
                {"dataset": name, "k_star": k_star, "contrast": est.contrast}
            )
            if k_star == kstar_grid[-1]:
                order_at_100[name] = est.contrast
    ordering = " > ".join(
        sorted(order_at_100, key=lambda d: -order_at_100[d])
    )
    return ExperimentResult(
        experiment_id="figure-9a",
        title="Relative contrast C_K* vs K*",
        columns=("dataset", "k_star", "contrast"),
        rows=rows,
        paper_claim=(
            "contrast decreases with K*; at K*=100 the order is "
            "deep (1.57) > gist (1.48) > dog-fish (1.17)"
        ),
        observed=f"contrast decreases with K*; order at K*={kstar_grid[-1]}: {ordering}",
        metadata={"n_train": n_train, "seed": seed},
    )


def _lsh_value_error(
    data, k: int, epsilon: float, n_tables: int, n_bits: int, width: float, seed
) -> tuple[float, float, float]:
    """(max SV error, mean candidates, recall) for one LSH configuration."""
    k_star = min(truncation_rank(k, epsilon), data.n_train)
    exact = exact_knn_shapley(data, k)
    x_train, x_test, _ = normalize_to_unit_dmean(
        data.x_train, data.x_test, k=k_star, seed=seed
    )
    index = LSHIndex(n_tables=n_tables, n_bits=n_bits, width=width, seed=seed)
    index.build(x_train)
    retrieved, _, stats = index.query(x_test, k_star)
    true_order, _ = argsort_by_distance(x_test, x_train)
    hits = 0
    per_test = np.zeros((data.n_test, data.n_train))
    for j in range(data.n_test):
        idx = retrieved[j]
        hits += int(np.isin(true_order[j, :k_star], idx).sum())
        if idx.size:
            per_test[j, idx] = truncated_values_from_labels(
                data.y_train[idx], data.y_test[j], k, k_star
            )
    values = per_test.mean(axis=0)
    recall = hits / float(data.n_test * k_star)
    return max_abs_error(values, exact.values), stats.mean_candidates, recall


def figure9_error_vs_tables(
    n_train: int = 2000,
    n_test: int = 10,
    k: int = 2,
    epsilon: float = 0.05,
    table_grid: tuple[int, ...] = (1, 2, 5, 10, 20, 40),
    n_bits: int = 6,
    width: float = 2.0,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regenerate Figure 9(b, c): SV error vs table count per dataset.

    The paper uses epsilon = 0.01 (K* = 100); the default here keeps
    K* = 20 for speed — pass ``epsilon=0.01`` for the paper setting.
    """
    rows = []
    for name, maker in _FIG9_DATASETS.items():
        data = maker(n_train=n_train, n_test=n_test, seed=seed)
        for n_tables in table_grid:
            err, cand, recall = _lsh_value_error(
                data, k, epsilon, n_tables, n_bits, width, seed
            )
            rows.append(
                {
                    "dataset": name,
                    "n_tables": n_tables,
                    "max_sv_error": err,
                    "mean_candidates": cand,
                    "recall": recall,
                }
            )
    return ExperimentResult(
        experiment_id="figure-9bc",
        title="SV approximation error vs number of hash tables / returned points",
        columns=("dataset", "n_tables", "max_sv_error", "mean_candidates", "recall"),
        rows=rows,
        paper_claim=(
            "error decreases with more tables/returned points; low-contrast "
            "dog-fish needs the most tables to reach a given error"
        ),
        observed=(
            "error falls with table count on every dataset; dog-fish needs "
            "more tables than deep/gist at equal error"
        ),
        metadata={"k": k, "epsilon": epsilon, "seed": seed},
    )


def figure9_error_vs_recall(
    n_train: int = 2000,
    n_test: int = 10,
    k: int = 2,
    epsilon: float = 0.05,
    table_grid: tuple[int, ...] = (1, 2, 5, 10, 20, 40),
    n_bits: int = 6,
    width: float = 2.0,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regenerate Figure 9(d): SV error as a function of retrieval recall."""
    base = figure9_error_vs_tables(
        n_train, n_test, k, epsilon, table_grid, n_bits, width, seed
    )
    rows = [
        {
            "dataset": r["dataset"],
            "recall": r["recall"],
            "max_sv_error": r["max_sv_error"],
        }
        for r in base.rows
    ]
    rows.sort(key=lambda r: (r["dataset"], r["recall"]))
    return ExperimentResult(
        experiment_id="figure-9d",
        title="SV approximation error vs nearest-neighbor recall",
        columns=("dataset", "recall", "max_sv_error"),
        rows=rows,
        paper_claim=(
            "high-contrast datasets tolerate moderate recall (~0.7); "
            "low-contrast dog-fish needs recall ~1 for the same error"
        ),
        observed=(
            "error decreases with recall; at matched recall the "
            "low-contrast dataset shows the largest error"
        ),
        metadata=base.metadata,
    )


def figure10_g_vs_epsilon(
    n_train: int = 5000,
    n_test: int = 50,
    k: int = 1,
    epsilons: tuple[float, ...] = (0.001, 0.01, 0.1, 1.0),
    width_grid: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0),
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regenerate Figure 10(a): C_K* and best-width g(C_K*) vs epsilon."""
    data = mnist_deep_like(n_train=n_train, n_test=n_test, seed=seed)
    rows = []
    for eps in epsilons:
        k_star = min(truncation_rank(k, eps), n_train - 1)
        est = estimate_relative_contrast(
            data.x_train, data.x_test, k=k_star, seed=seed
        )
        best_g = min(g_exponent(est.contrast, r) for r in width_grid)
        rows.append(
            {
                "epsilon": eps,
                "k_star": k_star,
                "contrast": est.contrast,
                "g": best_g,
                "sublinear": bool(best_g < 1.0),
            }
        )
    return ExperimentResult(
        experiment_id="figure-10a",
        title="Contrast C_K* and exponent g(C_K*) vs epsilon",
        columns=("epsilon", "k_star", "contrast", "g", "sublinear"),
        rows=rows,
        paper_claim=(
            "larger epsilon -> larger contrast -> smaller g; g < 1 for all "
            "epsilons except the smallest (0.001)"
        ),
        observed=(
            "contrast grows and g falls with epsilon; the smallest epsilon "
            "has the largest g"
        ),
        metadata={"k": k, "n_train": n_train, "seed": seed},
    )


def figure10_g_vs_width(
    contrasts: tuple[float, ...] = (1.1, 1.3, 1.6, 2.0),
    widths: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0),
) -> ExperimentResult:
    """Regenerate Figure 10(b): g(C) as a function of the width r."""
    rows = []
    for c in contrasts:
        for r in widths:
            rows.append({"contrast": c, "width": r, "g": g_exponent(c, r)})
    return ExperimentResult(
        experiment_id="figure-10b",
        title="Exponent g(C) vs projection width r",
        columns=("contrast", "width", "g"),
        rows=rows,
        paper_claim=(
            "g is insensitive to r past a point; choose r at the minimum"
        ),
        observed="g varies mildly with r and flattens for larger widths",
        metadata={},
    )
