"""The weighted frontier: regression piecewise + streaming engine.

PR 5 left two gaps in the weighted fast-path stack (Section 4 /
Appendix F): the regression utility (eq 27) always fell through to the
configuration engine — the piecewise counting path was
classification-only — and the configuration engine materialized every
size-(K-1) configuration row, so its memory grew as O(C(N-2, K-1)·K).

:func:`weighted_frontier` measures both closures:

* **regression piecewise** — the O(N·poly(K)) label-moment path for
  rank-only weights on the regression game, against the configuration
  engine at the same serving-scale N (the gated
  ``weighted_regression_piecewise_speedup``);
* **streaming** — the fixed-memory block-streamed configuration
  engine, bit-identical to the materialized engine by construction
  (same colex order, same block boundaries), at a fraction of the
  resident configuration bytes (the gated, fully deterministic
  ``weighted_streaming_memory_ratio``).
"""

from __future__ import annotations

from ..core.kernels import (
    BatchedWeightedRecursion,
    RankPlan,
    get_kernel,
    materialized_config_bytes,
)
from ..datasets.synthetic import regression_dataset
from ..knn.search import argsort_by_distance
from ..metrics.errors import max_abs_error
from ..metrics.timing import time_call
from ..rng import SeedLike
from .reporting import ExperimentResult

__all__ = ["weighted_frontier"]


def weighted_frontier(
    n_regression: int = 2000,
    regression_k: int = 2,
    n_stream: int = 200,
    stream_k: int = 3,
    stream_block_rows: int = 1 << 11,
    n_test: int = 2,
    n_features: int = 32,
    rank_only_weights: str = "rank",
    distance_weights: str = "gaussian",
    repeat: int = 1,
    fast_repeat: int = 3,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regression piecewise and streaming engine vs the materialized one.

    Two timed comparisons over prebuilt :class:`RankPlan` s (ranking
    cost excluded — the paths differ only in how they evaluate the
    Theorem 7 sums):

    * at ``n_regression`` / ``regression_k`` with rank-only weights on
      the **regression** task: the configuration engine (the only
      prior exact path for this combination) vs the new piecewise
      label-moment path — ``regression_speedup`` is the gated ratio,
      expected >= 100x, and ``regression_max_err`` the hard 1e-12 bar;
    * at ``n_stream`` / ``stream_k`` with distance-based weights: the
      materialized configuration engine vs the streaming one at
      ``stream_block_rows`` rows per block — ``streaming_max_err``
      must be exactly 0.0 (bit-identity), ``streaming_memory_ratio``
      is the deterministic resident-bytes quotient
      (:func:`materialized_config_bytes` over the streaming engine's
      :meth:`~repro.core.kernels.BatchedWeightedRecursion.config_bytes`),
      and ``streaming_overhead`` records the wall-clock price of the
      fixed-memory guarantee (informational, not gated).
    """
    kernel = get_kernel("weighted")

    # ---- regression piecewise vs the configuration engine -----------
    data = regression_dataset(
        n_train=n_regression, n_test=n_test, n_features=n_features, seed=seed
    )
    order, dist = argsort_by_distance(data.x_test, data.x_train)
    plan = RankPlan.from_order(
        order, data.y_train, data.y_test, distances=dist
    )
    engine = time_call(
        lambda: kernel.values_from_plan(
            plan,
            regression_k,
            weights=rank_only_weights,
            task="regression",
            mode="vectorized",
        ),
        repeat=repeat,
    )
    piecewise = time_call(
        lambda: kernel.values_from_plan(
            plan,
            regression_k,
            weights=rank_only_weights,
            task="regression",
            mode="piecewise",
        ),
        repeat=fast_repeat,
        warmup=1,
    )
    regression_max_err = max_abs_error(piecewise.value, engine.value)

    # ---- streaming vs materialized configuration engine -------------
    sdata = regression_dataset(
        n_train=n_stream, n_test=n_test, n_features=n_features, seed=seed
    )
    sorder, sdist = argsort_by_distance(sdata.x_test, sdata.x_train)
    splan = RankPlan.from_order(
        sorder, sdata.y_train, sdata.y_test, distances=sdist
    )
    materialized = time_call(
        lambda: kernel.values_from_plan(
            splan,
            stream_k,
            weights=distance_weights,
            task="regression",
            mode="vectorized",
            block_rows=stream_block_rows,
        ),
        repeat=repeat,
    )
    streaming = time_call(
        lambda: kernel.values_from_plan(
            splan,
            stream_k,
            weights=distance_weights,
            task="regression",
            mode="streaming",
            block_rows=stream_block_rows,
        ),
        repeat=repeat,
    )
    streaming_max_err = max_abs_error(streaming.value, materialized.value)
    stream_bytes = BatchedWeightedRecursion(
        n_stream, stream_k, block_rows=stream_block_rows, streaming=True
    ).config_bytes()
    memory_ratio = materialized_config_bytes(n_stream, stream_k) / max(
        stream_bytes, 1
    )

    rows = [
        {
            "n_regression": n_regression,
            "regression_k": regression_k,
            "engine_s": engine.seconds,
            "piecewise_s": piecewise.seconds,
            "regression_speedup": engine.seconds
            / max(piecewise.seconds, 1e-12),
            "regression_max_err": regression_max_err,
            "n_stream": n_stream,
            "stream_k": stream_k,
            "materialized_s": materialized.seconds,
            "streaming_s": streaming.seconds,
            "streaming_overhead": streaming.seconds
            / max(materialized.seconds, 1e-12),
            "streaming_memory_ratio": memory_ratio,
            "streaming_max_err": streaming_max_err,
        }
    ]
    return ExperimentResult(
        experiment_id="weighted-frontier",
        title=(
            "Weighted frontier: O(N·poly(K)) regression piecewise and "
            "the fixed-memory streaming configuration engine"
        ),
        columns=(
            "n_regression",
            "regression_k",
            "engine_s",
            "piecewise_s",
            "regression_speedup",
            "regression_max_err",
            "n_stream",
            "stream_k",
            "materialized_s",
            "streaming_s",
            "streaming_overhead",
            "streaming_memory_ratio",
            "streaming_max_err",
        ),
        rows=rows,
        paper_claim=(
            "Theorem 7 extends exact weighted-KNN Shapley to regression "
            "(eq 27), but the general recursion needs O(N^K) utility "
            "evaluations"
        ),
        observed=(
            "rank-only regression takes the closed-form label-moment "
            "piecewise path, >= 100x over the configuration engine at "
            "serving-scale N and within 1e-12; the streaming engine "
            "reproduces the materialized sums bit-for-bit at a fixed "
            "O(block_rows*K) configuration residency"
        ),
        metadata={
            "rank_only_weights": rank_only_weights,
            "distance_weights": distance_weights,
            "stream_block_rows": stream_block_rows,
            "n_test": n_test,
            "n_features": n_features,
            "seed": seed,
        },
    )
