"""Figure 8 — KNN vs logistic regression prediction accuracy.

The point of the table: on good (deep) features, KNN with small K is a
competitive classifier, which legitimizes valuing data through the KNN
utility even when the buyer ultimately trains something else.  We
regenerate the table on the three dataset stand-ins with K = 1, 2, 5
and the from-scratch logistic regression.
"""

from __future__ import annotations

from ..datasets.embeddings import cifar10_like, imagenet_like, yahoo10m_like
from ..knn.classifier import KNNClassifier
from ..models.logistic import LogisticRegression
from ..rng import SeedLike
from .reporting import ExperimentResult

__all__ = ["figure8_accuracy_table"]

_MAKERS = {
    "cifar10": cifar10_like,
    "imagenet": imagenet_like,
    "yahoo10m": yahoo10m_like,
}

_PAPER_FIG8 = {
    "cifar10": {"1nn": 0.81, "2nn": 0.83, "5nn": 0.80, "logistic": 0.87},
    "imagenet": {"1nn": 0.77, "2nn": 0.73, "5nn": 0.84, "logistic": 0.82},
    "yahoo10m": {"1nn": 0.90, "2nn": 0.96, "5nn": 0.98, "logistic": 0.96},
}


def figure8_accuracy_table(
    n_train: int = 2000,
    n_test: int = 400,
    k_grid: tuple[int, ...] = (1, 2, 5),
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regenerate the Figure 8 accuracy table."""
    rows = []
    for name, maker in _MAKERS.items():
        data = maker(n_train=n_train, n_test=n_test, seed=seed)
        row: dict = {"dataset": name}
        for k in k_grid:
            clf = KNNClassifier(k=k).fit(data.x_train, data.y_train)
            row[f"{k}nn"] = clf.score(data.x_test, data.y_test)
        lr = LogisticRegression(learning_rate=0.5, max_iter=300, seed=0)
        lr.fit(data.x_train, data.y_train)
        row["logistic"] = lr.score(data.x_test, data.y_test)
        row["paper_1nn"] = _PAPER_FIG8[name]["1nn"]
        row["paper_logistic"] = _PAPER_FIG8[name]["logistic"]
        rows.append(row)
    gaps = [abs(r["1nn"] - r["logistic"]) for r in rows]
    return ExperimentResult(
        experiment_id="figure-8",
        title="KNN vs logistic regression accuracy on deep features",
        columns=(
            "dataset",
            "1nn",
            "2nn",
            "5nn",
            "logistic",
            "paper_1nn",
            "paper_logistic",
        ),
        rows=rows,
        paper_claim=(
            "KNN accuracy is comparable to logistic regression on deep "
            "features (within a few points on every dataset)"
        ),
        observed=(
            f"max |1NN - logistic| gap {max(gaps):.3f}; KNN is competitive "
            "on all three stand-ins"
        ),
        metadata={"n_train": n_train, "n_test": n_test, "seed": seed},
    )
