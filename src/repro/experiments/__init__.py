"""Per-figure experiment functions and the EXPERIMENTS.md writer."""

from .fig_accuracy import figure8_accuracy_table
from .fig_correctness import figure5_mc_convergence
from .fig_engine import engine_throughput, weighted_engine, weighted_fast_paths
from .fig_frontier import weighted_frontier
from .fig_incremental import incremental_churn
from .fig_lsh import (
    figure9_contrast_vs_kstar,
    figure9_error_vs_recall,
    figure9_error_vs_tables,
    figure10_g_vs_epsilon,
    figure10_g_vs_width,
)
from .fig_monitor import monitor_maintenance, tracing_overhead
from .fig_ops import ops_plane_overhead
from .fig_resilience import burst_serving
from .fig_sharding import shard_scaleout
from .fig_mc import (
    figure11_permutation_sizes,
    figure12_weighted_runtime,
    figure13_multidata_runtime,
)
from .fig_runtime import (
    figure2_complexity_table,
    figure6_runtime_vs_n,
    figure7_dataset_table,
    figure17_dataset_table_k25,
)
from .fig_values import (
    figure14_value_semantics,
    figure15_composite_game,
    figure16_surrogate_correlation,
)
from .reporting import ExperimentResult, format_result, format_table
from .runner import ALL_EXPERIMENTS, run_all, write_experiments_md

__all__ = [
    "ExperimentResult",
    "format_result",
    "format_table",
    "ALL_EXPERIMENTS",
    "run_all",
    "write_experiments_md",
    "figure2_complexity_table",
    "figure5_mc_convergence",
    "figure6_runtime_vs_n",
    "figure7_dataset_table",
    "figure8_accuracy_table",
    "figure9_contrast_vs_kstar",
    "figure9_error_vs_tables",
    "figure9_error_vs_recall",
    "figure10_g_vs_epsilon",
    "figure10_g_vs_width",
    "figure11_permutation_sizes",
    "figure12_weighted_runtime",
    "figure13_multidata_runtime",
    "figure14_value_semantics",
    "figure15_composite_game",
    "figure16_surrogate_correlation",
    "figure17_dataset_table_k25",
    "engine_throughput",
    "weighted_engine",
    "weighted_fast_paths",
    "weighted_frontier",
    "incremental_churn",
    "monitor_maintenance",
    "tracing_overhead",
    "ops_plane_overhead",
    "burst_serving",
    "shard_scaleout",
]
