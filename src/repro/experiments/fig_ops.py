"""Ops plane: serving overhead of the fully enabled operations stack.

Not a figure from the paper — the leave-on-able bar of the live
operations plane (PR 9): a serving loop with *everything* on — the
telemetry hub, an :class:`~repro.monitor.slo.SLOTracker` evaluated
through an :class:`~repro.monitor.alerts.AlertManager` after every
request, and a :class:`~repro.monitor.profiler.SamplingProfiler`
walking every thread's frames at 19 Hz throughout — against the bare
engine.  ``ops_plane_overhead_margin`` (plain over instrumented
wall-clock) is gated at ≥ 0.95 in ``BENCH_engine.json``: an
observability layer that cannot stay within 5% of the uninstrumented
path would be turned off in production, and then it observes nothing.

Protocol: the same interleaved best-of-N with the cyclic collector
paused as the monitoring/tracing overhead rows (see
:mod:`~repro.experiments.fig_monitor`) — the effect under measurement
is smaller than sequential machine-state drift.
"""

from __future__ import annotations

import gc
import time

import numpy as np

from ..engine import ValuationEngine
from ..monitor import (
    AlertManager,
    SamplingProfiler,
    SLOTracker,
    TelemetryHub,
    ThresholdRule,
    router_rules,
)
from ..rng import SeedLike
from .reporting import ExperimentResult

__all__ = ["ops_plane_overhead"]


def ops_plane_overhead(
    n_train: int = 4000,
    n_test: int = 64,
    n_features: int = 16,
    k: int = 5,
    n_requests: int = 6,
    repeat: int = 5,
    profiler_hz: float = 19.0,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Measure the serving cost of the fully enabled ops plane.

    Two identical engines serve the same exact-valuation loop with the
    rank cache off; one is bare, the other carries the whole
    operations plane: an attached hub, two latency SLOs plus an
    error-rate SLO tracked over it, an alert manager (threshold +
    counter-increase rules + SLO burn adoption) evaluated after every
    request — the worst case; a deployment would evaluate on scrape —
    and a 19 Hz sampling profiler running for the duration.

    Parameters
    ----------
    n_train, n_test, n_features, k:
        Workload shape (brute backend, exact method, cache off).
    n_requests:
        Valuation requests per timed loop.
    repeat:
        Timed repetitions; best run is reported.
    profiler_hz:
        Sampling rate of the attached profiler.
    """
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n_train, n_features))
    y = rng.integers(0, 2, n_train)
    x_test = rng.standard_normal((n_test, n_features))
    y_test = rng.integers(0, 2, n_test)

    def build_engine() -> ValuationEngine:
        return ValuationEngine(x, y, k, cache=False)

    plain_engine = build_engine()

    hub = TelemetryHub()
    ops_engine = build_engine().attach_telemetry(hub)
    slo = SLOTracker(hub)
    slo.add("request latency p99", "engine.request_seconds p99 < 10s")
    slo.add("request latency p50", "engine.request_seconds p50 < 1s")
    slo.add("request errors", "engine.errors / engine.retrievals < 1%")
    alerts = AlertManager(
        hub,
        rules=[
            ThresholdRule(
                "slow requests",
                series="engine.request_seconds",
                stat="p99",
                op=">",
                value=30.0,
                severity="warn",
            ),
            *router_rules(),
        ],
        slo=slo,
    )

    def serve_plain() -> None:
        for _ in range(n_requests):
            plain_engine.value(x_test, y_test, method="exact")

    def serve_ops() -> None:
        for _ in range(n_requests):
            ops_engine.value(x_test, y_test, method="exact")
            alerts.evaluate()

    serve_plain()  # warm up both sides identically
    serve_ops()

    profiler = SamplingProfiler(hz=profiler_hz)
    plain_s = ops_s = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    profiler.start()
    try:
        for _ in range(repeat):
            start = time.perf_counter()
            serve_plain()
            plain_s = min(plain_s, time.perf_counter() - start)
            start = time.perf_counter()
            serve_ops()
            ops_s = min(ops_s, time.perf_counter() - start)
    finally:
        profiler.stop()
        if gc_was_enabled:
            gc.enable()

    prof_snapshot = profiler.snapshot(top=0)
    row = {
        "n_train": n_train,
        "plain_s": plain_s,
        "ops_s": ops_s,
        "overhead_ratio": ops_s / max(plain_s, 1e-12),
        "ops_plane_overhead_margin": plain_s / max(ops_s, 1e-12),
        "profiler_samples": prof_snapshot["samples"],
        "profiler_overruns": prof_snapshot["overruns"],
        "slo_evaluations": alerts.stats()["counters"]["evaluations"],
        "alerts_fired": alerts.stats()["counters"]["fired"],
    }
    return ExperimentResult(
        experiment_id="ops-plane-overhead",
        title="Ops plane: serving overhead of SLOs + alerts + 19 Hz profiler",
        columns=(
            "n_train",
            "plain_s",
            "ops_s",
            "overhead_ratio",
            "ops_plane_overhead_margin",
            "profiler_samples",
            "slo_evaluations",
            "alerts_fired",
        ),
        rows=[row],
        paper_claim=(
            "not a paper figure — the ops plane's leave-on-able bar: SLO "
            "tracking, alert evaluation, and statistical profiling must "
            "together cost <= 5% of bare serving"
        ),
        observed=(
            "per-request SLO/alert evaluation is a few histogram reads "
            "and comparisons, and the 19 Hz profiler pays per sample, "
            "not per call — the instrumented loop stays within a few "
            "percent of the bare engine"
        ),
        metadata={
            "n_test": n_test,
            "n_features": n_features,
            "k": k,
            "n_requests": n_requests,
            "profiler_hz": profiler_hz,
            "seed": seed,
        },
    )
