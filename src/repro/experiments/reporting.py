"""Result records and ASCII rendering for the experiment harness.

Every experiment function in :mod:`repro.experiments.figures` returns an
:class:`ExperimentResult`: the figure/table id, the measured rows, and
the paper's qualitative claim, so a benchmark run can print a
side-by-side and the EXPERIMENTS.md writer can persist it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = ["ExperimentResult", "format_table", "format_result"]


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one reproduced table or figure.

    Attributes
    ----------
    experiment_id:
        Paper reference, e.g. ``"figure-6a"``.
    title:
        One-line description.
    columns:
        Column names of :attr:`rows`.
    rows:
        The regenerated series/table, one mapping per row.
    paper_claim:
        What the paper reports (the *shape* we try to match).
    observed:
        One-line summary of what this run measured.
    metadata:
        Parameters, seeds, sizes.
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: Sequence[Mapping[str, Any]]
    paper_claim: str
    observed: str
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def column(self, name: str) -> list[Any]:
        """Extract one column across rows."""
        return [row[name] for row in self.rows]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[Mapping[str, Any]]) -> str:
    """Render rows as a fixed-width ASCII table."""
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
        for i, c in enumerate(columns)
    ]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_result(result: ExperimentResult) -> str:
    """Full human-readable report for one experiment."""
    header = f"== {result.experiment_id}: {result.title} =="
    body = format_table(result.columns, result.rows)
    return (
        f"{header}\n"
        f"paper:    {result.paper_claim}\n"
        f"observed: {result.observed}\n"
        f"{body}\n"
    )
