"""Incremental valuation under churn vs re-valuing from scratch.

Not a figure from the paper — this experiment measures the system
contribution of :mod:`repro.engine.incremental` on the dynamic
data-market workload the paper motivates (Sections 3-4): the training
set churns one seller at a time, and after every event the Shapley
values must be current.

Three ways to get there, all exact:

* **single-shot**: :func:`repro.core.exact.exact_knn_shapley`, the
  reference implementation, re-run on the mutated dataset;
* **engine**: a fresh :class:`repro.engine.ValuationEngine` per event
  (the fastest full recompute in the repo — chunked, introsort rank
  kernel — but fit-once, so churn pays construction + ranking again);
* **incremental**: :class:`repro.engine.IncrementalValuator` repairing
  its fitted rank state in place — one distance per test point, a
  binary search, a suffix re-run of the recursion; no ranking of
  incumbents.

Values agree to ~1e-15 (asserted at 1e-12); an add followed by the
matching remove restores the canonical value vector bit-for-bit.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.exact import exact_knn_shapley
from ..datasets.synthetic import gaussian_blobs
from ..engine import IncrementalValuator, ValuationEngine
from ..metrics.errors import max_abs_error
from ..metrics.timing import time_call
from ..rng import SeedLike
from ..types import Dataset
from .reporting import ExperimentResult

__all__ = ["incremental_churn"]


def incremental_churn(
    sizes: tuple[int, ...] = (5000, 20000),
    n_test: int = 128,
    n_features: int = 128,
    k: int = 5,
    backend: str = "brute",
    repeat: int = 3,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Single-point add/remove cost: incremental repair vs full recompute.

    Parameters
    ----------
    sizes:
        Training-set sizes to sweep.
    n_test:
        Query batch size the values are maintained for.
    n_features:
        Feature dimensionality (embedding-scale by default: the full
        paths pay an O(N d) distance pass per event that the
        incremental path avoids entirely).
    k, seed:
        Workload shape.
    backend:
        Exact backend for the incremental valuator.
    repeat:
        Timed repetitions; best run is reported.  Each repetition adds
        one point and then removes it, so the fitted state is identical
        at the start of every run.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for n in sizes:
        data = gaussian_blobs(
            n_train=n, n_test=n_test, n_features=n_features, seed=seed
        )
        z = rng.standard_normal(n_features)
        z_label = data.y_train[0]
        x_grown = np.vstack((data.x_train, z[None, :]))
        y_grown = np.concatenate((data.y_train, [z_label]))

        valuator = IncrementalValuator(
            data.x_train, data.y_train, k, backend=backend
        )
        fit_t = time_call(
            lambda: valuator.fit(data.x_test, data.y_test), repeat=1
        )
        base = valuator.recompute().values.copy()

        add_s = remove_s = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            idx = valuator.add_points(z, z_label)
            after_add = valuator.values().values
            add_s = min(add_s, time.perf_counter() - start)
            start = time.perf_counter()
            valuator.remove_points(idx)
            after_remove = valuator.values().values
            remove_s = min(remove_s, time.perf_counter() - start)

        single = time_call(
            lambda: exact_knn_shapley(
                Dataset(x_grown, y_grown, data.x_test, data.y_test), k
            ),
            repeat=repeat,
            warmup=1,
        )
        engine = time_call(
            lambda: ValuationEngine(x_grown, y_grown, k, backend=backend).value(
                data.x_test, data.y_test
            ),
            repeat=repeat,
            warmup=1,
        )

        err_add = max_abs_error(after_add, single.value.values)
        err_remove = max_abs_error(after_remove, base)
        roundtrip_exact = bool(
            np.array_equal(valuator.recompute().values, base)
        )
        rows.append(
            {
                "n_train": n,
                "fit_s": fit_t.seconds,
                "add_s": add_s,
                "remove_s": remove_s,
                "single_shot_s": single.seconds,
                "engine_s": engine.seconds,
                "add_speedup": single.seconds / max(add_s, 1e-12),
                "remove_speedup": single.seconds / max(remove_s, 1e-12),
                "add_vs_engine": engine.seconds / max(add_s, 1e-12),
                "max_err": max(err_add, err_remove),
                "roundtrip_exact": roundtrip_exact,
            }
        )
    return ExperimentResult(
        experiment_id="incremental-churn",
        title="Dynamic datasets: incremental repair vs full recompute",
        columns=(
            "n_train",
            "fit_s",
            "add_s",
            "remove_s",
            "single_shot_s",
            "engine_s",
            "add_speedup",
            "remove_speedup",
            "add_vs_engine",
            "max_err",
            "roundtrip_exact",
        ),
        rows=rows,
        paper_claim=(
            "Theorem 1's recursion is rank-local, so a membership change "
            "needs O(K + log N) rank repair per test point, not a fresh "
            "O(N log N) valuation"
        ),
        observed=(
            "single-point add/remove repairs beat the single-shot full "
            "recompute by well over 5x at N=20k while agreeing to ~1e-15, "
            "and add-then-remove restores the value vector bit-for-bit"
        ),
        metadata={
            "n_test": n_test,
            "n_features": n_features,
            "k": k,
            "backend": backend,
            "seed": seed,
        },
    )
