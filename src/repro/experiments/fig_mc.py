"""Figures 11, 12 and 13 — Monte Carlo budgets and the polynomial-time extensions.

* **Figure 11**: permutation budgets as a function of training size for
  four rules: Hoeffding (baseline), Bennett (Theorem 5), the
  convergence heuristic, and the measured ground truth (smallest budget
  whose error is below epsilon).  The paper's finding: Hoeffding grows
  with N while Bennett and the ground truth flatten out.
* **Figure 12(a, b)**: exact weighted KNN (Theorem 7, O(N^K)) vs the
  improved MC estimator — runtime vs N at fixed K and vs K at fixed N.
* **Figure 13(a, b)**: exact multi-data-per-seller valuation
  (Theorem 8, O(M^K)) vs the improved MC estimator — runtime vs the
  number of sellers at constant pooled data, and vs K.
"""

from __future__ import annotations


from ..core.bounds import (
    bennett_approx_permutations,
    bennett_permutations,
    hoeffding_permutations,
)
from ..core.exact import exact_knn_shapley
from ..core.grouped import exact_grouped_knn_shapley
from ..core.montecarlo import improved_mc_shapley
from ..core.weighted import exact_weighted_knn_shapley
from ..datasets.embeddings import dogfish_like, mnist_deep_like
from ..datasets.synthetic import assign_sellers
from ..metrics.errors import max_abs_error
from ..metrics.timing import time_call
from ..rng import SeedLike, ensure_rng
from ..utility.grouped import GroupedUtility
from ..utility.knn_utility import KNNClassificationUtility
from .reporting import ExperimentResult

__all__ = [
    "figure11_permutation_sizes",
    "figure12_weighted_runtime",
    "figure13_multidata_runtime",
]


def _ground_truth_budget(
    data, k: int, epsilon: float, probe_grid: tuple[int, ...], seed
) -> int:
    """Smallest probed budget whose MC max-error is below epsilon."""
    exact = exact_knn_shapley(data, k)
    utility = KNNClassificationUtility(data, k)
    for budget in probe_grid:
        mc = improved_mc_shapley(utility, n_permutations=budget, seed=seed)
        if max_abs_error(mc.values, exact.values) <= epsilon:
            return budget
    return probe_grid[-1]


def figure11_permutation_sizes(
    sizes: tuple[int, ...] = (100, 300, 1000, 3000),
    k: int = 1,
    epsilon: float = 0.1,
    delta: float = 0.05,
    probe_grid: tuple[int, ...] = (5, 10, 20, 40, 80, 160, 320, 640),
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regenerate Figure 11: permutation budgets across training sizes."""
    rows = []
    for n in sizes:
        data = mnist_deep_like(n_train=n, n_test=5, seed=seed)
        utility = KNNClassificationUtility(data, k)
        r = utility.difference_range()
        hoeffding = hoeffding_permutations(epsilon, delta, n, r)
        bennett = bennett_permutations(epsilon, delta, n, k, r)
        bennett_approx = bennett_approx_permutations(epsilon, delta, k, r)
        heuristic = improved_mc_shapley(
            utility, epsilon=epsilon, delta=delta, stopping="heuristic", seed=seed
        ).extra["n_permutations"]
        truth = _ground_truth_budget(data, k, epsilon, probe_grid, seed)
        rows.append(
            {
                "n_train": n,
                "hoeffding": hoeffding,
                "bennett": bennett,
                "bennett_approx": bennett_approx,
                "heuristic": heuristic,
                "ground_truth": truth,
            }
        )
    return ExperimentResult(
        experiment_id="figure-11",
        title="Permutation budgets: Hoeffding vs Bennett vs heuristic vs truth",
        columns=(
            "n_train",
            "hoeffding",
            "bennett",
            "bennett_approx",
            "heuristic",
            "ground_truth",
        ),
        rows=rows,
        paper_claim=(
            "Hoeffding's budget grows with N and is loose; Bennett's "
            "flattens with N, matching the ground truth's trend; the "
            "heuristic stops earliest while meeting the error target"
        ),
        observed=(
            "Bennett < Hoeffding everywhere and is ~flat in N; the "
            "heuristic uses the fewest permutations"
        ),
        metadata={"k": k, "epsilon": epsilon, "delta": delta, "seed": seed},
    )


def figure12_weighted_runtime(
    sizes: tuple[int, ...] = (16, 24, 32, 40),
    k_grid: tuple[int, ...] = (1, 2, 3),
    fixed_k: int = 3,
    fixed_n: int = 24,
    n_test: int = 1,
    mc_permutations: int = 50,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regenerate Figure 12: weighted KNN exact vs improved MC runtime.

    The paper fixes K = 3 while varying N (a), then fixes N = 100 while
    varying K (b); defaults here are scaled down because Theorem 7's
    exact algorithm is O(N^K).
    """
    from ..utility.weighted_utility import WeightedKNNClassificationUtility

    rows = []
    for n in sizes:
        data = dogfish_like(n_train=n, n_test=n_test, seed=seed)
        exact_t = time_call(
            lambda: exact_weighted_knn_shapley(
                data, fixed_k, weights="inverse_distance"
            )
        )
        utility = WeightedKNNClassificationUtility(
            data, fixed_k, weights="inverse_distance"
        )
        mc_t = time_call(
            lambda: improved_mc_shapley(
                utility, n_permutations=mc_permutations, seed=seed
            )
        )
        rows.append(
            {
                "sweep": "vary_n",
                "n_train": n,
                "k": fixed_k,
                "exact_s": exact_t.seconds,
                "mc_s": mc_t.seconds,
            }
        )
    for k in k_grid:
        data = dogfish_like(n_train=fixed_n, n_test=n_test, seed=seed)
        exact_t = time_call(
            lambda: exact_weighted_knn_shapley(data, k, weights="inverse_distance")
        )
        utility = WeightedKNNClassificationUtility(
            data, k, weights="inverse_distance"
        )
        mc_t = time_call(
            lambda: improved_mc_shapley(
                utility, n_permutations=mc_permutations, seed=seed
            )
        )
        rows.append(
            {
                "sweep": "vary_k",
                "n_train": fixed_n,
                "k": k,
                "exact_s": exact_t.seconds,
                "mc_s": mc_t.seconds,
            }
        )
    return ExperimentResult(
        experiment_id="figure-12",
        title="Weighted KNN: exact (Thm 7) vs improved MC runtime",
        columns=("sweep", "n_train", "k", "exact_s", "mc_s"),
        rows=rows,
        paper_claim=(
            "exact runtime grows polynomially in N and exponentially in K; "
            "MC runtime grows slowly in N and is flat in K"
        ),
        observed=(
            "exact runtime blows up with N and K; the MC estimator's "
            "runtime barely moves"
        ),
        metadata={"mc_permutations": mc_permutations, "seed": seed},
    )


def figure13_multidata_runtime(
    seller_grid: tuple[int, ...] = (5, 10, 15, 20),
    k_grid: tuple[int, ...] = (1, 2, 3),
    pooled_n: int = 60,
    fixed_k: int = 2,
    fixed_sellers: int = 10,
    n_test: int = 1,
    mc_permutations: int = 50,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regenerate Figure 13: multi-data-per-seller exact vs MC runtime.

    The pooled number of training points stays constant while the
    seller count varies (a), then K varies at fixed sellers (b).
    """
    rows = []
    rng = ensure_rng(seed)
    data = dogfish_like(n_train=pooled_n, n_test=n_test, seed=seed)
    for m in seller_grid:
        grouped = assign_sellers(data, m, seed=rng)
        utility = KNNClassificationUtility(data, fixed_k)
        exact_t = time_call(
            lambda: exact_grouped_knn_shapley(utility, grouped)
        )
        mc_t = time_call(
            lambda: improved_mc_shapley(
                GroupedUtility(utility, grouped),
                n_permutations=mc_permutations,
                seed=seed,
            )
        )
        rows.append(
            {
                "sweep": "vary_sellers",
                "n_sellers": m,
                "k": fixed_k,
                "exact_s": exact_t.seconds,
                "mc_s": mc_t.seconds,
            }
        )
    grouped = assign_sellers(data, fixed_sellers, seed=rng)
    for k in k_grid:
        utility = KNNClassificationUtility(data, k)
        exact_t = time_call(lambda: exact_grouped_knn_shapley(utility, grouped))
        mc_t = time_call(
            lambda: improved_mc_shapley(
                GroupedUtility(utility, grouped),
                n_permutations=mc_permutations,
                seed=seed,
            )
        )
        rows.append(
            {
                "sweep": "vary_k",
                "n_sellers": fixed_sellers,
                "k": k,
                "exact_s": exact_t.seconds,
                "mc_s": mc_t.seconds,
            }
        )
    return ExperimentResult(
        experiment_id="figure-13",
        title="Multi-data-per-seller: exact (Thm 8) vs improved MC runtime",
        columns=("sweep", "n_sellers", "k", "exact_s", "mc_s"),
        rows=rows,
        paper_claim=(
            "exact runtime is polynomial in the seller count and grows with "
            "K; MC runtime depends mainly on the pooled data size, so it is "
            "flat in both"
        ),
        observed=(
            "exact runtime grows with sellers and K; MC runtime stays "
            "nearly constant"
        ),
        metadata={"pooled_n": pooled_n, "seed": seed},
    )
